// Quickstart: the complete ptask pipeline on a small example.
//
//  1. Describe a parallel program as cooperating M-tasks with a
//     CM-task-style specification (variables, seq/parfor composition).
//  2. Schedule it with the combined layer-based algorithm (Algorithm 1).
//  3. Map the symbolic cores to the physical cores of a cluster with the
//     consecutive / scattered / mixed strategies.
//  4. Evaluate the mapped schedule analytically and with the discrete-event
//     cluster simulator.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ptask/arch/topology.hpp"
#include "ptask/core/spec_builder.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"
#include "ptask/sched/validation.hpp"
#include "ptask/viz/gantt.hpp"

using namespace ptask;

int main() {
  // --- the machine: 8 nodes of the CHiC cluster (2x dual-core per node) ---
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 8;
  const arch::Machine machine(spec);
  std::printf("machine: %s partition, %d nodes x %d cores = %d cores\n",
              machine.name().c_str(), machine.num_nodes(),
              machine.cores_per_node(), machine.total_cores());
  const arch::ArchitectureTree tree(spec);
  std::printf("architecture tree: %zu vertices, %d leaves (Fig. 7 style)\n\n",
              tree.size(), tree.num_leaves());

  // --- an M-task specification: prepare, 4 independent solvers, reduce ---
  core::SpecBuilder builder("quickstart");
  const std::size_t vec_bytes = (1u << 16) * sizeof(double);
  const core::Var input = builder.var("input", vec_bytes);
  std::vector<core::Var> partials;

  core::MTask prepare("prepare", 2.0e8);
  builder.call(std::move(prepare), {}, {input});

  builder.parfor(4, [&](int i) {
    core::Var part = builder.var("part" + std::to_string(i), vec_bytes);
    core::MTask solve("solve" + std::to_string(i), 2.0e9);
    // Each solver does group-internal multi-broadcasts of its vector.
    solve.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                      core::CommScope::Group, vec_bytes, 8});
    builder.call(std::move(solve), {input}, {part});
    partials.push_back(part);
  });

  core::MTask reduce("reduce", 4.0e8);
  reduce.add_comm(core::CollectiveOp{core::CollectiveKind::Allreduce,
                                     core::CommScope::Group, vec_bytes, 1});
  builder.call(std::move(reduce), partials, {});

  const core::HierGraph program = builder.build();
  std::printf("specification: %d tasks, %d input-output relations\n",
              program.graph.num_tasks(), program.graph.num_edges());

  // --- scheduling (Algorithm 1) ---
  const cost::CostModel cost(machine);
  const sched::LayerScheduler scheduler(cost);
  const sched::LayeredSchedule schedule =
      scheduler.schedule(program.graph, machine.total_cores());
  const sched::ValidationReport report = sched::validate(schedule, program.graph);
  std::printf("\n%s", sched::describe(schedule).c_str());
  std::printf("schedule valid: %s\n\n", report.ok() ? "yes" : "NO");

  // --- mapping + evaluation ---
  const sched::TimelineEvaluator eval(cost);
  std::printf("%-14s %16s %16s\n", "mapping", "analytic [ms]", "simulated [ms]");
  for (auto [label, strategy, d] :
       {std::tuple{"consecutive", map::Strategy::Consecutive, 1},
        std::tuple{"mixed(d=2)", map::Strategy::Mixed, 2},
        std::tuple{"scattered", map::Strategy::Scattered, 1}}) {
    const std::vector<cost::LayerLayout> layouts =
        map::map_schedule(schedule, machine, strategy, d);
    const double analytic = eval.evaluate(schedule, layouts).makespan;
    const double simulated = eval.simulate(schedule, layouts).makespan;
    std::printf("%-14s %16.3f %16.3f\n", label, analytic * 1e3,
                simulated * 1e3);
  }
  std::printf("\nThe consecutive mapping keeps each solver group inside\n"
              "cluster nodes, which is why its group-internal multi-\n"
              "broadcasts are cheapest.\n");

  // --- visualization: the schedule as an ASCII Gantt chart ---
  const core::TaskGraph& contracted = schedule.contraction.contracted;
  const sched::GanttSchedule gantt =
      sched::to_gantt(schedule, [&](core::TaskId id, int q, int g) {
        return cost.symbolic_task_time(contracted.task(id), q, g,
                                       machine.total_cores());
      });
  std::printf("\n%s", viz::ascii_gantt(contracted, gantt).c_str());
  return 0;
}
