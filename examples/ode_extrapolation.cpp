// End-to-end extrapolation (EPOL) demo -- the paper's running example
// (Sections 2.2.3, 3.2, 4.2).
//
//  1. Solve the 2-D Brusselator with the real EPOL solver and verify its
//     convergence order.
//  2. Build the hierarchical specification of Fig. 3 / the task graph of
//     Fig. 4, contract the micro-step chains (Fig. 5), and schedule the time
//     step with R/2 groups (Fig. 6, middle).
//  3. Execute the scheduled step *for real* on the shared-memory M-task
//     runtime and check that the result matches the sequential solver.
//  4. Project per-step times onto the CHiC cluster for the three mapping
//     strategies.
//
// Build & run:  ./build/examples/ode_extrapolation

#include <cmath>
#include <cstdio>

#include "ptask/map/mapping.hpp"
#include "ptask/ode/bruss2d.hpp"
#include "ptask/ode/epol.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"

using namespace ptask;

int main() {
  const int R = 4;
  const ode::Bruss2D system(16);  // n = 512
  std::printf("system: %s, n = %zu\n", system.name().c_str(), system.size());

  // --- 1. real numerics ---
  ode::Epol solver(R);
  const double order = ode::estimate_order(solver, system, 0.0, 0.2, 0.02);
  std::printf("EPOL with R=%d approximations: theoretical order %d, "
              "observed order %.2f\n\n", R, solver.order(), order);

  // --- 2. specification -> graph -> schedule ---
  const core::HierGraph program =
      ode::epol_program_spec(system.size(), R,
                             system.eval_flop_per_component(), 100.0);
  std::printf("Fig. 3 specification: %d basic tasks across two levels\n",
              program.total_basic_tasks());

  const ode::SolverGraphSpec spec = ode::make_spec(ode::Method::EPOL, system, R);
  const core::TaskGraph step = spec.step_graph();
  const core::ChainContraction cc = core::contract_linear_chains(step);
  std::printf("step graph: %d tasks; after chain contraction: %d tasks\n",
              step.num_tasks(), cc.contracted.num_tasks());

  arch::MachineSpec machine_spec = arch::chic();
  machine_spec.num_nodes = 2;
  const arch::Machine machine(machine_spec);
  const cost::CostModel cost(machine);
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = R / 2;  // the paper's tp scheme (Fig. 6 middle)
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cost, opts).schedule(step, 8);
  std::printf("\n%s\n", sched::describe(schedule).c_str());

  // --- 3. real execution on the shared-memory runtime ---
  const double t0 = 0.0, h = 0.001;
  const std::vector<double> y0 = system.initial_state();
  std::vector<double> expected = y0;
  solver.step(system, t0, h, expected);

  std::vector<std::vector<double>> approx(static_cast<std::size_t>(R));
  std::vector<double> parallel_result;
  std::vector<rt::TaskFn> fns(static_cast<std::size_t>(step.num_tasks()));
  for (core::TaskId id = 0; id < step.num_tasks(); ++id) {
    const std::string& name = step.task(id).name();
    if (name.rfind("step(", 0) == 0) {
      const int i = std::stoi(name.substr(5));
      const int j = std::stoi(name.substr(name.find(',') + 1));
      fns[static_cast<std::size_t>(id)] = [&, i, j](rt::ExecContext& ctx) {
        std::vector<double>& v = approx[static_cast<std::size_t>(i - 1)];
        if (j == 1 && ctx.group_rank == 0) v = y0;
        ctx.comm->barrier(ctx.group_rank);
        const std::size_t n = system.size();
        const std::size_t q = static_cast<std::size_t>(ctx.group_size);
        const std::size_t chunk = (n + q - 1) / q;
        const std::size_t begin =
            std::min(static_cast<std::size_t>(ctx.group_rank) * chunk, n);
        const std::size_t end = std::min(begin + chunk, n);
        const double micro_h = h / i;
        std::vector<double> f(n);
        system.eval(t0 + (j - 1) * micro_h, v, f, begin, end);
        ctx.comm->barrier(ctx.group_rank);
        for (std::size_t k = begin; k < end; ++k) v[k] += micro_h * f[k];
        ctx.comm->barrier(ctx.group_rank);
      };
    } else if (name == "combine") {
      fns[static_cast<std::size_t>(id)] = [&](rt::ExecContext& ctx) {
        if (ctx.group_rank == 0) {
          parallel_result = ode::Epol::combine(std::move(approx));
        }
        ctx.comm->barrier(ctx.group_rank);
      };
    }
  }
  rt::Executor executor(8);
  executor.run(schedule, fns);
  const double diff = ode::max_norm_diff(parallel_result, expected);
  std::printf("scheduled parallel step vs sequential solver: max diff %.2e "
              "(%s)\n\n", diff, diff < 1e-12 ? "identical" : "MISMATCH");

  // --- 4. cluster projection ---
  ode::SolverGraphSpec big = spec;
  big.n = 2 * 256 * 256;
  const arch::Machine cluster = arch::Machine(arch::chic()).partition(256);
  const cost::CostModel cluster_cost(cluster);
  sched::LayerSchedulerOptions big_opts;
  big_opts.fixed_groups = R / 2;
  const sched::LayeredSchedule big_schedule =
      sched::LayerScheduler(cluster_cost, big_opts).schedule(big.step_graph(),
                                                             256);
  const sched::TimelineEvaluator eval(cluster_cost);
  std::printf("projected per-step times on 256 CHiC cores (n = %zu):\n",
              big.n);
  for (auto [label, strategy, d] :
       {std::tuple{"consecutive", map::Strategy::Consecutive, 1},
        std::tuple{"mixed(d=2)", map::Strategy::Mixed, 2},
        std::tuple{"scattered", map::Strategy::Scattered, 1}}) {
    const std::vector<cost::LayerLayout> layouts =
        map::map_schedule(big_schedule, cluster, strategy, d);
    std::printf("  %-12s %8.3f ms\n", label,
                eval.evaluate(big_schedule, layouts).makespan * 1e3);
  }
  return 0;
}
