// Mapping explorer: a small command-line tool that sweeps program versions,
// group counts, and mapping strategies for one of the ODE solvers on one of
// the modelled clusters, and prints the resulting per-step times -- the tool
// you would use to pick an execution scheme before a production run.
//
// Usage:
//   mapping_explorer [machine] [cores] [method] [n] [stages]
//     machine: chic | juropa | altix        (default chic)
//     cores:   positive multiple of the node size (default 256)
//     method:  epol | irk | diirk | pab | pabm (default irk)
//     n:       ODE system size              (default 131072)
//     stages:  R / K                        (default 4)
//
// Example:
//   ./build/examples/mapping_explorer juropa 512 pabm 131072 8

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ptask/map/mapping.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"

using namespace ptask;

namespace {

ode::Method parse_method(const std::string& name) {
  if (name == "epol") return ode::Method::EPOL;
  if (name == "irk") return ode::Method::IRK;
  if (name == "diirk") return ode::Method::DIIRK;
  if (name == "pab") return ode::Method::PAB;
  if (name == "pabm") return ode::Method::PABM;
  std::fprintf(stderr, "unknown method '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string machine_name = argc > 1 ? argv[1] : "chic";
  const int cores = argc > 2 ? std::atoi(argv[2]) : 256;
  const ode::Method method = parse_method(argc > 3 ? argv[3] : "irk");
  const std::size_t n =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 131072;
  const int stages = argc > 5 ? std::atoi(argv[5]) : 4;

  ode::SolverGraphSpec spec;
  spec.method = method;
  spec.n = n;
  spec.stages = stages;
  spec.iterations = 2;
  spec.inner_iterations = 2;

  const arch::Machine machine =
      arch::Machine(arch::machine_by_name(machine_name)).partition(cores);
  const cost::CostModel cost(machine);
  const sched::TimelineEvaluator eval(cost);
  const core::TaskGraph graph = spec.step_graph();

  std::printf("%s with %s=%d, n=%zu on %d cores of %s (%d cores/node)\n\n",
              ode::to_string(method), method == ode::Method::EPOL ? "R" : "K",
              stages, n, cores, machine.name().c_str(),
              machine.cores_per_node());

  std::printf("%-24s %14s %14s\n", "execution scheme", "analytic [ms]",
              "groups");

  auto report = [&](const std::string& label,
                    const sched::LayeredSchedule& schedule,
                    map::Strategy strategy, int d) {
    const std::vector<cost::LayerLayout> layouts =
        map::map_schedule(schedule, machine, strategy, d);
    std::printf("%-24s %14.3f %14d\n", label.c_str(),
                eval.evaluate(schedule, layouts).makespan * 1e3,
                schedule.layers.front().num_groups());
  };

  const sched::LayeredSchedule dp =
      sched::DataParallelScheduler(cost).schedule(graph, cores);
  report("data-parallel (cons)", dp, map::Strategy::Consecutive, 1);

  for (int groups : {0, stages / 2, stages}) {
    if (groups == 1) continue;
    sched::LayerSchedulerOptions opts;
    opts.fixed_groups = groups;
    const sched::LayeredSchedule schedule =
        sched::LayerScheduler(cost, opts).schedule(graph, cores);
    const std::string base =
        groups == 0 ? "tp (searched g)" : "tp (g=" + std::to_string(groups) + ")";
    report(base + " cons", schedule, map::Strategy::Consecutive, 1);
    for (int d = 2; d < machine.cores_per_node(); d *= 2) {
      report(base + " mixed d=" + std::to_string(d), schedule,
             map::Strategy::Mixed, d);
    }
    report(base + " scat", schedule, map::Strategy::Scattered, 1);
  }
  return 0;
}
