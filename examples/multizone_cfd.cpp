// Multi-zone CFD demo (paper Section 4.6): zones as M-tasks.
//
// A small NPB-MZ-style problem is stepped for real: every zone is one
// M-task executed SPMD by its group on the shared-memory runtime, with
// genuine ghost-face exchanges between neighbouring zones at the end of
// every time step.  The residual trajectory is independent of the group
// structure -- only the (projected) execution time changes, which is the
// whole point of the combined scheduling and mapping approach.
//
// Build & run:  ./build/examples/multizone_cfd

#include <cmath>
#include <cstdio>
#include <vector>

#include "ptask/map/mapping.hpp"
#include "ptask/npb/multizone.hpp"
#include "ptask/npb/stencil.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"

using namespace ptask;

namespace {

struct ZoneSet {
  npb::MultiZoneProblem problem;
  std::vector<npb::ZoneField> fields;
  std::vector<int> x0, y0;

  explicit ZoneSet(npb::MzSolver solver, char cls)
      : problem(npb::make_problem(solver, cls)) {
    int y_off = 0;
    for (int iy = 0; iy < problem.y_zones; ++iy) {
      int x_off = 0;
      for (int ix = 0; ix < problem.x_zones; ++ix) {
        const npb::ZoneGrid& zone =
            problem.zones[static_cast<std::size_t>(iy * problem.x_zones + ix)];
        fields.emplace_back(zone);
        fields.back().initialize(x_off, y_off,
                                 static_cast<std::size_t>(problem.global.nx),
                                 static_cast<std::size_t>(problem.global.ny));
        x0.push_back(x_off);
        y0.push_back(y_off);
        x_off += zone.nx;
      }
      y_off += problem
                   .zones[static_cast<std::size_t>(iy * problem.x_zones)]
                   .ny;
    }
  }

  int zone_at(int ix, int iy) const { return iy * problem.x_zones + ix; }

  /// Exchanges ghost faces between all horizontally/vertically adjacent
  /// zones (the inter-M-task border exchange).
  void exchange_borders() {
    std::vector<double> buffer;
    for (int iy = 0; iy < problem.y_zones; ++iy) {
      for (int ix = 0; ix + 1 < problem.x_zones; ++ix) {
        npb::ZoneField& left = fields[static_cast<std::size_t>(zone_at(ix, iy))];
        npb::ZoneField& right =
            fields[static_cast<std::size_t>(zone_at(ix + 1, iy))];
        buffer.resize(left.face_size(1));
        left.extract_face(1, buffer);
        right.set_ghost_face(0, buffer);
        buffer.resize(right.face_size(0));
        right.extract_face(0, buffer);
        left.set_ghost_face(1, buffer);
      }
    }
    for (int iy = 0; iy + 1 < problem.y_zones; ++iy) {
      for (int ix = 0; ix < problem.x_zones; ++ix) {
        npb::ZoneField& lo = fields[static_cast<std::size_t>(zone_at(ix, iy))];
        npb::ZoneField& hi =
            fields[static_cast<std::size_t>(zone_at(ix, iy + 1))];
        buffer.resize(lo.face_size(3));
        lo.extract_face(3, buffer);
        hi.set_ghost_face(2, buffer);
        buffer.resize(hi.face_size(2));
        hi.extract_face(2, buffer);
        lo.set_ghost_face(3, buffer);
      }
    }
  }
};

}  // namespace

int main() {
  ZoneSet zones(npb::MzSolver::BT, 'S');  // 2x2 zones, skewed sizes
  std::printf("problem: %s, %d zones, global %dx%dx%d, imbalance %.1fx\n",
              zones.problem.name().c_str(), zones.problem.num_zones(),
              zones.problem.global.nx, zones.problem.global.ny,
              zones.problem.global.nz, zones.problem.imbalance_ratio());

  // Schedule the per-step zone graph onto 8 virtual cores, 2 groups.
  const core::TaskGraph graph = npb::step_graph(zones.problem);
  arch::MachineSpec machine_spec = arch::chic();
  machine_spec.num_nodes = 2;
  const arch::Machine machine(machine_spec);
  const cost::CostModel cost(machine);
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = 2;
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cost, opts).schedule(graph, 8);
  std::printf("\n%s\n", sched::describe(schedule).c_str());

  // Real execution: each zone task relaxes its zone SPMD on its group.
  std::vector<double> residuals(zones.fields.size(), 0.0);
  std::vector<rt::TaskFn> fns(static_cast<std::size_t>(graph.num_tasks()));
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    if (graph.task(id).is_marker()) continue;
    const std::size_t z = static_cast<std::size_t>(
        std::stoi(graph.task(id).name().substr(4)));
    fns[static_cast<std::size_t>(id)] = [&, z](rt::ExecContext& ctx) {
      npb::ZoneField& field = zones.fields[z];
      const int ny = field.grid().ny;
      const int rows = (ny + ctx.group_size - 1) / ctx.group_size;
      const double local = field.jacobi_sweep(
          ctx.group_rank * rows, std::min(ny, (ctx.group_rank + 1) * rows));
      const double zone_res = ctx.comm->allreduce_max(ctx.group_rank, local);
      ctx.comm->barrier(ctx.group_rank);
      if (ctx.group_rank == 0) {
        field.commit();
        residuals[z] = zone_res;
      }
      ctx.comm->barrier(ctx.group_rank);
    };
  }

  rt::Executor executor(8);
  std::printf("time stepping (Jacobi relaxation per zone + border "
              "exchange):\n");
  for (int step = 1; step <= 12; ++step) {
    executor.run(schedule, fns);
    zones.exchange_borders();
    if (step % 3 == 0) {
      double max_res = 0.0;
      for (double r : residuals) max_res = std::max(max_res, r);
      std::printf("  step %2d: max zone residual %.5f\n", step, max_res);
    }
  }

  // Cluster projection: the Fig. 17 trade-off in miniature.
  const npb::MultiZoneProblem big = npb::make_problem(npb::MzSolver::BT, 'C');
  const core::TaskGraph big_graph = npb::step_graph(big);
  const arch::Machine cluster = arch::Machine(arch::chic()).partition(512);
  const cost::CostModel cluster_cost(cluster);
  const sched::TimelineEvaluator eval(cluster_cost);
  std::printf("\nprojected %s per-step time on 512 CHiC cores:\n",
              big.name().c_str());
  for (int groups : {8, 32, 128, 256}) {
    sched::LayerSchedulerOptions big_opts;
    big_opts.fixed_groups = groups;
    const sched::LayeredSchedule s =
        sched::LayerScheduler(cluster_cost, big_opts).schedule(big_graph, 512);
    const std::vector<cost::LayerLayout> layouts =
        map::map_schedule(s, cluster, map::Strategy::Consecutive);
    std::printf("  %4d groups: %8.1f ms\n", groups,
                eval.evaluate(s, layouts).makespan * 1e3);
  }
  std::printf("medium group counts win: few groups pay group-internal\n"
              "synchronization, one-zone groups cannot balance the skewed\n"
              "BT-MZ zones.\n");
  return 0;
}
