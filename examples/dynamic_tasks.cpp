// Dynamic M-task scheduling demo (paper Section 2.2.2): adaptive quadrature
// with recursive task creation, the workload class the paper attributes to
// dynamic schedulers like the Tlib library.
//
// The integrand has a sharp peak; each task integrates an interval SPMD on
// its group and, if the coarse and fine estimates disagree, splits the
// interval into two child *tasks* (not just subintervals) -- so the task
// tree grows at runtime exactly where the problem is hard, and the
// scheduler keeps assigning freed core groups to the newly created tasks.
//
// Build & run:  ./build/examples/dynamic_tasks

#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>

#include "ptask/rt/dynamic_scheduler.hpp"

using namespace ptask;

namespace {

// A needle at x = 0.3 on a smooth background.
double f(double x) {
  return std::exp(-1e4 * (x - 0.3) * (x - 0.3)) + std::sin(3.0 * x);
}

/// Composite midpoint rule over [a, b] with `samples` points, evaluated
/// SPMD: each group member sums a block, the group allreduces.
double spmd_midpoint(rt::ExecContext& ctx, double a, double b, int samples) {
  const double h = (b - a) / samples;
  const int chunk = (samples + ctx.group_size - 1) / ctx.group_size;
  const int begin = ctx.group_rank * chunk;
  const int end = std::min(samples, begin + chunk);
  double local = 0.0;
  for (int i = begin; i < end; ++i) {
    local += f(a + (i + 0.5) * h);
  }
  return ctx.comm->allreduce_sum(ctx.group_rank, local) * h;
}

}  // namespace

int main() {
  const int cores = 8;
  rt::DynamicScheduler scheduler(cores);
  std::atomic<double> integral{0.0};
  std::atomic<int> leaves{0};
  std::atomic<int> splits{0};
  const double tol = 1e-9;

  std::function<void(double, double, double)> integrate =
      [&](double a, double b, double local_tol) {
        scheduler.submit(rt::DynamicTask{
            "quad", 1, 4, b - a, [&, a, b, local_tol](rt::ExecContext& ctx) {
              const double coarse = spmd_midpoint(ctx, a, b, 256);
              const double fine = spmd_midpoint(ctx, a, b, 512);
              if (ctx.group_rank != 0) return;  // one decider per group
              if (std::fabs(fine - coarse) < local_tol || b - a < 1e-6) {
                double cur = integral.load();
                while (!integral.compare_exchange_weak(cur, cur + fine)) {
                }
                leaves++;
              } else {
                splits++;
                const double mid = 0.5 * (a + b);
                integrate(a, mid, local_tol / 2.0);
                integrate(mid, b, local_tol / 2.0);
              }
            }});
      };

  integrate(0.0, 1.0, tol);
  scheduler.wait();

  // Reference: very fine fixed grid.
  double reference = 0.0;
  const int n = 4'000'000;
  for (int i = 0; i < n; ++i) {
    reference += f((i + 0.5) / n);
  }
  reference /= n;

  const rt::DynamicSchedulerStats stats = scheduler.stats();
  std::printf("adaptive quadrature of a needle integrand on [0, 1]\n");
  std::printf("  result     %.12f\n", integral.load());
  std::printf("  reference  %.12f\n", reference);
  std::printf("  |error|    %.2e\n", std::fabs(integral.load() - reference));
  std::printf("  task tree: %llu tasks (%d splits, %d leaves), "
              "max %d concurrent, groups %d..%d cores\n",
              static_cast<unsigned long long>(stats.tasks_completed),
              splits.load(), leaves.load(), stats.max_concurrent_tasks,
              stats.smallest_group, stats.largest_group);
  std::printf("\nthe task tree refined itself around the needle at x=0.3;\n"
              "the dynamic scheduler resized groups as the pending set\n"
              "changed -- no static schedule could have known this shape.\n");
  return 0;
}
