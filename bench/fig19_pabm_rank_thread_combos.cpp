// Reproduces Fig. 19: the PABM method with K=8 stages on 256 cores of the
// SGI Altix for different combinations of MPI processes and OpenMP threads.
// The Altix's distributed shared memory allows OpenMP teams to span nodes,
// so thread counts beyond the 4 cores of a node are meaningful.
//
// Expected shapes (paper Section 4.7):
//  * data-parallel version: the more threads the better -- 256 OpenMP
//    threads (a single MPI process) is best, because all collective
//    communication disappears into shared memory;
//  * task-parallel version: at least 8 MPI processes are required (one per
//    stage group); the optimum is 64 processes x 4 threads, i.e. one MPI
//    process per node.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace ptask;
using bench::RunConfig;
using bench::Version;

constexpr int kCores = 256;

double run(const ode::SolverGraphSpec& spec, Version version, int threads) {
  RunConfig config;
  config.machine = arch::altix();
  config.cores = kCores;
  config.version = version;
  config.strategy = map::Strategy::Consecutive;
  config.threads_per_rank = threads;
  return bench::run_step(spec, config).step_time;
}

}  // namespace

int main() {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  const std::size_t n = 2048;  // dense SCHROED system
  spec.n = n;
  spec.eval_flop_per_component = 4.0 * static_cast<double>(n);
  spec.stages = 8;
  spec.iterations = 2;

  std::printf("Fig. 19: PABM (K=8, SCHROED dense) on %d cores of the SGI\n"
              "Altix -- per-step time [ms] by (MPI processes x OpenMP\n"
              "threads); consecutive mapping\n", kCores);

  bench::print_header("per-step time [ms]",
                      {"ranks x threads", "data-parallel", "task-parallel"});
  double best_dp = 1e30, best_tp = 1e30;
  int best_dp_threads = 0, best_tp_threads = 0;
  for (int threads : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const int ranks = kCores / threads;
    char label[32];
    std::snprintf(label, sizeof(label), "%d x %d", ranks, threads);
    bench::print_cell(std::string(label));

    const double dp = run(spec, Version::DataParallel, threads);
    bench::print_cell(bench::ms(dp));
    if (dp < best_dp) {
      best_dp = dp;
      best_dp_threads = threads;
    }

    // The task-parallel version needs >= K ranks (one per stage group) and
    // the 32-core groups bound the team size.
    if (threads <= kCores / spec.stages / 1 && threads <= 32) {
      const double tp = run(spec, Version::TaskParallel, threads);
      bench::print_cell(bench::ms(tp));
      if (tp < best_tp) {
        best_tp = tp;
        best_tp_threads = threads;
      }
    } else {
      bench::print_cell(std::string("n/a"));
    }
    bench::end_row();
  }
  std::printf("\nbest data-parallel: %d threads/rank (%.3f ms)\n",
              best_dp_threads, best_dp * 1e3);
  std::printf("best task-parallel: %d threads/rank (%.3f ms)\n",
              best_tp_threads, best_tp * 1e3);
  std::printf(
      "expected shape: many rank/thread combinations are viable; the tp\n"
      "version needs at least K=8 MPI processes and stays ahead of dp\n"
      "throughout; moderate thread counts (<= one node) beat teams that\n"
      "span nodes.  Deviation from the paper: the paper's dp optimum is the\n"
      "fully threaded 1 x 256 configuration and its tp optimum 64 x 4; our\n"
      "model prices DSM-wide OpenMP teams by their synchronization latency\n"
      "only, which keeps the pure-MPI ends competitive (see\n"
      "EXPERIMENTS.md).\n");
  return 0;
}
