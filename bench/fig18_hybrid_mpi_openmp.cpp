// Reproduces Fig. 18: pure MPI vs hybrid MPI+OpenMP execution of the IRK
// and DIIRK methods (K=4 stages) on the CHiC cluster, with 4 OpenMP threads
// per node in the hybrid scheme and a consecutive mapping throughout.
//
// Expected shapes (paper Section 4.7):
//  * IRK (left): the hybrid data-parallel version achieves considerably
//    higher speedups than pure MPI -- fewer MPI processes participate in the
//    global communication, which cuts the per-node NIC traffic;
//  * DIIRK (right): hybrid execution *slows down* the data-parallel version
//    (its frequent broadcasts each pay a team fork/join) but clearly helps
//    the task-parallel version.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace ptask;
using bench::RunConfig;
using bench::Version;

double run(const ode::SolverGraphSpec& spec, int cores, Version version,
           int threads) {
  RunConfig config;
  config.machine = arch::chic();
  config.cores = cores;
  config.version = version;
  config.strategy = map::Strategy::Consecutive;
  config.threads_per_rank = threads;
  return bench::run_step(spec, config).step_time;
}

}  // namespace

int main() {
  std::printf("Fig. 18: pure MPI vs hybrid MPI+OpenMP (4 threads/node),\n"
              "CHiC cluster, consecutive mapping\n");

  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::IRK;
    spec.n = 2 * 256 * 256;
    spec.eval_flop_per_component = 14.0;
    spec.stages = 4;
    spec.iterations = 3;
    const double seq = bench::sequential_step_time(spec, arch::chic());

    bench::print_header("IRK (K=4, BRUSS2D): speedups",
                        {"cores", "dp MPI", "dp hybrid", "tp MPI",
                         "tp hybrid"});
    for (int cores : {64, 128, 256, 512}) {
      bench::print_cell(cores);
      bench::print_cell(seq / run(spec, cores, Version::DataParallel, 1));
      bench::print_cell(seq / run(spec, cores, Version::DataParallel, 4));
      bench::print_cell(seq / run(spec, cores, Version::TaskParallel, 1));
      bench::print_cell(seq / run(spec, cores, Version::TaskParallel, 4));
      bench::end_row();
    }
    std::printf("expected shape: dp hybrid considerably above dp MPI\n"
                "(global allgathers over 4x fewer ranks).\n");
  }

  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::DIIRK;
    spec.n = 1 << 15;
    spec.eval_flop_per_component = 14.0;
    spec.stages = 4;
    spec.iterations = 2;
    spec.inner_iterations = 2;
    spec.bcast_row_bytes = 8192;

    bench::print_header("DIIRK (K=4, BRUSS2D): per-step times [ms]",
                        {"cores", "dp MPI", "dp hybrid", "tp MPI",
                         "tp hybrid"});
    for (int cores : {64, 128, 256, 512}) {
      bench::print_cell(cores);
      bench::print_cell(bench::ms(run(spec, cores, Version::DataParallel, 1)));
      bench::print_cell(bench::ms(run(spec, cores, Version::DataParallel, 4)));
      bench::print_cell(bench::ms(run(spec, cores, Version::TaskParallel, 1)));
      bench::print_cell(bench::ms(run(spec, cores, Version::TaskParallel, 4)));
      bench::end_row();
    }
    std::printf(
        "expected shape: dp hybrid *slower* than dp MPI (every one of the\n"
        "many broadcasts pays a team fork/join).  Deviation from the paper:\n"
        "tp hybrid lands within a few percent of tp MPI instead of clearly\n"
        "below it -- the paper's tp win comes from intra-node shared-memory\n"
        "effects our rank-level collective model does not capture (see\n"
        "EXPERIMENTS.md).\n");
  }
  return 0;
}
