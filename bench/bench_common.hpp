#pragma once
/// \file bench_common.hpp
/// Shared machinery of the figure/table reproduction benches: configuring a
/// solver + machine + program version + mapping, evaluating the per-step
/// time (analytically or through the discrete-event simulator), and printing
/// aligned result tables.

#include <cstdio>
#include <string>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"

namespace ptask::bench {

/// Program version of Section 4.2: data-parallel or task-parallel.
enum class Version { DataParallel, TaskParallel };

inline const char* to_string(Version v) {
  return v == Version::DataParallel ? "dp" : "tp";
}

struct RunConfig {
  arch::MachineSpec machine = arch::chic();
  int cores = 64;
  Version version = Version::TaskParallel;
  map::Strategy strategy = map::Strategy::Consecutive;
  int mixed_d = 1;
  int threads_per_rank = 1;  ///< >1: hybrid MPI+OpenMP execution
  bool simulate = false;     ///< discrete-event simulation vs analytic model
  /// Group count for the task-parallel version; 0 derives it from the spec
  /// (R/2 for EPOL, K otherwise -- the paper's tp schemes).
  int fixed_groups = 0;
};

/// Task-parallel group count of the paper's program versions.
inline int default_tp_groups(const ode::SolverGraphSpec& spec) {
  return spec.method == ode::Method::EPOL ? std::max(1, spec.stages / 2)
                                          : spec.stages;
}

struct RunResult {
  double step_time = 0.0;       ///< seconds per time step
  double redistribution = 0.0;  ///< analytic re-distribution share
  int groups = 1;               ///< groups of the first layer
};

/// Schedules, maps, and evaluates one time step of `spec` under `config`.
inline RunResult run_step(const ode::SolverGraphSpec& spec,
                          const RunConfig& config) {
  const arch::Machine full(config.machine);
  const arch::Machine machine = full.partition(config.cores);
  const cost::CostModel cost(machine);

  sched::LayeredSchedule schedule;
  if (config.version == Version::DataParallel) {
    schedule = sched::DataParallelScheduler(cost).schedule(spec.step_graph(),
                                                           config.cores);
  } else {
    sched::LayerSchedulerOptions opts;
    opts.fixed_groups = config.fixed_groups > 0 ? config.fixed_groups
                                                : default_tp_groups(spec);
    schedule =
        sched::LayerScheduler(cost, opts).schedule(spec.step_graph(),
                                                   config.cores);
  }

  const std::vector<cost::LayerLayout> layouts = map::map_schedule(
      schedule, machine, config.strategy, config.mixed_d);

  sched::TimelineOptions opts;
  opts.threads_per_rank = config.threads_per_rank;
  const sched::TimelineEvaluator eval(cost);

  RunResult result;
  result.groups = schedule.layers.front().num_groups();
  if (config.simulate) {
    result.step_time = eval.simulate(schedule, layouts, opts).makespan;
  } else {
    const sched::TimelineResult r = eval.evaluate(schedule, layouts, opts);
    result.step_time = r.makespan;
    result.redistribution = r.redistribution_time;
  }
  return result;
}

/// Sequential time of one step (for speedup figures).
inline double sequential_step_time(const ode::SolverGraphSpec& spec,
                                   const arch::MachineSpec& machine) {
  return spec.step_graph().total_work_flop() /
         (machine.core_flops * machine.core_efficiency);
}

// ---- table printing ----

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void print_cell(const std::string& value) {
  std::printf("%16s", value.c_str());
}

inline void print_cell(double value) { std::printf("%16.4g", value); }
inline void print_cell(int value) { std::printf("%16d", value); }
inline void end_row() { std::printf("\n"); }

inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return std::string(buf);
}

}  // namespace ptask::bench
