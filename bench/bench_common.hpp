#pragma once
/// \file bench_common.hpp
/// Shared machinery of the figure/table reproduction benches: configuring a
/// solver + machine + program version + mapping, evaluating the per-step
/// time (analytically or through the discrete-event simulator), printing
/// aligned result tables, and writing machine-readable BENCH_*.json result
/// files (the perf-trajectory artifact CI uploads).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <utility>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"

namespace ptask::bench {

/// Program version of Section 4.2: data-parallel or task-parallel.
enum class Version { DataParallel, TaskParallel };

inline const char* to_string(Version v) {
  return v == Version::DataParallel ? "dp" : "tp";
}

struct RunConfig {
  arch::MachineSpec machine = arch::chic();
  int cores = 64;
  Version version = Version::TaskParallel;
  map::Strategy strategy = map::Strategy::Consecutive;
  int mixed_d = 1;
  int threads_per_rank = 1;  ///< >1: hybrid MPI+OpenMP execution
  bool simulate = false;     ///< discrete-event simulation vs analytic model
  /// Group count for the task-parallel version; 0 derives it from the spec
  /// (R/2 for EPOL, K otherwise -- the paper's tp schemes).
  int fixed_groups = 0;
};

/// Task-parallel group count of the paper's program versions.
inline int default_tp_groups(const ode::SolverGraphSpec& spec) {
  return spec.method == ode::Method::EPOL ? std::max(1, spec.stages / 2)
                                          : spec.stages;
}

struct RunResult {
  double step_time = 0.0;       ///< seconds per time step
  double redistribution = 0.0;  ///< analytic re-distribution share
  int groups = 1;               ///< groups of the first layer
};

/// Schedules, maps, and evaluates one time step of `spec` under `config`.
inline RunResult run_step(const ode::SolverGraphSpec& spec,
                          const RunConfig& config) {
  const arch::Machine full(config.machine);
  const arch::Machine machine = full.partition(config.cores);
  const cost::CostModel cost(machine);

  sched::LayeredSchedule schedule;
  if (config.version == Version::DataParallel) {
    schedule = sched::DataParallelScheduler(cost).schedule(spec.step_graph(),
                                                           config.cores);
  } else {
    sched::LayerSchedulerOptions opts;
    opts.fixed_groups = config.fixed_groups > 0 ? config.fixed_groups
                                                : default_tp_groups(spec);
    schedule =
        sched::LayerScheduler(cost, opts).schedule(spec.step_graph(),
                                                   config.cores);
  }

  const std::vector<cost::LayerLayout> layouts = map::map_schedule(
      schedule, machine, config.strategy, config.mixed_d);

  sched::TimelineOptions opts;
  opts.threads_per_rank = config.threads_per_rank;
  const sched::TimelineEvaluator eval(cost);

  RunResult result;
  result.groups = schedule.layers.front().num_groups();
  if (config.simulate) {
    result.step_time = eval.simulate(schedule, layouts, opts).makespan;
  } else {
    const sched::TimelineResult r = eval.evaluate(schedule, layouts, opts);
    result.step_time = r.makespan;
    result.redistribution = r.redistribution_time;
  }
  return result;
}

/// Sequential time of one step (for speedup figures).
inline double sequential_step_time(const ode::SolverGraphSpec& spec,
                                   const arch::MachineSpec& machine) {
  return spec.step_graph().total_work_flop() /
         (machine.core_flops * machine.core_efficiency);
}

// ---- table printing ----

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void print_cell(const std::string& value) {
  std::printf("%16s", value.c_str());
}

inline void print_cell(double value) { std::printf("%16.4g", value); }
inline void print_cell(int value) { std::printf("%16d", value); }
inline void end_row() { std::printf("\n"); }

inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return std::string(buf);
}

// ---- machine-readable benchmark results (BENCH_*.json) ----

/// One timed run of one benchmark configuration.
struct BenchSample {
  std::string name;               ///< e.g. "BM_LayerScheduler/64"
  std::int64_t iterations = 0;    ///< iterations of this run
  double seconds_per_iter = 0.0;  ///< real wall time per iteration
};

/// Aggregated row written to the JSON file: median/p90 over the repetitions
/// of one benchmark name.  With a single sample both quantiles degrade to
/// that sample.
struct BenchStat {
  std::string name;
  std::size_t samples = 0;
  std::int64_t iterations = 0;  ///< summed over samples
  double median_s = 0.0;
  double p90_s = 0.0;
};

/// Nearest-rank percentile (q in [0, 1]) of an unsorted sample vector.
/// Thin alias over the shared obs reference implementation so bench JSON
/// and the metrics layer agree on percentile semantics.
inline double percentile(std::vector<double> values, double q) {
  return ptask::obs::percentile_nearest_rank(std::move(values), q);
}

/// Groups samples by benchmark name (preserving first-seen order) and
/// reduces each group to a BenchStat.
inline std::vector<BenchStat> summarize_bench(
    const std::vector<BenchSample>& samples) {
  std::vector<BenchStat> stats;
  std::vector<std::vector<double>> times;
  for (const BenchSample& s : samples) {
    std::size_t i = 0;
    while (i < stats.size() && stats[i].name != s.name) ++i;
    if (i == stats.size()) {
      stats.push_back(BenchStat{s.name, 0, 0, 0.0, 0.0});
      times.emplace_back();
    }
    ++stats[i].samples;
    stats[i].iterations += s.iterations;
    times[i].push_back(s.seconds_per_iter);
  }
  for (std::size_t i = 0; i < stats.size(); ++i) {
    stats[i].median_s = percentile(times[i], 0.5);
    stats[i].p90_s = percentile(times[i], 0.9);
  }
  return stats;
}

inline void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// Renders the aggregated results as a self-contained JSON document:
/// {"benchmarks": [{"name", "samples", "iterations", "median_s", "p90_s"}]}.
inline std::string render_bench_json(const std::vector<BenchStat>& stats) {
  std::string out = "{\"benchmarks\":[";
  char buf[128];
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"name\":\"";
    append_json_escaped(out, stats[i].name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"samples\":%zu,\"iterations\":%lld,"
                  "\"median_s\":%.9g,\"p90_s\":%.9g}",
                  stats[i].samples,
                  static_cast<long long>(stats[i].iterations),
                  stats[i].median_s, stats[i].p90_s);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

/// Writes the JSON document to `path`; returns false on I/O failure.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchSample>& samples) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = render_bench_json(summarize_bench(samples));
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ptask::bench
