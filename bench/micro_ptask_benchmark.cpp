// Google-benchmark micro benchmarks of the library machinery itself:
// scheduler throughput, collective schedule generation, discrete-event
// simulation rate, chain contraction, and re-distribution planning.

#include <benchmark/benchmark.h>

#include <numeric>

#include "ptask/core/graph_algorithms.hpp"
#include "ptask/dist/redistribution.hpp"
#include "ptask/net/collectives.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/cpa_scheduler.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sim/network_sim.hpp"

namespace {

using namespace ptask;

arch::Machine machine(int nodes) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

ode::SolverGraphSpec pabm_spec(int stages) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  spec.n = 1 << 14;
  spec.stages = stages;
  spec.iterations = 2;
  return spec;
}

void BM_LayerScheduler(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 4);
  const cost::CostModel cost(m);
  const core::TaskGraph g = pabm_spec(8).step_graph();
  const sched::LayerScheduler scheduler(cost);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g, cores));
  }
}
BENCHMARK(BM_LayerScheduler)->Arg(64)->Arg(256)->Arg(1024);

void BM_CpaScheduler(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 4);
  const cost::CostModel cost(m);
  const core::TaskGraph g = pabm_spec(8).step_graph();
  const sched::CpaScheduler scheduler(cost);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g, cores));
  }
}
BENCHMARK(BM_CpaScheduler)->Arg(64)->Arg(256);

void BM_ChainContraction(benchmark::State& state) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 12;
  spec.stages = static_cast<int>(state.range(0));
  const core::TaskGraph g = spec.step_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::contract_linear_chains(g));
  }
}
BENCHMARK(BM_ChainContraction)->Arg(8)->Arg(16)->Arg(32);

void BM_RingAllgatherSimulation(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const arch::Machine m = machine(ranks / 4);
  std::vector<int> placement(static_cast<std::size_t>(ranks));
  std::iota(placement.begin(), placement.end(), 0);
  sim::ProgramSet programs(ranks);
  programs.add_collective(net::ring_allgather(ranks, 64 * 1024), placement);
  const sim::NetworkSim sim(m, placement);
  std::size_t messages = 0;
  for (auto _ : state) {
    const sim::SimResult result = sim.run(programs);
    messages += result.transfers;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
}
BENCHMARK(BM_RingAllgatherSimulation)->Arg(64)->Arg(256);

void BM_RedistributionPlan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::RedistributionPlan::compute(
        n, 8, dist::Distribution::block(), 16, dist::Distribution::cyclic(),
        32, false));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RedistributionPlan)->Arg(1 << 12)->Arg(1 << 16);

void BM_CollectiveScheduleGeneration(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ring_allgather(ranks, 4096));
    benchmark::DoNotOptimize(net::binomial_bcast(ranks, 0, 4096));
    benchmark::DoNotOptimize(net::allreduce(ranks, 4096));
  }
}
BENCHMARK(BM_CollectiveScheduleGeneration)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
