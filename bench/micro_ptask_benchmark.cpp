// Google-benchmark micro benchmarks of the library machinery itself:
// scheduler throughput, collective schedule generation, discrete-event
// simulation rate, chain contraction, re-distribution planning, and
// executor dispatch (the hot path the obs instrumentation must not slow
// down when tracing is disabled).
//
// Besides the usual console output, results can be written as a
// machine-readable JSON file (median/p90 wall time per benchmark) for the
// perf-trajectory artifact CI uploads:
//   micro_ptask_benchmark --json BENCH_micro.json [--benchmark_repetitions=3]
// or, equivalently, PTASK_BENCH_JSON=BENCH_micro.json.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "ptask/core/graph_algorithms.hpp"
#include "ptask/dist/redistribution.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/net/collectives.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/cpa_scheduler.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/portfolio.hpp"
#include "ptask/sim/network_sim.hpp"

namespace {

using namespace ptask;

arch::Machine machine(int nodes) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

ode::SolverGraphSpec pabm_spec(int stages) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  spec.n = 1 << 14;
  spec.stages = stages;
  spec.iterations = 2;
  return spec;
}

void BM_LayerScheduler(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 4);
  const cost::CostModel cost(m);
  const core::TaskGraph g = pabm_spec(8).step_graph();
  const sched::LayerScheduler scheduler(cost);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g, cores));
  }
}
BENCHMARK(BM_LayerScheduler)->Arg(64)->Arg(256)->Arg(1024);

// Large fuzz-family instances for the scheduler hot-path benchmarks
// (ISSUE: memoized costs, heap LPT, pruned group search, parallel layers).
// Seeds were probed so the graphs land in the 5k-50k task range with wide
// layers; edge density is kept low so graph construction stays cheap
// relative to scheduling.

/// ~50k tasks, layers up to 1024 wide (fuzz Layered family, fixed seed).
const core::TaskGraph& large_layered_graph() {
  static const core::TaskGraph graph = [] {
    fuzz::GeneratorParams params;
    params.max_width = 1024;
    params.max_depth = 150;
    params.edge_density = 0.01;
    fuzz::Rng rng(fuzz::substream(0xB16B00ull, 2));
    return fuzz::layered_graph(rng, params);
  }();
  return graph;
}

/// ~6k tasks, layers up to 256 wide (portfolio-sized sibling).
const core::TaskGraph& medium_layered_graph() {
  static const core::TaskGraph graph = [] {
    fuzz::GeneratorParams params;
    params.max_width = 256;
    params.max_depth = 40;
    params.edge_density = 0.02;
    fuzz::Rng rng(fuzz::substream(0x5CA1Eull, 1));
    return fuzz::layered_graph(rng, params);
  }();
  return graph;
}

void BM_LayerSchedulerLarge(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 64);
  const cost::CostModel cost(m);
  const core::TaskGraph& g = large_layered_graph();
  const sched::LayerScheduler scheduler(cost);  // all optimizations on
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g, cores));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_LayerSchedulerLarge)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_LayerSchedulerLargeParallel(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 64);
  const cost::CostModel cost(m);
  const core::TaskGraph& g = large_layered_graph();
  sched::LayerSchedulerOptions options;
  options.parallel_layers = 8;
  const sched::LayerScheduler scheduler(cost, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g, cores));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_LayerSchedulerLargeParallel)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// The large layered instance plus a stream of 1% arrival batches appended
/// at the tail: the settled base is the whole graph; each GraphDelta slab
/// carries n/100 new tasks forming five fresh trailing layers (each new
/// task depends on two tasks of the previous frontier) -- the shape of an
/// iterative application appending its next timestep.  This is the
/// online-arrival pattern the incremental core targets: work arrives at the
/// end of the DAG, the settled layers stay untouched, and the repair
/// re-schedules only the new layers.  Every new task has in-degree 2, so
/// an arrival also cannot extend any existing linear chain (contraction of
/// the settled graph is stable).
struct IncrementalSplit {
  core::TaskGraph base;
  std::vector<sched::GraphDelta> slabs;
};

const IncrementalSplit& large_incremental_split() {
  static const IncrementalSplit split = [] {
    constexpr int kSlabs = 16;
    const core::TaskGraph& g = large_layered_graph();
    const core::TaskId n = g.num_tasks();
    const core::TaskId batch = n / 100;
    const core::TaskId width = batch / 5;  // five new layers per slab

    // The attachment frontier of the first slab: original tasks whose
    // contracted node sits in the final layer of the settled schedule (for
    // chains, the chain tail).  Later slabs attach to the last layer of the
    // slab before them.
    const core::ChainContraction contraction = core::contract_linear_chains(g);
    const std::vector<std::vector<core::TaskId>> layers =
        core::greedy_layers(contraction.contracted);
    std::vector<core::TaskId> frontier;
    for (const core::TaskId node : layers.back()) {
      frontier.push_back(
          contraction.members[static_cast<std::size_t>(node)].back());
    }

    IncrementalSplit out;
    out.base = g;
    std::vector<core::TaskId> previous = std::move(frontier);
    std::vector<core::TaskId> current;
    for (int s = 0; s < kSlabs; ++s) {
      sched::GraphDelta delta;
      delta.release_time = 1.0 + s;
      for (core::TaskId i = 0; i < batch; ++i) {
        if (i > 0 && i % width == 0) {  // next new layer
          previous = std::move(current);
          current.clear();
        }
        core::TaskId sample = (i * 37) % n;  // realistic task mix
        while (g.task(sample).is_marker()) sample = (sample + 1) % n;
        sched::ArrivingTask arriving;
        arriving.task = g.task(sample);
        arriving.release_time = delta.release_time;
        delta.tasks.push_back(std::move(arriving));
        const core::TaskId id = n + s * batch + i;
        const std::size_t f = static_cast<std::size_t>(i);
        delta.edges.emplace_back(previous[f % previous.size()], id);
        delta.edges.emplace_back(previous[(f + 1) % previous.size()], id);
        current.push_back(id);
      }
      previous = std::move(current);
      current.clear();
      out.slabs.push_back(std::move(delta));
    }
    return out;
  }();
  return split;
}

// Online repair throughput: extend a settled ~50k-task schedule by a 1%
// arrival batch.  One untimed reset settles the base schedule, then every
// iteration times one extend with the next slab of the arrival stream --
// the steady state of a long-lived scheduling session.  The headline ratio
// against BM_LayerSchedulerLarge/4096 (a full re-schedule of the same
// instance) is the incremental core's speedup and is gated at >=10x by
// tools/check_bench_ceiling.py's committed baseline.  Iterations are pinned
// to the slab count so the stream never wraps.
void BM_IncrementalExtend(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 64);
  const cost::CostModel cost(m);
  const IncrementalSplit& split = large_incremental_split();
  sched::IncrementalScheduler scheduler(cost);
  scheduler.reset(split.base, cores);
  std::size_t next = 0;
  for (auto _ : state) {
    if (next == split.slabs.size()) {
      state.PauseTiming();
      scheduler.reset(split.base, cores);
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(scheduler.extend(split.slabs[next++]));
  }
  state.counters["tasks"] = static_cast<double>(split.base.num_tasks());
  state.counters["delta_tasks"] =
      static_cast<double>(split.slabs.front().tasks.size());
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(split.slabs.front().tasks.size()));
}
BENCHMARK(BM_IncrementalExtend)->Arg(4096)->Iterations(16)->Repetitions(1)
    ->Unit(benchmark::kMillisecond);

// The optimization-disabled reference path on the same instance -- the
// denominator of the speedup recorded in BENCH_micro.json.  Pinned to one
// iteration and one repetition (overriding --benchmark_repetitions): the
// naive group search on 50k tasks x 4096 cores takes ~40 s, and a single
// sample is plenty for a >20x headline ratio.
void BM_LayerSchedulerLargeBaseline(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 64);
  const cost::CostModel cost(m);
  const core::TaskGraph& g = large_layered_graph();
  sched::LayerSchedulerOptions options;
  options.cost_cache = false;
  options.heap_lpt = false;
  options.prune_group_search = false;
  options.parallel_layers = 1;
  const sched::LayerScheduler scheduler(cost, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g, cores));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_LayerSchedulerLargeBaseline)->Arg(4096)->Iterations(1)
    ->Repetitions(1)->Unit(benchmark::kMillisecond);

void BM_PortfolioScheduleLarge(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 64);
  const cost::CostModel cost(m);
  const core::TaskGraph& g = medium_layered_graph();
  // Restricted to the strategies that stay tractable at this size: cpa is
  // ~18 s and cpr runs into minutes on 6k tasks x 1024 cores, which would
  // drown the hot-path + shared-cache signal this benchmark tracks.
  sched::PortfolioOptions options;
  options.strategies = {"layer", "dp", "mcpa"};
  const sched::PortfolioScheduler scheduler(cost, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run(g, cores));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_PortfolioScheduleLarge)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_CpaScheduler(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 4);
  const cost::CostModel cost(m);
  const core::TaskGraph g = pabm_spec(8).step_graph();
  const sched::CpaScheduler scheduler(cost);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g, cores));
  }
}
BENCHMARK(BM_CpaScheduler)->Arg(64)->Arg(256);

void BM_PortfolioSchedule(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(cores / 4);
  const cost::CostModel cost(m);
  const core::TaskGraph g = pabm_spec(8).step_graph();
  const sched::PortfolioScheduler scheduler(cost);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run(g, cores));
  }
}
BENCHMARK(BM_PortfolioSchedule)->Arg(64)->Arg(256);

void BM_ChainContraction(benchmark::State& state) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 12;
  spec.stages = static_cast<int>(state.range(0));
  const core::TaskGraph g = spec.step_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::contract_linear_chains(g));
  }
}
BENCHMARK(BM_ChainContraction)->Arg(8)->Arg(16)->Arg(32);

void BM_RingAllgatherSimulation(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const arch::Machine m = machine(ranks / 4);
  std::vector<int> placement(static_cast<std::size_t>(ranks));
  std::iota(placement.begin(), placement.end(), 0);
  sim::ProgramSet programs(ranks);
  programs.add_collective(net::ring_allgather(ranks, 64 * 1024), placement);
  const sim::NetworkSim sim(m, placement);
  std::size_t messages = 0;
  for (auto _ : state) {
    const sim::SimResult result = sim.run(programs);
    messages += result.transfers;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
}
BENCHMARK(BM_RingAllgatherSimulation)->Arg(64)->Arg(256);

void BM_RedistributionPlan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::RedistributionPlan::compute(
        n, 8, dist::Distribution::block(), 16, dist::Distribution::cyclic(),
        32, false));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RedistributionPlan)->Arg(1 << 12)->Arg(1 << 16);

void BM_CollectiveScheduleGeneration(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ring_allgather(ranks, 4096));
    benchmark::DoNotOptimize(net::binomial_bcast(ranks, 0, 4096));
    benchmark::DoNotOptimize(net::allreduce(ranks, 4096));
  }
}
BENCHMARK(BM_CollectiveScheduleGeneration)->Arg(64)->Arg(512);

// Executor dispatch of a whole scheduled time step with near-empty task
// bodies -- this is the path every obs instrumentation site sits on, so
// comparing this benchmark between -DPTASK_OBS=ON (tracing disabled at
// runtime) and -DPTASK_OBS=OFF bounds the disabled-tracing overhead.
void BM_ExecutorRun(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const arch::Machine m = machine(1);
  const cost::CostModel cost(m);
  const core::TaskGraph g = pabm_spec(4).step_graph();
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cost).schedule(g, cores);
  rt::Executor exec(cores);
  std::vector<rt::TaskFn> fns(static_cast<std::size_t>(g.num_tasks()));
  for (auto& fn : fns) {
    fn = [](rt::ExecContext& ctx) {
      benchmark::DoNotOptimize(ctx.comm->allreduce_sum(ctx.group_rank, 1.0));
    };
  }
  for (auto _ : state) {
    exec.run(schedule, fns);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_ExecutorRun)->Arg(4)->Arg(8)->UseRealTime();

// Console reporter that additionally captures every per-iteration run for
// the machine-readable JSON file.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      ptask::bench::BenchSample sample;
      sample.name = run.benchmark_name();
      sample.iterations = static_cast<std::int64_t>(run.iterations);
      sample.seconds_per_iter =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      samples.push_back(std::move(sample));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<ptask::bench::BenchSample> samples;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  if (const char* env = std::getenv("PTASK_BENCH_JSON")) json_path = env;

  // Strip --json PATH / --json=PATH before google-benchmark sees the args.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    if (!ptask::bench::write_bench_json(json_path, reporter.samples)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu samples)\n", json_path.c_str(),
                 reporter.samples.size());
  }
  return 0;
}
