// Reproduces Table 1: the number and type of collective communication
// operations executed for one time step of every ODE solver, in the
// data-parallel (dp) and the task-parallel (tp) program version.
//
// The counts are extracted from the generated task graphs under the
// respective schedule (see ode::count_comms): group-scope collectives in a
// one-group layer are global operations; orthogonal operations vanish with a
// single group; multi-group layers are counted for one of the disjoint
// groups, as in the paper.  The "paper" columns give the values of the
// formulas in Table 1 for the concrete parameters used here.

#include <cstdio>

#include "bench_common.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"

namespace {

using namespace ptask;

struct Row {
  const char* name;
  ode::SolverGraphSpec spec;
  bench::Version version;
  // Paper formula values: {global Tag, global Tbc, group Tag, group Tbc,
  // orth Tag}.
  int expect[5];
};

ode::CommCounts counts_for(const ode::SolverGraphSpec& spec,
                           bench::Version version, int cores) {
  arch::MachineSpec machine = arch::chic();
  machine.num_nodes = cores / machine.cores_per_node();
  const cost::CostModel cost((arch::Machine(machine)));
  if (version == bench::Version::DataParallel) {
    return ode::count_comms(
        sched::DataParallelScheduler(cost).schedule(spec.step_graph(), cores));
  }
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = bench::default_tp_groups(spec);
  return ode::count_comms(
      sched::LayerScheduler(cost, opts).schedule(spec.step_graph(), cores));
}

}  // namespace

int main() {
  const int R = 4;       // EPOL approximations
  const int K = 4;       // stage vectors
  const int m = 2;       // fixed point / corrector iterations
  const int I = 2;       // DIIRK inner iterations
  const int cores = 64;
  const std::size_t n = 1 << 12;  // ODE system size (enters DIIRK's counts)
  const int nn = static_cast<int>(n);

  auto spec = [&](ode::Method method) {
    ode::SolverGraphSpec s;
    s.method = method;
    s.n = n;
    s.stages = method == ode::Method::EPOL ? R : K;
    s.iterations = m;
    s.inner_iterations = I;
    return s;
  };

  const Row rows[] = {
      {"EPOL(dp)", spec(ode::Method::EPOL), bench::Version::DataParallel,
       {R * (R + 1) / 2, 0, 0, 0, 0}},
      {"EPOL(tp)", spec(ode::Method::EPOL), bench::Version::TaskParallel,
       {0, 1, R + 1, 0, 0}},
      {"IRK(dp)", spec(ode::Method::IRK), bench::Version::DataParallel,
       {K * m + 1, 0, 0, 0, 0}},
      {"IRK(tp)", spec(ode::Method::IRK), bench::Version::TaskParallel,
       {1, 0, m, 0, m}},
      {"DIIRK(dp)", spec(ode::Method::DIIRK), bench::Version::DataParallel,
       {1, K * (nn - 1) * I, 0, 0, 0}},
      {"DIIRK(tp)", spec(ode::Method::DIIRK), bench::Version::TaskParallel,
       {1, 0, 0, (nn - 1) * I, m}},
      {"PAB(dp)", spec(ode::Method::PAB), bench::Version::DataParallel,
       {K, 0, 0, 0, 0}},
      {"PAB(tp)", spec(ode::Method::PAB), bench::Version::TaskParallel,
       {0, 0, 1, 0, 1}},
      {"PABM(dp)", spec(ode::Method::PABM), bench::Version::DataParallel,
       {K * (1 + m), 0, 0, 0, 0}},
      {"PABM(tp)", spec(ode::Method::PABM), bench::Version::TaskParallel,
       {0, 0, 1 + m, 0, 1}},
  };

  std::printf("Table 1: collective communication operations per time step\n");
  std::printf("parameters: R=%d K=%d m=%d I=%d n=%d, %d cores (CHiC)\n", R, K,
              m, I, nn, cores);
  std::printf(
      "note: tp rows with a re-distribution between different group\n"
      "structures report it as 1 global Tbc (EPOL's combine); the paper\n"
      "folds the IRK/DIIRK update re-distribution into the final global\n"
      "allgather, and so do we.\n");
  bench::print_header(
      "counted vs. paper (counted/paper)",
      {"version", "glob Tag", "glob Tbc", "grp Tag", "grp Tbc", "orth Tag",
       "match"});

  bool all_match = true;
  for (const Row& row : rows) {
    const ode::CommCounts c = counts_for(row.spec, row.version, cores);
    const int got[5] = {c.global_allgather, c.global_bcast, c.group_allgather,
                        c.group_bcast, c.orth_allgather};
    bool match = true;
    bench::print_cell(std::string(row.name));
    for (int i = 0; i < 5; ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%d/%d", got[i], row.expect[i]);
      bench::print_cell(std::string(buf));
      match = match && got[i] == row.expect[i];
    }
    bench::print_cell(std::string(match ? "yes" : "NO"));
    bench::end_row();
    all_match = all_match && match;
  }
  std::printf("\nTable 1 reproduction: %s\n",
              all_match ? "all rows match" : "MISMATCH");
  return all_match ? 0 : 1;
}
