// Reproduces Fig. 13: comparison of the layer-based scheduling algorithm
// (Section 3.2) with CPA, CPR, and pure data parallelism on the CHiC
// cluster.
//
//  * Left: speedups of the PABM method with K = 8 stage vectors (sparse
//    BRUSS2D system) -- CPA must fall far behind because its allocation
//    phase over-allocates the 8 independent stage tasks; CPR must coincide
//    with the task-parallel layer schedule.
//  * Right: per-step execution times of the EPOL method with R = 8
//    approximations -- CPR inflates the longest chain towards a data
//    parallel execution and ends up slower than pure data parallelism.
//
// All schedulers are evaluated under the same symbolic cost model (the
// quantity they optimize); the layered schemes are additionally priced with
// the mapped analytic model under a consecutive mapping, as in the paper.

#include <cstdio>

#include "bench_common.hpp"
#include "ptask/sched/cpa_scheduler.hpp"
#include "ptask/sched/cpr_scheduler.hpp"

namespace {

using namespace ptask;

struct SchedulerTimes {
  double layered;  // task-parallel layer-based schedule (Algorithm 1)
  double cpa;
  double cpr;
  double dp;
};

/// Evaluates a layered schedule's full cost: predicted layer times plus the
/// re-distribution operations between layers.
double layered_cost(const sched::LayeredSchedule& schedule,
                    const cost::CostModel& cost) {
  const sched::GanttSchedule gantt = sched::to_gantt(
      schedule, [&](core::TaskId id, int q, int groups) {
        return cost.symbolic_task_time(
            schedule.contraction.contracted.task(id), q, groups,
            schedule.total_cores);
      });
  return schedule.predicted_makespan +
         sched::gantt_redistribution_time(schedule.contraction.contracted,
                                          gantt, cost);
}

/// Evaluates a moldable allocation's full cost: the list schedule re-timed
/// with the communication-aware task times plus re-distribution penalties.
double moldable_cost(const core::TaskGraph& g,
                     const std::vector<int>& allocation,
                     const cost::CostModel& cost, int cores) {
  const sched::TaskTimeTable true_table(g, cost, cores,
                                        sched::MoldableCostMode::CommAware);
  const sched::GanttSchedule gantt =
      sched::list_schedule(g, allocation, true_table);
  return gantt.makespan + sched::gantt_redistribution_time(g, gantt, cost);
}

SchedulerTimes compare(const ode::SolverGraphSpec& spec, int cores) {
  arch::MachineSpec machine = arch::chic();
  const arch::Machine part = arch::Machine(machine).partition(cores);
  const cost::CostModel cost(part);
  // All schedulers receive the raw step graph; chain contraction is part of
  // the layer-based algorithm only (Section 3.2, step 1).
  const core::TaskGraph g = spec.step_graph();

  SchedulerTimes times{};
  times.layered = layered_cost(sched::LayerScheduler(cost).schedule(g, cores),
                               cost);
  times.dp = layered_cost(
      sched::DataParallelScheduler(cost).schedule(g, cores), cost);
  times.cpa = moldable_cost(
      g, sched::CpaScheduler(cost).schedule(g, cores).allocation, cost, cores);
  times.cpr = moldable_cost(
      g, sched::CprScheduler(cost).schedule(g, cores).allocation, cost, cores);
  return times;
}

}  // namespace

int main() {
  // ---- Fig. 13 left: PABM, K = 8, speedups over the sequential step ----
  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::PABM;
    spec.n = 2 * 448 * 448;  // BRUSS2D N=448
    spec.eval_flop_per_component = 14.0;
    spec.stages = 8;
    spec.iterations = 2;
    const double seq = bench::sequential_step_time(spec, arch::chic());

    std::printf("Fig. 13 (left): PABM with K=8 stage vectors, BRUSS2D,\n"
                "CHiC cluster -- speedup of one time step\n");
    bench::print_header("speedups",
                        {"cores", "layer-based", "CPA", "CPR", "data-par"});
    for (int cores : {32, 64, 128, 256, 512}) {
      const SchedulerTimes t = compare(spec, cores);
      bench::print_cell(cores);
      bench::print_cell(seq / t.layered);
      bench::print_cell(seq / t.cpa);
      bench::print_cell(seq / t.cpr);
      bench::print_cell(seq / t.dp);
      bench::end_row();
    }
    std::printf("expected shape: CPA clearly lowest (over-allocation of the\n"
                "8 stage tasks); CPR ~ layer-based; data-parallel between.\n");
  }

  // ---- Fig. 13 right: EPOL, R = 8, per-step execution times ----
  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::EPOL;
    spec.n = 2 * 448 * 448;
    spec.eval_flop_per_component = 14.0;
    spec.stages = 8;

    std::printf("\nFig. 13 (right): EPOL with R=8 approximations, BRUSS2D,\n"
                "CHiC cluster -- execution time of one time step [ms]\n");
    bench::print_header("per-step times [ms]",
                        {"cores", "layer-based", "CPA", "CPR", "data-par"});
    for (int cores : {32, 64, 128, 256, 512}) {
      const SchedulerTimes t = compare(spec, cores);
      bench::print_cell(cores);
      bench::print_cell(bench::ms(t.layered));
      bench::print_cell(bench::ms(t.cpa));
      bench::print_cell(bench::ms(t.cpr));
      bench::print_cell(bench::ms(t.dp));
      bench::end_row();
    }
    std::printf("expected shape: CPR slower than pure data parallelism\n"
                "(it widens the longest chain); layer-based fastest.\n");
  }
  return 0;
}
