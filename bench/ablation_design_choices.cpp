// Ablation study of the layer-based scheduling algorithm's design choices
// (paper Section 3.2):
//
//  * step 1, linear chain contraction -- without it, the micro-step chains
//    of the extrapolation method are layered individually and every layer
//    boundary re-synchronizes all groups (and re-distributes V_i when the
//    per-layer LPT assignment moves a chain between groups);
//  * step 3, searching the group count g -- against forcing g = 1 (data
//    parallel) and g = #tasks;
//  * step 4, the work-proportional group adjustment -- matters whenever a
//    layer's tasks have unequal work (BT-MZ zones, EPOL chains).
//
// Reported numbers are the full analytic cost (layer times + cross-layer
// re-distribution under a consecutive mapping).

#include <cstdio>

#include "bench_common.hpp"
#include "ptask/npb/multizone.hpp"

namespace {

using namespace ptask;

double evaluate(const core::TaskGraph& g, const cost::CostModel& cost,
                const arch::Machine& machine, int cores,
                sched::LayerSchedulerOptions opts) {
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cost, opts).schedule(g, cores);
  const std::vector<cost::LayerLayout> layouts =
      map::map_schedule(schedule, machine, map::Strategy::Consecutive);
  return sched::TimelineEvaluator(cost).evaluate(schedule, layouts).makespan;
}

void ablate(const char* title, const core::TaskGraph& g, int cores,
            int natural_groups) {
  const arch::Machine machine = arch::Machine(arch::chic()).partition(cores);
  const cost::CostModel cost(machine);

  sched::LayerSchedulerOptions base;
  sched::LayerSchedulerOptions no_chains = base;
  no_chains.contract_chains = false;
  sched::LayerSchedulerOptions no_adjust = base;
  no_adjust.adjust_group_sizes = false;
  sched::LayerSchedulerOptions forced_dp = base;
  forced_dp.fixed_groups = 1;
  sched::LayerSchedulerOptions forced_max = base;
  forced_max.fixed_groups = natural_groups;

  bench::print_header(title, {"variant", "time [ms]"});
  const struct {
    const char* name;
    sched::LayerSchedulerOptions opts;
  } variants[] = {
      {"full algorithm", base},
      {"no chain contraction", no_chains},
      {"no group adjustment", no_adjust},
      {"forced g=1 (dp)", forced_dp},
      {"forced g=max", forced_max},
  };
  double reference = 0.0;
  for (const auto& v : variants) {
    const double t = evaluate(g, cost, machine, cores, v.opts);
    if (reference == 0.0) reference = t;
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%.3f (%.2fx)", t * 1e3, t / reference);
    bench::print_cell(std::string(v.name));
    bench::print_cell(std::string(cell));
    bench::end_row();
  }
}

}  // namespace

int main() {
  std::printf("Ablation: contribution of the scheduling algorithm's steps\n"
              "(relative to the full algorithm; consecutive mapping,\n"
              "analytic costs including re-distribution)\n");

  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::EPOL;
    spec.n = 2 * 256 * 256;
    spec.stages = 8;
    ablate("EPOL R=8, BRUSS2D, 256 CHiC cores", spec.step_graph(), 256, 8);
  }
  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::PABM;
    spec.n = 2 * 256 * 256;
    spec.stages = 8;
    spec.iterations = 2;
    ablate("PABM K=8, BRUSS2D, 256 CHiC cores", spec.step_graph(), 256, 8);
  }
  {
    const npb::MultiZoneProblem problem =
        npb::make_problem(npb::MzSolver::BT, 'B');  // 64 skewed zones
    ablate("BT-MZ class B (64 zones), 256 CHiC cores",
           npb::step_graph(problem), 256, 64);
  }
  {
    // The configuration the group adjustment step is designed for: a layer
    // of two tasks with 3:1 computational work on two groups.  Without the
    // adjustment both groups get P/2 cores and the heavy task's group
    // finishes 1.5x later; the adjustment resizes towards 3:1.
    core::TaskGraph g;
    g.add_task(core::MTask("heavy", 3.0e11));
    g.add_task(core::MTask("light", 1.0e11));
    const arch::Machine machine = arch::Machine(arch::chic()).partition(256);
    const cost::CostModel cost(machine);
    sched::LayerSchedulerOptions adjusted;
    adjusted.fixed_groups = 2;
    sched::LayerSchedulerOptions unadjusted = adjusted;
    unadjusted.adjust_group_sizes = false;
    bench::print_header(
        "skewed compute layer (3:1, forced g=2), 256 CHiC cores",
        {"variant", "time [ms]"});
    bench::print_cell(std::string("with adjustment"));
    bench::print_cell(
        bench::ms(evaluate(g, cost, machine, 256, adjusted)));
    bench::end_row();
    bench::print_cell(std::string("without adjustment"));
    bench::print_cell(
        bench::ms(evaluate(g, cost, machine, 256, unadjusted)));
    bench::end_row();
  }

  std::printf(
      "\nfindings this table demonstrates:\n"
      " * chain contraction is worth ~3x for EPOL (its graph is all\n"
      "   chains; without it every micro step is a layer of its own and\n"
      "   chains migrate between groups, paying re-distributions);\n"
      " * the searched group count always matches or beats the forced\n"
      "   extremes (g=1 is 2-9x worse);\n"
      " * the work-proportional group adjustment pays off in\n"
      "   compute-dominated skewed layers (the synthetic case) but can\n"
      "   *backfire* in communication-dominated layers: unequal groups\n"
      "   lengthen the longest allgather ring and break the group/node\n"
      "   alignment of the consecutive mapping (EPOL row) -- a genuine\n"
      "   trade-off of the paper's Algorithm 1, which sizes groups by\n"
      "   computational work only.\n");
  return 0;
}
