// Reproduces Fig. 14: the impact of the mapping strategy on collective
// communication on 256 cores of the CHiC cluster, measured on the
// discrete-event network simulator.
//
//  * Left: a global MPI_Allgather over all 256 cores for increasing per-core
//    data sizes.  The MPI ring algorithm for large messages communicates
//    between neighbouring ranks, so the consecutive mapping keeps most hops
//    inside nodes and must be clearly fastest.
//  * Right: the Multi-Allgather pattern of the Intel MPI benchmarks --
//    64 groups x 4 cores (the "orthogonal" communicator shape) and
//    4 groups x 64 cores (the "group-based" shape) running concurrently.
//    Group-based communication favours the consecutive mapping; orthogonal
//    communication favours the scattered mapping.

#include <cstdio>
#include <numeric>

#include "bench_common.hpp"
#include "ptask/net/collectives.hpp"
#include "ptask/sim/network_sim.hpp"

namespace {

using namespace ptask;

/// Concurrent ring allgathers over explicit communicators (lists of flat
/// core ids), run on the discrete-event simulator.
double simulate_concurrent_allgathers(
    const arch::Machine& machine,
    const std::vector<std::vector<int>>& communicators,
    std::size_t bytes_per_rank) {
  std::vector<int> placement;
  std::vector<std::vector<int>> rank_lists;
  for (const std::vector<int>& comm : communicators) {
    std::vector<int> ranks;
    for (int core : comm) {
      ranks.push_back(static_cast<int>(placement.size()));
      placement.push_back(core);
    }
    rank_lists.push_back(std::move(ranks));
  }
  sim::ProgramSet programs(static_cast<int>(placement.size()));
  for (std::size_t g = 0; g < rank_lists.size(); ++g) {
    programs.add_collective(
        net::ring_allgather(static_cast<int>(rank_lists[g].size()),
                            bytes_per_rank),
        rank_lists[g]);
  }
  return sim::NetworkSim(machine, placement).run(programs).makespan;
}

/// The group communicators of a 4-groups-of-64 layer layout (group-based
/// communication shape).
std::vector<std::vector<int>> group_communicators(
    const std::vector<int>& sequence, int num_groups, int group_size) {
  std::vector<std::vector<int>> comms;
  for (int g = 0; g < num_groups; ++g) {
    comms.emplace_back(sequence.begin() + g * group_size,
                       sequence.begin() + (g + 1) * group_size);
  }
  return comms;
}

/// The orthogonal communicators of the same layout: the j-th core of every
/// group (64 communicators of 4 cores for 4 groups x 64).
std::vector<std::vector<int>> orthogonal_communicators(
    const std::vector<int>& sequence, int num_groups, int group_size) {
  std::vector<std::vector<int>> comms(static_cast<std::size_t>(group_size));
  for (int j = 0; j < group_size; ++j) {
    for (int g = 0; g < num_groups; ++g) {
      comms[static_cast<std::size_t>(j)].push_back(
          sequence[static_cast<std::size_t>(g * group_size + j)]);
    }
  }
  return comms;
}

}  // namespace

int main() {
  arch::MachineSpec spec = arch::chic();
  const int cores = 256;
  const arch::Machine machine = arch::Machine(spec).partition(cores);

  const std::vector<int> cons =
      map::physical_sequence(machine, map::Strategy::Consecutive);
  const std::vector<int> scat =
      map::physical_sequence(machine, map::Strategy::Scattered);
  const std::vector<int> mixed =
      map::physical_sequence(machine, map::Strategy::Mixed, 2);

  std::printf("Fig. 14 (left): MPI_Allgather on %d cores of CHiC,\n"
              "time [ms] vs data size per core\n", cores);
  bench::print_header("global allgather [ms]",
                      {"bytes/core", "consecutive", "mixed(d=2)", "scattered"});
  for (std::size_t bytes : {1u << 10, 4u << 10, 16u << 10, 64u << 10,
                            256u << 10, 1u << 20}) {
    bench::print_cell(static_cast<int>(bytes));
    for (const std::vector<int>* seq : {&cons, &mixed, &scat}) {
      bench::print_cell(bench::ms(simulate_concurrent_allgathers(
          machine, {{seq->begin(), seq->begin() + cores}}, bytes)));
    }
    bench::end_row();
  }
  std::printf("expected shape: consecutive clearly lowest (ring algorithm\n"
              "communicates between neighbouring ranks).\n");

  // The Multi-Allgather communicator shapes of a K=4 task-parallel layer:
  // 4 group communicators of 64 cores, and the 64 orthogonal communicators
  // of 4 cores binding same-position cores of the groups.
  std::printf("\nFig. 14 (right): Multi-Allgather, %d cores of CHiC,\n"
              "communicator shapes of a K=4 task-parallel layer\n", cores);
  bench::print_header(
      "4 groups x 64 cores [ms]  (group-based communication)",
      {"bytes/core", "consecutive", "mixed(d=2)", "scattered"});
  for (std::size_t bytes : {4u << 10, 64u << 10, 1u << 20}) {
    bench::print_cell(static_cast<int>(bytes));
    for (const std::vector<int>* seq : {&cons, &mixed, &scat}) {
      bench::print_cell(bench::ms(simulate_concurrent_allgathers(
          machine, group_communicators(*seq, 4, 64), bytes)));
    }
    bench::end_row();
  }

  bench::print_header(
      "64 groups x 4 cores [ms]  (orthogonal communication)",
      {"bytes/core", "consecutive", "mixed(d=2)", "scattered"});
  for (std::size_t bytes : {4u << 10, 64u << 10, 1u << 20}) {
    bench::print_cell(static_cast<int>(bytes));
    for (const std::vector<int>* seq : {&cons, &mixed, &scat}) {
      bench::print_cell(bench::ms(simulate_concurrent_allgathers(
          machine, orthogonal_communicators(*seq, 4, 64), bytes)));
    }
    bench::end_row();
  }
  std::printf("expected shape: group-based fastest with consecutive;\n"
              "orthogonal fastest with scattered (the 4 same-position cores\n"
              "of the groups then share one node).\n");
  return 0;
}
