// Reproduces Fig. 15: execution times of a single time step of the IRK,
// DIIRK, and EPOL methods under the different mapping strategies.
//
//  * Top row: IRK with K=4 stage vectors (BRUSS2D) on the CHiC cluster
//    (4 cores/node: consecutive, mixed(d=2), scattered) and on the JuRoPA
//    cluster (8 cores/node: + mixed(d=4)).  The IRK method is dominated by
//    global communication: consecutive-style mappings win, scattered is
//    clearly outperformed.
//  * Bottom left: DIIRK with K=4 on 512 cores of CHiC, data-parallel vs
//    task-parallel x mappings.  DIIRK's heavy group-internal communication
//    makes the task-parallel version far faster, best with consecutive.
//  * Bottom right: EPOL with R=8 on 512 cores of JuRoPA.  No orthogonal
//    communication: consecutive clearly beats mixed(d=4) and scattered.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace ptask;
using bench::RunConfig;
using bench::Version;

ode::SolverGraphSpec irk_spec() {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 2 * 256 * 256;  // BRUSS2D N=256
  spec.eval_flop_per_component = 14.0;
  spec.stages = 4;
  spec.iterations = 3;
  return spec;
}

void mapping_sweep(const char* title, const ode::SolverGraphSpec& spec,
                   const arch::MachineSpec& machine,
                   const std::vector<int>& core_counts, bool include_d4) {
  std::vector<std::string> columns{"cores", "dp(cons)", "tp(cons)"};
  columns.push_back("tp(mix d=2)");
  if (include_d4) columns.push_back("tp(mix d=4)");
  columns.push_back("tp(scat)");
  bench::print_header(title, columns);

  for (int cores : core_counts) {
    bench::print_cell(cores);
    RunConfig config;
    config.machine = machine;
    config.cores = cores;

    config.version = Version::DataParallel;
    config.strategy = map::Strategy::Consecutive;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));

    config.version = Version::TaskParallel;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));

    config.strategy = map::Strategy::Mixed;
    config.mixed_d = 2;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
    if (include_d4) {
      config.mixed_d = 4;
      bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
    }

    config.strategy = map::Strategy::Scattered;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
    bench::end_row();
  }
}

}  // namespace

int main() {
  std::printf("Fig. 15: per-time-step execution times [ms]\n");

  mapping_sweep("IRK (K=4, BRUSS2D) on CHiC", irk_spec(), arch::chic(),
                {64, 128, 256, 512}, /*include_d4=*/false);
  mapping_sweep("IRK (K=4, BRUSS2D) on JuRoPA", irk_spec(), arch::juropa(),
                {64, 128, 256, 512}, /*include_d4=*/true);
  std::printf("expected shape: consecutive-style mappings lowest, scattered\n"
              "clearly outperformed (global communication dominates IRK).\n");

  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::DIIRK;
    spec.n = 1 << 15;
    spec.eval_flop_per_component = 14.0;
    spec.stages = 4;
    spec.iterations = 2;
    spec.inner_iterations = 2;
    spec.bcast_row_bytes = 8192;

    bench::print_header(
        "DIIRK (K=4, BRUSS2D) on 512 cores of CHiC [ms]",
        {"version", "consecutive", "mixed(d=2)", "scattered"});
    for (Version version : {Version::DataParallel, Version::TaskParallel}) {
      bench::print_cell(std::string(bench::to_string(version)));
      for (auto [strategy, d] :
           {std::pair{map::Strategy::Consecutive, 1},
            std::pair{map::Strategy::Mixed, 2},
            std::pair{map::Strategy::Scattered, 1}}) {
        RunConfig config;
        config.machine = arch::chic();
        config.cores = 512;
        config.version = version;
        config.strategy = strategy;
        config.mixed_d = d;
        bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
      }
      bench::end_row();
    }
    std::printf("expected shape: tp much faster than dp (group-internal\n"
                "broadcasts shrink from 512 to 128 cores); consecutive best.\n");
  }

  {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::EPOL;
    spec.n = 2 * 256 * 256;
    spec.eval_flop_per_component = 14.0;
    spec.stages = 8;

    bench::print_header(
        "EPOL (R=8, BRUSS2D) on 512 cores of JuRoPA [ms]",
        {"mapping", "tp step time"});
    for (auto [label, strategy, d] :
         {std::tuple{"consecutive", map::Strategy::Consecutive, 1},
          std::tuple{"mixed(d=2)", map::Strategy::Mixed, 2},
          std::tuple{"mixed(d=4)", map::Strategy::Mixed, 4},
          std::tuple{"scattered", map::Strategy::Scattered, 1}}) {
      RunConfig config;
      config.machine = arch::juropa();
      config.cores = 512;
      config.strategy = strategy;
      config.mixed_d = d;
      bench::print_cell(std::string(label));
      bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
      bench::end_row();
    }
    std::printf("expected shape: consecutive clearly lowest; mixed(d=4)\n"
                "substantially slower (EPOL has no orthogonal communication\n"
                "to profit from spreading).\n");
  }
  return 0;
}
