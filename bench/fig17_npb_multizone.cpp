// Reproduces Fig. 17: the NAS multi-zone benchmarks SP-MZ and BT-MZ on the
// CHiC cluster and the SGI Altix, for different numbers of disjoint core
// subsets (groups) and mapping strategies.
//
// Expected shapes (paper Section 4.6):
//  * the best performance is obtained at a *medium* group count (e.g. 64
//    groups of 16 zones for class D on CHiC, 128 on the Altix for SP-MZ);
//  * few groups lose because every zone runs on many cores (group-internal
//    communication and synchronization overhead);
//  * the maximum group count loses for BT-MZ because the skewed zone sizes
//    cannot be balanced when only one zone lands on each group;
//  * the scattered mapping outperforms the other strategies (the border
//    exchanges between same-position cores of different groups stay inside
//    nodes).

#include <cstdio>

#include "bench_common.hpp"
#include "ptask/npb/multizone.hpp"

namespace {

using namespace ptask;

double step_time(const npb::MultiZoneProblem& problem,
                 const arch::MachineSpec& machine_spec, int cores, int groups,
                 map::Strategy strategy, int d) {
  const arch::Machine machine =
      arch::Machine(machine_spec).partition(cores);
  const cost::CostModel cost(machine);
  const core::TaskGraph g = npb::step_graph(problem);
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = groups;
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cost, opts).schedule(g, cores);
  const std::vector<cost::LayerLayout> layouts =
      map::map_schedule(schedule, machine, strategy, d);
  return sched::TimelineEvaluator(cost).evaluate(schedule, layouts).makespan;
}

void sweep(const char* title, const npb::MultiZoneProblem& problem,
           const arch::MachineSpec& machine, int cores,
           const std::vector<int>& group_counts) {
  std::printf("\n%s (%d zones, imbalance %.1fx, %d cores)\n", title,
              problem.num_zones(), problem.imbalance_ratio(), cores);
  bench::print_header("per-step time [ms]",
                      {"groups", "consecutive", "mixed(d=2)", "scattered"});
  double best = 1e30;
  int best_groups = 0;
  std::string best_mapping;
  for (int groups : group_counts) {
    bench::print_cell(groups);
    for (auto [name, strategy, d] :
         {std::tuple{"consecutive", map::Strategy::Consecutive, 1},
          std::tuple{"mixed", map::Strategy::Mixed, 2},
          std::tuple{"scattered", map::Strategy::Scattered, 1}}) {
      const double t = step_time(problem, machine, cores, groups, strategy, d);
      bench::print_cell(bench::ms(t));
      if (t < best) {
        best = t;
        best_groups = groups;
        best_mapping = name;
      }
    }
    bench::end_row();
  }
  std::printf("best: %d groups with %s mapping (%.3f ms)\n", best_groups,
              best_mapping.c_str(), best * 1e3);
}

}  // namespace

int main() {
  std::printf("Fig. 17: NPB multi-zone benchmarks, per-step times by group\n"
              "count and mapping strategy\n");

  const std::vector<int> groups_c{4, 8, 16, 32, 64, 128, 256};
  const std::vector<int> groups_d{8, 16, 32, 64, 128, 256, 512};

  sweep("SP-MZ class C on CHiC", npb::make_problem(npb::MzSolver::SP, 'C'),
        arch::chic(), 512, groups_c);
  sweep("SP-MZ class D on CHiC", npb::make_problem(npb::MzSolver::SP, 'D'),
        arch::chic(), 512, groups_d);
  sweep("SP-MZ class C on Altix", npb::make_problem(npb::MzSolver::SP, 'C'),
        arch::altix(), 512, groups_c);
  sweep("SP-MZ class D on Altix", npb::make_problem(npb::MzSolver::SP, 'D'),
        arch::altix(), 512, groups_d);

  sweep("BT-MZ class C on CHiC", npb::make_problem(npb::MzSolver::BT, 'C'),
        arch::chic(), 512, groups_c);
  sweep("BT-MZ class D on Altix", npb::make_problem(npb::MzSolver::BT, 'D'),
        arch::altix(), 512, groups_d);

  std::printf(
      "\nexpected shape: optimum at a medium group count; extremes lose\n"
      "(few groups -> group-internal synchronization overhead; one zone per\n"
      "group -> BT-MZ load imbalance).  Deviation from the paper: our model\n"
      "selects the consecutive over the scattered mapping -- with groups\n"
      "smaller than the node count, no mapping can co-locate the border\n"
      "exchange partners, so the group-internal traffic decides and favours\n"
      "consecutive (see EXPERIMENTS.md).\n");
  return 0;
}
