// Reproduces Fig. 16: the PAB and PABM methods with K=8 stage vectors.
//
//  * Top row: PAB per-step times on CHiC and JuRoPA.  PAB has an equal
//    number of group-based and orthogonal collectives per step, so the
//    mixed mapping (d=2 on CHiC, d=4 on JuRoPA) gives the lowest times.
//  * Bottom left: PABM speedups for the dense SCHROED system on CHiC.
//    PABM is dominated by group-internal communication: the consecutive
//    task-parallel version scales best; the data-parallel version's
//    scalability saturates.
//  * Bottom right: PABM per-step times for the sparse BRUSS2D system on
//    JuRoPA: consecutive lowest, every tp mapping beats dp.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace ptask;
using bench::RunConfig;
using bench::Version;

ode::SolverGraphSpec pab_spec(bool moulton, std::size_t n,
                              double eval_flop) {
  ode::SolverGraphSpec spec;
  spec.method = moulton ? ode::Method::PABM : ode::Method::PAB;
  spec.n = n;
  spec.eval_flop_per_component = eval_flop;
  spec.stages = 8;
  spec.iterations = 2;
  return spec;
}

void pab_table(const char* title, const arch::MachineSpec& machine, int d_mix) {
  const ode::SolverGraphSpec spec = pab_spec(false, 2 * 256 * 256, 14.0);
  bench::print_header(title, {"cores", "dp(cons)", "tp(cons)",
                              "tp(mix)", "tp(scat)"});
  for (int cores : {64, 128, 256, 512}) {
    bench::print_cell(cores);
    RunConfig config;
    config.machine = machine;
    config.cores = cores;

    config.version = Version::DataParallel;
    config.strategy = map::Strategy::Consecutive;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));

    config.version = Version::TaskParallel;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
    config.strategy = map::Strategy::Mixed;
    config.mixed_d = d_mix;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
    config.strategy = map::Strategy::Scattered;
    bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
    bench::end_row();
  }
}

}  // namespace

int main() {
  std::printf("Fig. 16: PAB and PABM with K=8 stage vectors\n");

  pab_table("PAB (K=8, BRUSS2D) per-step times on CHiC [ms]", arch::chic(), 2);
  pab_table("PAB (K=8, BRUSS2D) per-step times on JuRoPA [ms]",
            arch::juropa(), 4);
  std::printf(
      "expected shape: consecutive and mixed close together, both clearly\n"
      "ahead of scattered and the data-parallel version (PAB balances\n"
      "group-based and orthogonal communication).  Deviation from the\n"
      "paper: the paper's mixed mapping wins by a small margin; under our\n"
      "interconnect constants the group-based share dominates slightly and\n"
      "consecutive edges it out (see EXPERIMENTS.md).\n");

  {
    // Dense SCHROED system: eval cost per component is O(n).
    const std::size_t n = 2048;
    ode::SolverGraphSpec spec = pab_spec(true, n, 4.0 * static_cast<double>(n));
    const double seq = bench::sequential_step_time(spec, arch::chic());
    bench::print_header(
        "PABM (K=8, SCHROED dense) speedups on CHiC",
        {"cores", "dp(cons)", "tp(cons)", "tp(mix d=2)", "tp(scat)"});
    for (int cores : {64, 128, 256, 512, 1024}) {
      bench::print_cell(cores);
      RunConfig config;
      config.machine = arch::chic();
      config.cores = cores;
      config.version = Version::DataParallel;
      config.strategy = map::Strategy::Consecutive;
      bench::print_cell(seq / bench::run_step(spec, config).step_time);
      config.version = Version::TaskParallel;
      bench::print_cell(seq / bench::run_step(spec, config).step_time);
      config.strategy = map::Strategy::Mixed;
      config.mixed_d = 2;
      bench::print_cell(seq / bench::run_step(spec, config).step_time);
      config.strategy = map::Strategy::Scattered;
      bench::print_cell(seq / bench::run_step(spec, config).step_time);
      bench::end_row();
    }
    std::printf("expected shape: tp(consecutive) clearly superior at high\n"
                "core counts; dp scalability saturates.\n");
  }

  {
    const ode::SolverGraphSpec spec = pab_spec(true, 2 * 256 * 256, 14.0);
    bench::print_header(
        "PABM (K=8, BRUSS2D sparse) per-step times on JuRoPA [ms]",
        {"cores", "dp(cons)", "tp(cons)", "tp(mix d=4)", "tp(scat)"});
    for (int cores : {64, 128, 256, 512}) {
      bench::print_cell(cores);
      RunConfig config;
      config.machine = arch::juropa();
      config.cores = cores;
      config.version = Version::DataParallel;
      config.strategy = map::Strategy::Consecutive;
      bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
      config.version = Version::TaskParallel;
      bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
      config.strategy = map::Strategy::Mixed;
      config.mixed_d = 4;
      bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
      config.strategy = map::Strategy::Scattered;
      bench::print_cell(bench::ms(bench::run_step(spec, config).step_time));
      bench::end_row();
    }
    std::printf("expected shape: consecutive lowest; all tp mappings beat\n"
                "the data-parallel version.\n");
  }
  return 0;
}
