#include "ptask/obs/trace.hpp"

#include <cstdlib>
#include <cstring>

namespace ptask::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::Run: return "run";
    case SpanKind::Layer: return "layer";
    case SpanKind::Task: return "task";
    case SpanKind::Redistribution: return "redistribution";
    case SpanKind::Collective: return "collective";
    case SpanKind::BarrierWait: return "barrier_wait";
    case SpanKind::Scheduler: return "scheduler";
    case SpanKind::Dispatch: return "dispatch";
    case SpanKind::Fault: return "fault";
    case SpanKind::Serve: return "serve";
  }
  return "unknown";
}

const char* to_string(ClockDomain clock) {
  return clock == ClockDomain::Real ? "real" : "simulated";
}

namespace {
/// Monotonic id source so that (tracer address, instance id) pairs never
/// collide across tracer lifetimes -- a worker thread's cached buffer
/// pointer can never be mistaken for one belonging to a new tracer that
/// happens to reuse the address.
std::atomic<std::uint64_t> g_next_instance{1};
}  // namespace

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      instance_id_(g_next_instance.fetch_add(1, std::memory_order_relaxed)) {}

double Tracer::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::register_thread_buffer() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  return buffers_.back().get();
}

void Tracer::record(Span span) {
  struct Cache {
    const Tracer* owner = nullptr;
    std::uint64_t instance = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner != this || cache.instance != instance_id_) {
    cache.buffer = register_thread_buffer();
    cache.owner = this;
    cache.instance = instance_id_;
  }
  ThreadBuffer* buf = cache.buffer;
  // The buffer mutex is owned by this thread except while a concurrent
  // drain briefly moves the spans out, so this lock is normally
  // uncontended and never blocks on other recording threads.
  std::lock_guard<std::mutex> lock(buf->mutex);
  if (buf->spans.size() >=
      max_spans_per_thread_.load(std::memory_order_relaxed)) {
    ++buf->dropped;
    return;
  }
  buf->spans.push_back(std::move(span));
}

void Tracer::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    if (!buf->spans.empty()) {
      collected_.insert(collected_.end(),
                        std::make_move_iterator(buf->spans.begin()),
                        std::make_move_iterator(buf->spans.end()));
      buf->spans.clear();
    }
    dropped_ += buf->dropped;
    buf->dropped = 0;
  }
}

std::vector<Span> Tracer::take() {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out = std::move(collected_);
  collected_.clear();
  return out;
}

void Tracer::clear() {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);
  collected_.clear();
  dropped_ = 0;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::set_max_spans_per_thread(std::size_t cap) {
  max_spans_per_thread_.store(cap, std::memory_order_relaxed);
}

Tracer& tracer() {
  static Tracer instance;
  static const bool configured = [] {
    if (const char* on = std::getenv("PTASK_TRACE");
        on != nullptr && *on != '\0' && std::strcmp(on, "0") != 0) {
      instance.set_enabled(true);
    }
    if (const char* cap = std::getenv("PTASK_TRACE_BUFFER_SPANS");
        cap != nullptr && *cap != '\0') {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(cap, &end, 10);
      if (end != cap && value > 0) {
        instance.set_max_spans_per_thread(static_cast<std::size_t>(value));
      }
    }
    return true;
  }();
  (void)configured;
  return instance;
}

ThreadContext& thread_context() {
  thread_local ThreadContext context;
  return context;
}

void ScopedSpan::start(SpanKind kind, const char* name) {
  const ThreadContext& ctx = thread_context();
  span_.kind = kind;
  span_.name = name;
  span_.task = ctx.task;
  span_.contracted = ctx.contracted;
  span_.worker = ctx.worker;
  span_.group = ctx.group;
  span_.group_size = ctx.group_size;
  span_.layer = ctx.layer;
  span_.begin_s = tracer().now();
  active_ = true;
}

void ScopedSpan::finish() {
  span_.end_s = tracer().now();
  if (duration_counter_ != nullptr) {
    const double ns = span_.duration_s() * 1e9;
    duration_counter_->add(ns > 0.0 ? static_cast<std::uint64_t>(ns) : 0);
  }
  tracer().record(std::move(span_));
  active_ = false;
}

}  // namespace ptask::obs
