#include "ptask/obs/prometheus.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace ptask::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Inclusive upper bound of log-histogram bucket i, as the exposition
/// label string ("0", "1", "3", ..., "18446744073709551615").
std::string bucket_le(int i) {
  if (i == 0) return "0";
  if (i >= 64) return std::to_string(~std::uint64_t{0});
  return std::to_string((std::uint64_t{1} << i) - 1);
}

/// HELP text: the original registry name with exposition escapes applied
/// (backslash and newline are the only characters HELP lines escape).
void append_help_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

/// Returns the first line in `text` at or after `pos` and advances `pos`
/// past it (and its newline).
std::string_view next_line(std::string_view text, std::size_t& pos) {
  const std::size_t start = pos;
  const std::size_t nl = text.find('\n', start);
  if (nl == std::string_view::npos) {
    pos = text.size();
    return text.substr(start);
  }
  pos = nl + 1;
  return text.substr(start, nl - start);
}

bool parse_value_u64(std::string_view s, std::uint64_t& out) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_value_double(std::string_view s, double& out) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  char* end = nullptr;
  const std::string copy(s);
  out = std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0' && end != copy.c_str();
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "ptask_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out.push_back(valid_name_char(c) ? c : '_');
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(4096);

  for (const CounterSample& c : registry.counters()) {
    const std::string name = prometheus_name(c.name) + "_total";
    out += "# HELP " + name + " ptask counter ";
    append_help_escaped(out, c.name);
    out += "\n# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }

  for (const HistogramSample& h : registry.histograms()) {
    const std::string name = prometheus_name(h.name);
    out += "# HELP " + name + " ptask log2 histogram ";
    append_help_escaped(out, h.name);
    out += "\n# TYPE " + name + " histogram\n";
    // Cumulative buckets through the highest non-empty one; the
    // HistogramSample bucket list is sparse (non-empty buckets only),
    // so walk the full index range and carry the running total.
    std::uint64_t cumulative = 0;
    std::size_t next = 0;
    const int last_index = h.buckets.empty() ? -1 : h.buckets.back().first;
    for (int i = 0; i <= last_index; ++i) {
      if (next < h.buckets.size() && h.buckets[next].first == i) {
        cumulative += h.buckets[next].second;
        ++next;
      }
      out += name + "_bucket{le=\"" + bucket_le(i) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

PromHistogram parse_prometheus_histogram(std::string_view text,
                                         std::string_view metric) {
  PromHistogram hist;
  const std::string bucket_prefix =
      std::string(metric) + "_bucket{le=\"";
  const std::string sum_prefix = std::string(metric) + "_sum";
  const std::string count_prefix = std::string(metric) + "_count";

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::string_view line = next_line(text, pos);
    if (line.empty() || line.front() == '#') continue;
    if (line.substr(0, bucket_prefix.size()) == bucket_prefix) {
      std::string_view rest = line.substr(bucket_prefix.size());
      const std::size_t quote = rest.find('"');
      if (quote == std::string_view::npos) continue;
      const std::string_view le_text = rest.substr(0, quote);
      rest.remove_prefix(quote);
      if (rest.substr(0, 2) != "\"}") continue;
      rest.remove_prefix(2);
      double le = 0.0;
      if (le_text == "+Inf") {
        le = std::numeric_limits<double>::infinity();
      } else if (!parse_value_double(std::string(le_text), le)) {
        continue;
      }
      std::uint64_t value = 0;
      if (parse_value_u64(rest, value)) {
        hist.buckets.emplace_back(le, value);
      }
    } else if (line.substr(0, sum_prefix.size()) == sum_prefix &&
               line.size() > sum_prefix.size() &&
               line[sum_prefix.size()] == ' ') {
      parse_value_double(line.substr(sum_prefix.size() + 1), hist.sum);
    } else if (line.substr(0, count_prefix.size()) == count_prefix &&
               line.size() > count_prefix.size() &&
               line[count_prefix.size()] == ' ') {
      if (parse_value_u64(line.substr(count_prefix.size() + 1),
                          hist.count)) {
        hist.found = true;
      }
    }
  }
  return hist;
}

double prometheus_percentile(const PromHistogram& hist, double q) {
  if (!hist.found || hist.count == 0 || hist.buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(hist.count))));
  double prev_le = 0.0;
  std::uint64_t prev_cum = 0;
  for (const auto& [le, cum] : hist.buckets) {
    if (cum >= target) {
      if (std::isinf(le)) return prev_le;  // rank beyond the last finite bound
      const std::uint64_t in_bucket = cum - prev_cum;
      if (in_bucket == 0) return le;
      const double frac = (static_cast<double>(target - prev_cum) - 0.5) /
                          static_cast<double>(in_bucket);
      // The first bucket's lower bound is 0 (it holds only zeros in the
      // log-scale scheme, where le == 0).
      return prev_le + (le - prev_le) * frac;
    }
    prev_le = le;
    prev_cum = cum;
  }
  return prev_le;
}

}  // namespace ptask::obs
