#include "ptask/obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace ptask::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_us(std::string& out, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  out += buf;
}

int pid_of(const Span& span) {
  return span.clock == ClockDomain::Real ? 1 : 2;
}

int tid_of(const Span& span) {
  return span.worker >= 0 ? span.worker : kHostTid;
}

void append_event(std::string& out, const Span& span) {
  out += "{\"name\":\"";
  append_escaped(out, span.name);
  out += "\",\"cat\":\"";
  out += to_string(span.kind);
  out += "\",\"pid\":";
  out += std::to_string(pid_of(span));
  out += ",\"tid\":";
  out += std::to_string(tid_of(span));
  out += ",\"ts\":";
  append_us(out, span.begin_s);
  if (span.duration_s() > 0.0) {
    out += ",\"ph\":\"X\",\"dur\":";
    append_us(out, span.duration_s());
  } else {
    out += ",\"ph\":\"i\",\"s\":\"t\"";
  }
  out += ",\"args\":{\"task\":";
  out += std::to_string(span.task);
  out += ",\"contracted\":";
  out += std::to_string(span.contracted);
  out += ",\"group\":";
  out += std::to_string(span.group);
  out += ",\"group_size\":";
  out += std::to_string(span.group_size);
  out += ",\"layer\":";
  out += std::to_string(span.layer);
  out += ",\"bytes\":";
  out += std::to_string(span.bytes);
  out += "}}";
}

void append_metadata(std::string& out, int pid, int tid, const char* what,
                     const std::string& name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  if (tid >= 0) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += ",\"args\":{\"name\":\"";
  append_escaped(out, name);
  out += "\"}}";
}

}  // namespace

std::string render_chrome_trace(const std::vector<Span>& spans) {
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     return a->begin_s < b->begin_s;
                   });

  // (pid, tid) pairs in use, to emit one thread_name metadata event each.
  std::set<std::pair<int, int>> tracks;
  std::set<int> pids;
  for (const Span& s : spans) {
    tracks.emplace(pid_of(s), tid_of(s));
    pids.insert(pid_of(s));
  }

  std::string out;
  out.reserve(spans.size() * 160 + 1024);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const int pid : pids) {
    sep();
    append_metadata(out, pid, -1, "process_name",
                    pid == 1 ? "ptask (real)" : "ptask (simulated)");
  }
  for (const auto& [pid, tid] : tracks) {
    sep();
    append_metadata(out, pid, tid, "thread_name",
                    tid == kHostTid ? std::string("host")
                                    : "core " + std::to_string(tid));
  }
  for (const Span* s : ordered) {
    sep();
    append_event(out, *s);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string render_summary(const std::vector<Span>& spans,
                           const MetricsRegistry& registry) {
  struct KindStats {
    std::size_t count = 0;
    double total_s = 0.0;
  };
  std::map<std::string, KindStats> by_kind;
  std::map<int, KindStats> by_layer;
  for (const Span& s : spans) {
    KindStats& k = by_kind[to_string(s.kind)];
    ++k.count;
    k.total_s += s.duration_s();
    if (s.kind == SpanKind::Task && s.layer >= 0) {
      KindStats& l = by_layer[s.layer];
      ++l.count;
      l.total_s += s.duration_s();
    }
  }

  std::ostringstream out;
  out << "== trace summary ==\n";
  out << "spans: " << spans.size() << "\n";
  for (const auto& [kind, stats] : by_kind) {
    out << "  " << kind << ": " << stats.count << " spans, "
        << stats.total_s * 1e3 << " ms total\n";
  }
  if (!by_layer.empty()) {
    out << "task time by layer:\n";
    for (const auto& [layer, stats] : by_layer) {
      out << "  layer " << layer << ": " << stats.count << " task spans, "
          << stats.total_s * 1e3 << " ms total\n";
    }
  }

  out << "== metrics ==\n";
  for (const CounterSample& c : registry.counters()) {
    out << "  " << c.name << " = " << c.value << "\n";
  }
  for (const HistogramSample& h : registry.histograms()) {
    out << "  " << h.name << ": count=" << h.count << " sum=" << h.sum
        << " p50~=" << h.p50 << " p90~=" << h.p90 << " p99~=" << h.p99
        << "\n";
  }
  return out.str();
}

}  // namespace ptask::obs
