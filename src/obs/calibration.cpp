#include "ptask/obs/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace ptask::obs {

namespace {

/// Where a contracted task lives in the schedule.
struct Placement {
  int layer = -1;
  int group = -1;
  int group_size = 0;
  int num_groups = 0;
};

std::map<core::TaskId, Placement> placements(
    const sched::LayeredSchedule& schedule) {
  std::map<core::TaskId, Placement> out;
  for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
    const sched::ScheduledLayer& layer = schedule.layers[li];
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const int g = layer.task_group[i];
      out[layer.tasks[i]] =
          Placement{static_cast<int>(li), g,
                    layer.group_sizes[static_cast<std::size_t>(g)],
                    layer.num_groups()};
    }
  }
  return out;
}

}  // namespace

CalibrationReport calibrate(const std::vector<Span>& spans,
                            const sched::LayeredSchedule& schedule,
                            const cost::CostModel& cost) {
  // Per (contracted task, worker): summed duration + invocation count.
  struct WorkerStats {
    double total_s = 0.0;
    std::size_t count = 0;
  };
  std::map<std::pair<core::TaskId, int>, WorkerStats> per_worker;
  struct LayerStats {
    double total_s = 0.0;
    std::size_t count = 0;
  };
  std::map<int, LayerStats> layer_measured;

  for (const Span& s : spans) {
    if (s.kind == SpanKind::Task && s.contracted >= 0) {
      WorkerStats& w =
          per_worker[{static_cast<core::TaskId>(s.contracted), s.worker}];
      w.total_s += s.duration_s();
      ++w.count;
    } else if (s.kind == SpanKind::Layer && s.layer >= 0) {
      LayerStats& l = layer_measured[s.layer];
      l.total_s += s.duration_s();
      ++l.count;
    }
  }

  // A group's task is as slow as its slowest member: take the max over
  // workers of the per-invocation mean.
  struct TaskMeasure {
    double measured_s = 0.0;
    std::size_t invocations = 0;
  };
  std::map<core::TaskId, TaskMeasure> measured;
  for (const auto& [key, stats] : per_worker) {
    if (stats.count == 0) continue;
    const double mean = stats.total_s / static_cast<double>(stats.count);
    TaskMeasure& m = measured[key.first];
    if (mean > m.measured_s || m.invocations == 0) {
      m.measured_s = mean;
      m.invocations = stats.count;
    }
  }

  const std::map<core::TaskId, Placement> where = placements(schedule);
  const core::TaskGraph& contracted = schedule.contraction.contracted;

  CalibrationReport report;
  double sum_signed = 0.0;
  double sum_abs = 0.0;
  double sum_mp = 0.0;
  double sum_pp = 0.0;
  for (const auto& [id, m] : measured) {
    const auto it = where.find(id);
    if (it == where.end()) continue;
    const Placement& p = it->second;
    const double predicted = cost.symbolic_task_time(
        contracted.task(id), p.group_size, p.num_groups, schedule.total_cores);
    if (predicted <= 0.0) continue;  // markers / zero-work tasks
    TaskCalibration row;
    row.contracted = id;
    row.name = contracted.task(id).name();
    row.layer = p.layer;
    row.group = p.group;
    row.group_size = p.group_size;
    row.invocations = m.invocations;
    row.predicted_s = predicted;
    row.measured_s = m.measured_s;
    row.rel_error = (m.measured_s - predicted) / predicted;
    sum_signed += row.rel_error;
    sum_abs += std::abs(row.rel_error);
    sum_mp += m.measured_s * predicted;
    sum_pp += predicted * predicted;
    report.tasks.push_back(std::move(row));
  }
  if (!report.tasks.empty()) {
    const double n = static_cast<double>(report.tasks.size());
    report.mean_rel_error = sum_signed / n;
    report.mean_abs_rel_error = sum_abs / n;
  }
  if (sum_pp > 0.0) report.fitted_scale = sum_mp / sum_pp;

  for (const auto& [li, stats] : layer_measured) {
    if (li < 0 || static_cast<std::size_t>(li) >= schedule.layers.size() ||
        stats.count == 0) {
      continue;
    }
    LayerCalibration row;
    row.layer = li;
    row.predicted_s =
        schedule.layers[static_cast<std::size_t>(li)].predicted_time;
    row.measured_s = stats.total_s / static_cast<double>(stats.count);
    row.rel_error = row.predicted_s > 0.0
                        ? (row.measured_s - row.predicted_s) / row.predicted_s
                        : 0.0;
    report.layers.push_back(row);
  }
  return report;
}

std::string render_calibration(const CalibrationReport& report) {
  std::ostringstream out;
  out << "== cost-model calibration ==\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %5s %5s %3s %6s %12s %12s %9s\n",
                "task", "layer", "group", "q", "runs", "predicted_s",
                "measured_s", "rel_err");
  out << line;
  for (const TaskCalibration& t : report.tasks) {
    std::snprintf(line, sizeof(line),
                  "%-24s %5d %5d %3d %6zu %12.6g %12.6g %+8.2f%%\n",
                  t.name.c_str(), t.layer, t.group, t.group_size,
                  t.invocations, t.predicted_s, t.measured_s,
                  t.rel_error * 100.0);
    out << line;
  }
  if (!report.layers.empty()) {
    std::snprintf(line, sizeof(line), "%-24s %12s %12s %9s\n", "layer",
                  "predicted_s", "measured_s", "rel_err");
    out << line;
    for (const LayerCalibration& l : report.layers) {
      std::snprintf(line, sizeof(line), "layer %-18d %12.6g %12.6g %+8.2f%%\n",
                    l.layer, l.predicted_s, l.measured_s,
                    l.rel_error * 100.0);
      out << line;
    }
  }
  std::snprintf(line, sizeof(line),
                "tasks: %zu  mean rel err: %+.2f%%  mean |rel err|: %.2f%%  "
                "fitted scale: %.4f\n",
                report.tasks.size(), report.mean_rel_error * 100.0,
                report.mean_abs_rel_error * 100.0, report.fitted_scale);
  out << line;
  return out.str();
}

std::vector<Span> spans_from_gantt(const sched::LayeredSchedule& schedule,
                                   const sched::GanttSchedule& gantt) {
  std::vector<Span> spans;
  const core::TaskGraph& contracted = schedule.contraction.contracted;
  for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
    const sched::ScheduledLayer& layer = schedule.layers[li];
    double layer_begin = 0.0;
    double layer_end = 0.0;
    bool any = false;
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const core::TaskId id = layer.tasks[i];
      const sched::TaskSlot& slot =
          gantt.slots[static_cast<std::size_t>(id)];
      const int g = layer.task_group[i];
      Span span;
      span.kind = SpanKind::Task;
      span.clock = ClockDomain::Simulated;
      span.name = contracted.task(id).name();
      span.task = schedule.contraction.members[static_cast<std::size_t>(id)]
                      .empty()
                      ? static_cast<std::int64_t>(id)
                      : schedule.contraction
                            .members[static_cast<std::size_t>(id)]
                            .front();
      span.contracted = id;
      span.worker = slot.cores.empty() ? -1 : slot.cores.front();
      span.group = g;
      span.group_size = layer.group_sizes[static_cast<std::size_t>(g)];
      span.layer = static_cast<int>(li);
      span.begin_s = slot.start;
      span.end_s = slot.finish;
      spans.push_back(std::move(span));
      if (!any || slot.start < layer_begin) layer_begin = slot.start;
      if (!any || slot.finish > layer_end) layer_end = slot.finish;
      any = true;
    }
    if (any) {
      Span span;
      span.kind = SpanKind::Layer;
      span.clock = ClockDomain::Simulated;
      span.name = "layer " + std::to_string(li);
      span.layer = static_cast<int>(li);
      span.begin_s = layer_begin;
      span.end_s = layer_end;
      spans.push_back(std::move(span));
    }
  }
  return spans;
}

std::vector<Span> spans_from_sim(const sim::SimResult& result) {
  std::vector<Span> spans;
  spans.reserve(result.trace.size());
  for (const sim::TraceEvent& e : result.trace) {
    Span span;
    span.clock = ClockDomain::Simulated;
    span.worker = e.rank;
    span.begin_s = e.start;
    span.end_s = e.end;
    if (e.kind == sim::TraceEvent::Kind::Compute) {
      span.kind = SpanKind::Task;
      span.name = "compute";
    } else {
      span.kind = SpanKind::Collective;
      span.name = "transfer from " + std::to_string(e.peer);
      span.bytes = e.bytes;
    }
    spans.push_back(std::move(span));
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.begin_s < b.begin_s;
                   });
  return spans;
}

}  // namespace ptask::obs
