#include "ptask/obs/metrics.hpp"

#include <bit>

namespace ptask::obs {

void Histogram::observe(std::uint64_t value) {
  const int bucket = std::bit_width(value);  // 0 for 0, else floor(log2)+1
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile_upper_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (static_cast<double>(seen) >= target && seen > 0) {
      if (i == 0) return 0;
      if (i >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << i) - 1;
    }
  }
  return ~std::uint64_t{0};
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<CounterSample> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSample{name, counter->value()});
  }
  return out;
}

std::vector<HistogramSample> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.push_back(HistogramSample{name, h->count(), h->sum(),
                                  h->quantile_upper_bound(0.5),
                                  h->quantile_upper_bound(0.9)});
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace ptask::obs
