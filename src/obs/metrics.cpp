#include "ptask/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ptask::obs {

void Histogram::observe(std::uint64_t value) {
  const int bucket = std::bit_width(value);  // 0 for 0, else floor(log2)+1
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile_upper_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (static_cast<double>(seen) >= target && seen > 0) {
      if (i == 0) return 0;
      if (i >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << i) - 1;
    }
  }
  return ~std::uint64_t{0};
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank target in [1, n].
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= target) {
      if (i == 0) return 0.0;  // the zero bucket is exact
      // Interpolate linearly across [2^(i-1), 2^i): the target rank sits
      // (target - seen) samples into this bucket's in_bucket samples.
      const double lo = std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      const double frac = (static_cast<double>(target - seen) - 0.5) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return std::ldexp(1.0, 64);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<CounterSample> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSample{name, counter->value()});
  }
  return out;
}

std::vector<HistogramSample> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.count = h->count();
    sample.sum = h->sum();
    sample.p50 = h->percentile(0.5);
    sample.p90 = h->percentile(0.9);
    sample.p99 = h->percentile(0.99);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (const std::uint64_t c = h->bucket(i); c > 0) {
        sample.buckets.emplace_back(i, c);
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

double percentile_nearest_rank(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::sort(values.begin(), values.end());
  const std::size_t rank = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[rank];
}

}  // namespace ptask::obs
