#include "ptask/obs/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace ptask::obs::json {

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("invalid literal");
        Value v;
        v.type = Value::Type::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("invalid literal");
        Value v;
        v.type = Value::Type::Bool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences -- fine for validation use).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      fail("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        fail("invalid fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        fail("invalid exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    Value v;
    v.type = Value::Type::Number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ptask::obs::json
