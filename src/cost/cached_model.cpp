#include "ptask/cost/cached_model.hpp"

#include <cstring>

#include "ptask/obs/metrics.hpp"

namespace ptask::cost {

namespace {

/// FNV-1a over the pricing-relevant task content.  Two tasks with the same
/// fingerprint and address are treated as the same task; the full content
/// (work, max_cores, every collective's kind/scope/bytes/repeat) goes into
/// the hash, so a stale hit after address reuse would require a 64-bit
/// collision on top of the reuse.
std::uint64_t fingerprint(const core::MTask& task) {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto mix = [&](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= kPrime;
    }
  };
  std::uint64_t work_bits = 0;
  const double work = task.work_flop();
  std::memcpy(&work_bits, &work, sizeof(work_bits));
  mix(work_bits);
  mix(static_cast<std::uint64_t>(task.max_cores()));
  for (const core::CollectiveOp& op : task.comms()) {
    mix(static_cast<std::uint64_t>(op.kind));
    mix(static_cast<std::uint64_t>(op.scope));
    mix(static_cast<std::uint64_t>(op.data_bytes));
    mix(static_cast<std::uint64_t>(op.repeat));
  }
  return h;
}

/// Injective fixed-width encoding of the pricing-relevant content plus the
/// evaluation point.  Every field is appended as a fixed number of raw
/// bytes, so two keys compare equal iff every field matches -- the
/// content-mode map needs no collision guard.
std::string content_key(const core::MTask& task, int q, int num_groups,
                        int total_cores) {
  std::string key;
  key.reserve(8 + 4 * 3 + task.comms().size() * 24);
  const auto put64 = [&key](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      key.push_back(static_cast<char>((v >> (byte * 8)) & 0xff));
    }
  };
  const auto put32 = [&key](std::uint32_t v) {
    for (int byte = 0; byte < 4; ++byte) {
      key.push_back(static_cast<char>((v >> (byte * 8)) & 0xff));
    }
  };
  std::uint64_t work_bits = 0;
  const double work = task.work_flop();
  std::memcpy(&work_bits, &work, sizeof(work_bits));
  put64(work_bits);
  put32(static_cast<std::uint32_t>(task.max_cores()));
  put32(static_cast<std::uint32_t>(q));
  put32(static_cast<std::uint32_t>(num_groups));
  put32(static_cast<std::uint32_t>(total_cores));
  for (const core::CollectiveOp& op : task.comms()) {
    put32(static_cast<std::uint32_t>(op.kind));
    put32(static_cast<std::uint32_t>(op.scope));
    put64(static_cast<std::uint64_t>(op.data_bytes));
    put64(static_cast<std::uint64_t>(op.repeat));
  }
  return key;
}

}  // namespace

CachedCostModel::CachedCostModel(const CostModel& base, KeyMode mode)
    : CostModel(base.machine()), mode_(mode) {}

bool CachedCostModel::depends_on_num_groups(const core::MTask& task) {
  for (const core::CollectiveOp& op : task.comms()) {
    if (op.scope == core::CommScope::Orthogonal) return true;
  }
  return false;
}

std::size_t CachedCostModel::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = key.fingerprint;
  h ^= reinterpret_cast<std::uintptr_t>(key.task) * 0x9e3779b97f4a7c15ull;
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.q)) << 32) |
       static_cast<std::uint32_t>(key.num_groups);
  h *= 0xff51afd7ed558ccdull;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.total_cores));
  h ^= h >> 33;
  return static_cast<std::size_t>(h);
}

double CachedCostModel::symbolic_task_time(const core::MTask& task, int q,
                                           int num_groups,
                                           int total_cores) const {
  static obs::Counter& hit_counter = obs::metrics().counter("sched.cache.hit");
  static obs::Counter& miss_counter =
      obs::metrics().counter("sched.cache.miss");

  if (mode_ == KeyMode::Content) {
    const int groups = depends_on_num_groups(task) ? num_groups : 0;
    std::string key = content_key(task, q, groups, total_cores);
    ContentShard& shard =
        content_shards_[std::hash<std::string>{}(key)&(kShards - 1)];
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        hit_counter.add();
        return it->second;
      }
    }
    const double value =
        CostModel::symbolic_task_time(task, q, num_groups, total_cores);
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.entries.emplace(std::move(key), value);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter.add();
    return value;
  }

  Key key;
  key.task = &task;
  key.fingerprint = fingerprint(task);
  key.q = q;
  key.num_groups = depends_on_num_groups(task) ? num_groups : 0;
  key.total_cores = total_cores;

  Shard& shard = shards_[KeyHash{}(key)&(kShards - 1)];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.add();
      return it->second;
    }
  }
  // Compute outside the lock: pricing walks the task's collectives and is
  // the expensive part; a racing thread computing the same key stores the
  // same (deterministic) double.
  const double value =
      CostModel::symbolic_task_time(task, q, num_groups, total_cores);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.emplace(key, value);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.add();
  return value;
}

void CachedCostModel::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
  }
  for (ContentShard& shard : content_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
  }
}

}  // namespace ptask::cost
