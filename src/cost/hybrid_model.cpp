#include "ptask/cost/hybrid_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ptask::cost {

HybridCostModel::HybridCostModel(arch::Machine machine, HybridConfig config)
    : base_(std::move(machine)), config_(config) {
  if (config_.threads_per_rank <= 0) {
    throw std::invalid_argument("threads_per_rank must be positive");
  }
}

LayerLayout HybridCostModel::rank_layout(const LayerLayout& physical) const {
  const int t = config_.threads_per_rank;
  LayerLayout ranks;
  ranks.groups.reserve(physical.groups.size());
  for (const GroupLayout& g : physical.groups) {
    if (g.size() % t != 0) {
      throw std::invalid_argument(
          "group size must be divisible by threads_per_rank");
    }
    GroupLayout rg;
    rg.cores.reserve(static_cast<std::size_t>(g.size() / t));
    for (std::size_t i = 0; i < g.cores.size(); i += static_cast<std::size_t>(t)) {
      rg.cores.push_back(g.cores[i]);
    }
    ranks.groups.push_back(std::move(rg));
  }
  return ranks;
}

arch::CommLevel HybridCostModel::team_span(const GroupLayout& group,
                                           int rank_pos) const {
  const int t = config_.threads_per_rank;
  const arch::Machine& m = base_.machine();
  const std::size_t begin = static_cast<std::size_t>(rank_pos) *
                            static_cast<std::size_t>(t);
  arch::CommLevel span = arch::CommLevel::SameProcessor;
  const arch::CoreId anchor = m.core_at(group.cores.at(begin));
  for (std::size_t i = begin + 1; i < begin + static_cast<std::size_t>(t);
       ++i) {
    const arch::CommLevel level =
        m.comm_level(anchor, m.core_at(group.cores.at(i)));
    span = std::max(span, level,
                    [](arch::CommLevel a, arch::CommLevel b) {
                      return static_cast<int>(a) < static_cast<int>(b);
                    });
  }
  return span;
}

double HybridCostModel::team_sync_time(int t, arch::CommLevel level) const {
  if (t <= 1) return 0.0;
  const arch::MachineSpec& spec = base_.machine().spec();
  const double hops = std::ceil(std::log2(static_cast<double>(t)));
  return spec.omp_region_overhead_s +
         hops * base_.machine().link(level).latency_s;
}

double HybridCostModel::mapped_task_time(const core::MTask& task,
                                         const LayerLayout& physical,
                                         std::size_t group_index) const {
  const int t = config_.threads_per_rank;
  const GroupLayout& group = physical.groups.at(group_index);
  if (t == 1) return base_.mapped_task_time(task, physical, group_index);

  // Compute: all physical cores participate, derated by team efficiency of
  // the widest team span in this group.
  arch::CommLevel widest = arch::CommLevel::SameProcessor;
  const int num_ranks = group.size() / t;
  for (int r = 0; r < num_ranks; ++r) {
    const arch::CommLevel span = team_span(group, r);
    if (static_cast<int>(span) > static_cast<int>(widest)) widest = span;
  }
  double eff = config_.eff_same_processor;
  switch (widest) {
    case arch::CommLevel::SameProcessor:
      eff = config_.eff_same_processor;
      break;
    case arch::CommLevel::SameNode:
      eff = config_.eff_same_node;
      break;
    case arch::CommLevel::InterNode:
      eff = config_.eff_inter_node;
      break;
  }
  double total = base_.symbolic_compute_time(task, group.size()) / eff;

  // Communication: collectives run over the rank layout only; every
  // collective costs two team synchronizations per repetition -- the join
  // that quiesces the OpenMP team before the MPI call and the fork that
  // restarts it afterwards.
  const LayerLayout ranks = rank_layout(physical);
  const double sync = team_sync_time(t, widest);
  for (const core::CollectiveOp& op : task.comms()) {
    total += static_cast<double>(op.repeat) *
             (base_.mapped_collective_time(op, ranks, group_index) +
              2.0 * sync);
  }
  // One fork/join to start and finish the task's compute region.
  total += sync;
  return total;
}

}  // namespace ptask::cost
