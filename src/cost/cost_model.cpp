#include "ptask/cost/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "ptask/net/collectives.hpp"

namespace ptask::cost {

std::vector<int> LayerLayout::all_cores() const {
  std::vector<int> cores;
  cores.reserve(static_cast<std::size_t>(total_cores()));
  for (const GroupLayout& g : groups) {
    cores.insert(cores.end(), g.cores.begin(), g.cores.end());
  }
  return cores;
}

CostModel::CostModel(arch::Machine machine)
    : machine_(std::move(machine)), link_(machine_) {}

double CostModel::symbolic_compute_time(const core::MTask& task, int q) const {
  if (q <= 0) throw std::invalid_argument("core count must be positive");
  const int effective = std::min(q, task.max_cores());
  return task.work_flop() /
         (static_cast<double>(effective) * machine_.spec().sustained_flops());
}

namespace {

double uniform_collective_time(const core::CollectiveOp& op, int participants,
                               std::size_t per_rank_bytes,
                               const arch::LinkParams& link) {
  switch (op.kind) {
    case core::CollectiveKind::Bcast:
      return net::bcast_time_uniform(participants, op.data_bytes, link);
    case core::CollectiveKind::Allgather:
      return net::allgather_time_uniform(participants, per_rank_bytes, link);
    case core::CollectiveKind::Allreduce:
      return net::allreduce_time_uniform(participants, op.data_bytes, link);
    case core::CollectiveKind::Barrier:
      return net::barrier_time_uniform(participants, link);
    case core::CollectiveKind::Exchange:
      return net::exchange_time_uniform(participants, op.data_bytes, link);
  }
  throw std::logic_error("invalid collective kind");
}

}  // namespace

double CostModel::symbolic_comm_time(const core::MTask& task, int q,
                                     int num_groups, int total_cores) const {
  if (q <= 0 || num_groups <= 0 || total_cores <= 0) {
    throw std::invalid_argument("positive sizes required");
  }
  // Default mapping pattern: every operation priced on the slowest network.
  const arch::LinkParams& slow = machine_.link(arch::CommLevel::InterNode);
  double total = 0.0;
  for (const core::CollectiveOp& op : task.comms()) {
    int participants = q;
    std::size_t per_rank = op.data_bytes / static_cast<std::size_t>(q);
    switch (op.scope) {
      case core::CommScope::Global:
        participants = total_cores;
        per_rank = op.data_bytes / static_cast<std::size_t>(total_cores);
        break;
      case core::CommScope::Group:
        break;
      case core::CommScope::Orthogonal:
        // One participant per concurrent group; each contributes its group's
        // per-core block.
        participants = num_groups;
        per_rank = op.data_bytes / static_cast<std::size_t>(q);
        break;
    }
    total += static_cast<double>(op.repeat) *
             uniform_collective_time(op, participants, per_rank, slow);
  }
  return total;
}

double CostModel::symbolic_task_time(const core::MTask& task, int q,
                                     int num_groups, int total_cores) const {
  return symbolic_compute_time(task, q) +
         symbolic_comm_time(task, q, num_groups, total_cores);
}

net::MessageSchedule CostModel::collective_schedule(
    const core::CollectiveOp& op, int q) {
  if (q <= 1) return {};
  const std::size_t per_rank = op.data_bytes / static_cast<std::size_t>(q);
  switch (op.kind) {
    case core::CollectiveKind::Bcast:
      return net::binomial_bcast(q, 0, op.data_bytes);
    case core::CollectiveKind::Allgather:
      return net::allgather(q, per_rank);
    case core::CollectiveKind::Allreduce:
      return net::allreduce(q, op.data_bytes);
    case core::CollectiveKind::Barrier:
      return net::barrier(q);
    case core::CollectiveKind::Exchange:
      return net::ring_exchange(q, op.data_bytes);
  }
  throw std::logic_error("invalid collective kind");
}

double CostModel::mapped_collective_time(const core::CollectiveOp& op,
                                         const LayerLayout& layout,
                                         std::size_t group_index) const {
  if (group_index >= layout.groups.size()) {
    throw std::out_of_range("group index out of range");
  }
  switch (op.scope) {
    case core::CommScope::Global: {
      const std::vector<int> cores = layout.all_cores();
      const net::MessageSchedule schedule =
          collective_schedule(op, static_cast<int>(cores.size()));
      return link_.schedule_time(schedule, cores);
    }
    case core::CommScope::Group: {
      // All groups run the (structurally identical) group collective at the
      // same time; charge the merged contention and return the makespan.
      std::vector<net::MessageSchedule> schedules;
      std::vector<std::vector<int>> placements;
      for (const GroupLayout& g : layout.groups) {
        // Payload convention: data_bytes is the group-local vector size, so
        // each group's per-rank contribution is data_bytes / |group|.
        schedules.push_back(collective_schedule(op, g.size()));
        placements.push_back(g.cores);
      }
      return link_.concurrent_schedule_time(schedules, placements);
    }
    case core::CommScope::Orthogonal: {
      // Communicator j = the j-th core of every group; all positions run
      // concurrently.
      int min_size = layout.groups.front().size();
      for (const GroupLayout& g : layout.groups) {
        min_size = std::min(min_size, g.size());
      }
      const int g_count = static_cast<int>(layout.groups.size());
      if (g_count <= 1 || min_size <= 0) return 0.0;
      // Per orthogonal rank the payload is one group's per-core block:
      // data_bytes / q of the owning group; use the layer's modal group size.
      core::CollectiveOp per_position = op;
      per_position.data_bytes =
          op.data_bytes / static_cast<std::size_t>(min_size) *
          static_cast<std::size_t>(g_count);
      // collective_schedule divides by participant count (g_count), so the
      // per-rank block below equals data_bytes / min_size as intended.
      std::vector<net::MessageSchedule> schedules;
      std::vector<std::vector<int>> placements;
      for (int j = 0; j < min_size; ++j) {
        std::vector<int> comm;
        comm.reserve(static_cast<std::size_t>(g_count));
        for (const GroupLayout& g : layout.groups) {
          comm.push_back(g.cores[static_cast<std::size_t>(j)]);
        }
        schedules.push_back(collective_schedule(per_position, g_count));
        placements.push_back(std::move(comm));
      }
      return link_.concurrent_schedule_time(schedules, placements);
    }
  }
  throw std::logic_error("invalid communication scope");
}

double CostModel::mapped_task_time(const core::MTask& task,
                                   const LayerLayout& layout,
                                   std::size_t group_index) const {
  const GroupLayout& group = layout.groups.at(group_index);
  double total = symbolic_compute_time(task, group.size());
  for (const core::CollectiveOp& op : task.comms()) {
    total += static_cast<double>(op.repeat) *
             mapped_collective_time(op, layout, group_index);
  }
  return total;
}

double CostModel::redistribution_time(const dist::RedistributionPlan& plan,
                                      std::span<const int> src_cores,
                                      std::span<const int> dst_cores) const {
  if (plan.empty()) return 0.0;
  // Translate group-local ranks into one combined placement: sources first,
  // then destinations.
  std::vector<int> placement(src_cores.begin(), src_cores.end());
  std::vector<net::Message> messages;
  messages.reserve(plan.transfers().size());
  // Destination cores may coincide with source cores (same group); reuse the
  // source slot in that case so the placement stays injective.
  std::vector<int> dst_rank(dst_cores.size());
  for (std::size_t d = 0; d < dst_cores.size(); ++d) {
    const auto it =
        std::find(placement.begin(), placement.end(), dst_cores[d]);
    if (it != placement.end()) {
      dst_rank[d] = static_cast<int>(it - placement.begin());
    } else {
      dst_rank[d] = static_cast<int>(placement.size());
      placement.push_back(dst_cores[d]);
    }
  }
  for (const dist::Transfer& t : plan.transfers()) {
    const int src = static_cast<int>(t.src_rank);
    const int dst = dst_rank.at(t.dst_rank);
    if (src == dst) continue;  // same physical core: free
    messages.push_back(net::Message{src, dst, t.bytes});
  }
  const net::MessageSchedule schedule = net::redistribution_rounds(messages);
  return link_.schedule_time(schedule, placement);
}

}  // namespace ptask::cost
