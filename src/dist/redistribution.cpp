#include "ptask/dist/redistribution.hpp"

#include <stdexcept>

namespace ptask::dist {

RedistributionPlan RedistributionPlan::compute(
    std::size_t n, std::size_t elem_size, const Distribution& src,
    std::size_t q1, const Distribution& dst, std::size_t q2,
    bool same_groups) {
  if (q1 == 0 || q2 == 0) {
    throw std::invalid_argument("group sizes must be positive");
  }
  if (same_groups && q1 != q2) {
    throw std::invalid_argument("same_groups requires equal group sizes");
  }

  RedistributionPlan plan;
  if (n == 0) return plan;

  // Identical distribution over the same physical group: nothing to move.
  if (same_groups && src == dst) return plan;

  // Pairwise element counts; q1 x q2 is small (groups are <= a few thousand
  // cores) while n may be millions, so the O(n) ownership scan dominates.
  std::vector<std::size_t> counts(q1 * q2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = src.owner(i, n, q1);
    if (dst.is_replicated()) {
      // Every destination rank needs the element.
      for (std::size_t d = 0; d < q2; ++d) {
        if (same_groups && d == s) continue;  // already resident
        counts[s * q2 + d] += 1;
      }
    } else {
      const std::size_t d = dst.owner(i, n, q2);
      if (same_groups && d == s) continue;
      if (src.is_replicated() && same_groups) continue;  // resident everywhere
      counts[s * q2 + d] += 1;
    }
  }

  for (std::size_t s = 0; s < q1; ++s) {
    for (std::size_t d = 0; d < q2; ++d) {
      const std::size_t c = counts[s * q2 + d];
      if (c == 0) continue;
      const std::size_t bytes = c * elem_size;
      plan.transfers_.push_back({s, d, bytes});
      plan.total_bytes_ += bytes;
      plan.max_pair_bytes_ = std::max(plan.max_pair_bytes_, bytes);
    }
  }
  return plan;
}

}  // namespace ptask::dist
