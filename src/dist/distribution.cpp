#include "ptask/dist/distribution.hpp"

#include <sstream>
#include <stdexcept>

namespace ptask::dist {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::Replicated:
      return "replicated";
    case Kind::Block:
      return "block";
    case Kind::Cyclic:
      return "cyclic";
    case Kind::BlockCyclic:
      return "block-cyclic";
  }
  return "unknown";
}

Distribution::Distribution(Kind kind, std::size_t block_size)
    : kind_(kind), block_(block_size) {
  if (kind_ == Kind::BlockCyclic && block_ == 0) {
    throw std::invalid_argument("block-cyclic block size must be positive");
  }
  if (kind_ != Kind::BlockCyclic) block_ = 1;
}

std::size_t Distribution::owner(std::size_t i, std::size_t n,
                                std::size_t q) const {
  if (q == 0) throw std::invalid_argument("group size must be positive");
  if (i >= n) throw std::out_of_range("element index out of range");
  switch (kind_) {
    case Kind::Replicated:
      return 0;
    case Kind::Block: {
      // Balanced block: the first r ranks own ceil(n/q), the rest floor(n/q).
      const std::size_t base = n / q;
      const std::size_t r = n % q;
      const std::size_t big = (base + 1) * r;  // elements in the big blocks
      if (i < big) return i / (base + 1);
      if (base == 0) throw std::logic_error("unreachable block layout");
      return r + (i - big) / base;
    }
    case Kind::Cyclic:
      return i % q;
    case Kind::BlockCyclic:
      return (i / block_) % q;
  }
  throw std::logic_error("invalid distribution kind");
}

std::size_t Distribution::local_count(std::size_t rank, std::size_t n,
                                      std::size_t q) const {
  if (q == 0) throw std::invalid_argument("group size must be positive");
  if (rank >= q) throw std::out_of_range("rank out of range");
  switch (kind_) {
    case Kind::Replicated:
      return n;
    case Kind::Block: {
      const std::size_t base = n / q;
      const std::size_t r = n % q;
      return rank < r ? base + 1 : base;
    }
    case Kind::Cyclic: {
      return n / q + (rank < n % q ? 1 : 0);
    }
    case Kind::BlockCyclic: {
      const std::size_t full_blocks = n / block_;
      const std::size_t tail = n % block_;
      std::size_t count = (full_blocks / q) * block_;
      const std::size_t rem_blocks = full_blocks % q;
      if (rank < rem_blocks) count += block_;
      if (rank == rem_blocks) count += tail;
      return count;
    }
  }
  throw std::logic_error("invalid distribution kind");
}

bool Distribution::operator==(const Distribution& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == Kind::BlockCyclic) return block_ == other.block_;
  return true;
}

std::string Distribution::to_string() const {
  std::ostringstream os;
  os << ptask::dist::to_string(kind_);
  if (kind_ == Kind::BlockCyclic) os << '(' << block_ << ')';
  return os.str();
}

}  // namespace ptask::dist
