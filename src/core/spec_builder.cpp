#include "ptask/core/spec_builder.hpp"

#include "ptask/core/graph_algorithms.hpp"

#include <algorithm>
#include <stdexcept>

namespace ptask::core {

int HierGraph::total_basic_tasks() const {
  int count = 0;
  for (TaskId id = 0; id < graph.num_tasks(); ++id) {
    if (graph.task(id).is_marker()) continue;
    auto it = sub.find(id);
    if (it != sub.end()) {
      count += it->second->total_basic_tasks();
    } else {
      ++count;
    }
  }
  return count;
}

SpecBuilder::SpecBuilder(std::string program_name)
    : name_(std::move(program_name)) {}

Var SpecBuilder::var(std::string name, std::size_t bytes,
                     dist::Distribution d) {
  return Var{std::move(name), bytes, d};
}

void SpecBuilder::add_dependency_edges(TaskId id, const std::vector<Var>& uses,
                                       const std::vector<Var>& defines) {
  auto connect_from = [&](const std::vector<TaskId>& froms) {
    for (TaskId from : froms) {
      // Skip transitively implied edges: they are semantically redundant and
      // would break the linear-chain structure the scheduler contracts
      // (e.g. a WAR edge from a chain's first micro step to the combine is
      // already implied through the chain).
      if (from != id && !result_.graph.reaches(from, id)) {
        result_.graph.add_edge(from, id);
      }
    }
  };
  for (const Var& v : uses) {  // RAW
    auto it = env_.writers.find(v.name);
    if (it != env_.writers.end()) connect_from(it->second);
    env_.readers[v.name].push_back(id);
  }
  for (const Var& v : defines) {  // WAW + WAR
    auto wit = env_.writers.find(v.name);
    if (wit != env_.writers.end()) connect_from(wit->second);
    auto rit = env_.readers.find(v.name);
    if (rit != env_.readers.end()) connect_from(rit->second);
    env_.writers[v.name] = {id};
    env_.readers[v.name].clear();
  }
}

TaskId SpecBuilder::call(MTask task, const std::vector<Var>& uses,
                         const std::vector<Var>& defines) {
  if (built_) throw std::logic_error("specification already built");
  for (const Var& v : uses) {
    task.add_param(Param{v.name, v.bytes, v.distribution, true, false});
  }
  for (const Var& v : defines) {
    task.add_param(Param{v.name, v.bytes, v.distribution, false, true});
  }
  const TaskId id = result_.graph.add_task(std::move(task));
  add_dependency_edges(id, uses, defines);
  return id;
}

void SpecBuilder::merge_env(Env& into, const Env& branch) {
  for (const auto& [name, writers] : branch.writers) {
    std::vector<TaskId>& dst = into.writers[name];
    for (TaskId w : writers) {
      if (std::find(dst.begin(), dst.end(), w) == dst.end()) dst.push_back(w);
    }
  }
  for (const auto& [name, readers] : branch.readers) {
    std::vector<TaskId>& dst = into.readers[name];
    for (TaskId r : readers) {
      if (std::find(dst.begin(), dst.end(), r) == dst.end()) dst.push_back(r);
    }
  }
}

void SpecBuilder::parfor(int count, const std::function<void(int)>& body) {
  if (count < 0) throw std::invalid_argument("negative parfor count");
  const Env snapshot = env_;
  Env merged = env_;
  for (int i = 0; i < count; ++i) {
    env_ = snapshot;  // every iteration sees the pre-loop environment
    body(i);
    merge_env(merged, env_);
  }
  env_ = std::move(merged);
}

void SpecBuilder::for_loop(int count, const std::function<void(int)>& body) {
  if (count < 0) throw std::invalid_argument("negative for count");
  for (int i = 0; i < count; ++i) body(i);
}

TaskId SpecBuilder::while_loop(const std::string& loop_name,
                               const std::vector<Var>& loop_vars,
                               const std::function<void(SpecBuilder&)>& body,
                               double iterations_hint) {
  SpecBuilder nested(name_ + "." + loop_name);
  body(nested);
  HierGraph body_graph = nested.build();

  MTask composite(loop_name,
                  body_graph.graph.total_work_flop() * iterations_hint);
  // The composite node inherits the body's most restrictive parallelism.
  int max_cores = INT_MAX;
  for (TaskId id = 0; id < body_graph.graph.num_tasks(); ++id) {
    if (!body_graph.graph.task(id).is_marker()) {
      max_cores = std::min(max_cores, body_graph.graph.task(id).max_cores());
    }
  }
  // A composite running g concurrent tasks can use more cores than any single
  // member; the safe upper-level bound is left at the member's bound times
  // the body's maximum layer width only if known -- keep INT_MAX by default.
  (void)max_cores;

  const TaskId id = call(std::move(composite), loop_vars, loop_vars);
  result_.sub[id] = std::make_unique<HierGraph>(std::move(body_graph));
  return id;
}

HierGraph SpecBuilder::build() {
  if (built_) throw std::logic_error("specification already built");
  built_ = true;
  result_.graph.add_start_stop_markers();
  return std::move(result_);
}

TaskGraph flatten(const HierGraph& program, int iterations) {
  if (iterations < 1) throw std::invalid_argument("need >= 1 iteration");
  const TaskGraph& top = program.graph;
  TaskGraph flat;

  // For every top-level node, the flat ids of its "entry" and "exit"
  // representatives (equal for basic tasks; the body's sources/sinks for
  // composites).
  std::vector<std::vector<TaskId>> entries(
      static_cast<std::size_t>(top.num_tasks()));
  std::vector<std::vector<TaskId>> exits(
      static_cast<std::size_t>(top.num_tasks()));

  for (TaskId id = 0; id < top.num_tasks(); ++id) {
    if (top.task(id).is_marker()) continue;
    const auto it = program.sub.find(id);
    if (it == program.sub.end()) {
      const TaskId flat_id = flat.add_task(top.task(id));
      entries[static_cast<std::size_t>(id)] = {flat_id};
      exits[static_cast<std::size_t>(id)] = {flat_id};
      continue;
    }
    // Composite: inline the (recursively flattened) body `iterations` times
    // and chain the copies via repeat_graph's sink->source edges.
    const TaskGraph body = flatten(*it->second, 1);
    if (body.empty()) {
      // A composite whose body holds no basic tasks would otherwise vanish
      // from the flat graph and silently disconnect its predecessors from
      // its successors; keep the composite itself (with its accumulated work
      // hint) as a basic task instead.
      const TaskId flat_id = flat.add_task(top.task(id));
      entries[static_cast<std::size_t>(id)] = {flat_id};
      exits[static_cast<std::size_t>(id)] = {flat_id};
      continue;
    }
    const TaskGraph unrolled = repeat_graph(body, iterations);
    std::vector<TaskId> map(static_cast<std::size_t>(unrolled.num_tasks()));
    for (TaskId b = 0; b < unrolled.num_tasks(); ++b) {
      map[static_cast<std::size_t>(b)] = flat.add_task(unrolled.task(b));
    }
    for (TaskId from = 0; from < unrolled.num_tasks(); ++from) {
      for (TaskId to : unrolled.successors(from)) {
        flat.add_edge(map[static_cast<std::size_t>(from)],
                      map[static_cast<std::size_t>(to)]);
      }
    }
    for (TaskId b = 0; b < unrolled.num_tasks(); ++b) {
      if (unrolled.in_degree(b) == 0) {
        entries[static_cast<std::size_t>(id)].push_back(
            map[static_cast<std::size_t>(b)]);
      }
      if (unrolled.out_degree(b) == 0) {
        exits[static_cast<std::size_t>(id)].push_back(
            map[static_cast<std::size_t>(b)]);
      }
    }
  }

  // Top-level edges connect exits of the producer to entries of the
  // consumer (skipping markers transitively).
  for (TaskId from = 0; from < top.num_tasks(); ++from) {
    if (top.task(from).is_marker()) continue;
    for (TaskId to : top.successors(from)) {
      if (top.task(to).is_marker()) continue;
      for (TaskId fe : exits[static_cast<std::size_t>(from)]) {
        for (TaskId te : entries[static_cast<std::size_t>(to)]) {
          flat.add_edge(fe, te);
        }
      }
    }
  }
  return flat;
}

}  // namespace ptask::core
