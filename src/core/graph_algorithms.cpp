#include "ptask/core/graph_algorithms.hpp"

#include <algorithm>
#include <stdexcept>

namespace ptask::core {

namespace {

/// True if the edge u -> v may be an interior link of a linear chain.
bool chainable(const TaskGraph& g, TaskId u, TaskId v) {
  return g.out_degree(u) == 1 && g.in_degree(v) == 1 && !g.task(u).is_marker() &&
         !g.task(v).is_marker();
}

}  // namespace

ChainContraction contract_linear_chains(const TaskGraph& graph) {
  const int n = graph.num_tasks();
  ChainContraction result;
  result.representative.assign(static_cast<std::size_t>(n), kInvalidTask);

  // Identify chain heads: a task is a head unless its unique predecessor
  // chains into it.
  std::vector<bool> is_head(static_cast<std::size_t>(n), true);
  for (TaskId u = 0; u < n; ++u) {
    if (graph.out_degree(u) == 1) {
      const TaskId v = graph.successors(u).front();
      if (chainable(graph, u, v)) is_head[static_cast<std::size_t>(v)] = false;
    }
  }

  // Walk every chain from its head and create the contracted node.
  for (TaskId head = 0; head < n; ++head) {
    if (!is_head[static_cast<std::size_t>(head)]) continue;
    std::vector<TaskId> chain{head};
    TaskId cur = head;
    while (graph.out_degree(cur) == 1) {
      const TaskId next = graph.successors(cur).front();
      if (!chainable(graph, cur, next)) break;
      chain.push_back(next);
      cur = next;
    }

    MTask merged = graph.task(head);
    if (chain.size() > 1) {
      merged.set_name("chain(" + graph.task(chain.front()).name() + ".." +
                      graph.task(chain.back()).name() + ")");
      for (std::size_t i = 1; i < chain.size(); ++i) {
        const MTask& t = graph.task(chain[i]);
        merged.add_work_flop(t.work_flop());
        for (const CollectiveOp& op : t.comms()) merged.add_comm(op);
        for (const Param& p : t.params()) merged.add_param(p);
        merged.set_max_cores(std::min(merged.max_cores(), t.max_cores()));
      }
    }
    const TaskId c = result.contracted.add_task(std::move(merged));
    result.members.push_back(chain);
    for (TaskId member : chain) {
      result.representative[static_cast<std::size_t>(member)] = c;
    }
  }

  // Re-create edges between distinct contracted nodes.  The bulk insert
  // dedups and runs one Kahn pass over the whole contracted graph, instead
  // of a per-edge reachability probe -- same resulting adjacency (first
  // occurrence wins), but linear instead of quadratic on dense inputs.
  std::vector<std::pair<TaskId, TaskId>> edges;
  edges.reserve(static_cast<std::size_t>(graph.num_edges()));
  for (TaskId u = 0; u < n; ++u) {
    for (TaskId v : graph.successors(u)) {
      const TaskId cu = result.representative[static_cast<std::size_t>(u)];
      const TaskId cv = result.representative[static_cast<std::size_t>(v)];
      if (cu != cv) edges.push_back({cu, cv});
    }
  }
  result.contracted.add_edges(edges);
  return result;
}

ChainContraction identity_contraction(const TaskGraph& graph) {
  ChainContraction result;
  result.contracted = graph;
  result.members.resize(static_cast<std::size_t>(graph.num_tasks()));
  result.representative.resize(static_cast<std::size_t>(graph.num_tasks()));
  for (TaskId id = 0; id < graph.num_tasks(); ++id) {
    result.members[static_cast<std::size_t>(id)] = {id};
    result.representative[static_cast<std::size_t>(id)] = id;
  }
  return result;
}

std::vector<std::vector<TaskId>> greedy_layers(const TaskGraph& graph) {
  const int n = graph.num_tasks();
  std::vector<int> remaining_preds(static_cast<std::size_t>(n));
  for (TaskId id = 0; id < n; ++id) {
    remaining_preds[static_cast<std::size_t>(id)] = graph.in_degree(id);
  }

  std::vector<std::vector<TaskId>> layers;
  std::vector<TaskId> frontier;
  for (TaskId id = 0; id < n; ++id) {
    if (remaining_preds[static_cast<std::size_t>(id)] == 0) {
      frontier.push_back(id);
    }
  }

  int emitted = 0;
  while (!frontier.empty()) {
    std::vector<TaskId> layer;
    std::vector<TaskId> next;
    for (TaskId id : frontier) {
      if (!graph.task(id).is_marker()) layer.push_back(id);
      ++emitted;
      for (TaskId s : graph.successors(id)) {
        if (--remaining_preds[static_cast<std::size_t>(s)] == 0) {
          next.push_back(s);
        }
      }
    }
    if (!layer.empty()) layers.push_back(std::move(layer));
    frontier = std::move(next);
  }
  if (emitted != n) throw std::logic_error("task graph contains a cycle");
  return layers;
}

CriticalPathInfo critical_path(const TaskGraph& graph,
                               std::span<const double> task_time) {
  const int n = graph.num_tasks();
  if (static_cast<int>(task_time.size()) != n) {
    throw std::invalid_argument("one task time per task required");
  }
  CriticalPathInfo info;
  info.top_level.assign(static_cast<std::size_t>(n), 0.0);
  info.bottom_level.assign(static_cast<std::size_t>(n), 0.0);

  const std::vector<TaskId> order = graph.topological_order();
  for (TaskId id : order) {
    double top = 0.0;
    for (TaskId p : graph.predecessors(id)) {
      top = std::max(top, info.top_level[static_cast<std::size_t>(p)] +
                              task_time[static_cast<std::size_t>(p)]);
    }
    info.top_level[static_cast<std::size_t>(id)] = top;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId id = *it;
    double below = 0.0;
    for (TaskId s : graph.successors(id)) {
      below = std::max(below, info.bottom_level[static_cast<std::size_t>(s)]);
    }
    info.bottom_level[static_cast<std::size_t>(id)] =
        below + task_time[static_cast<std::size_t>(id)];
  }

  TaskId cur = kInvalidTask;
  for (TaskId id = 0; id < n; ++id) {
    const double len = info.bottom_level[static_cast<std::size_t>(id)];
    if (graph.in_degree(id) == 0 && len > info.length) {
      info.length = len;
      cur = id;
    }
  }
  while (cur != kInvalidTask) {
    info.path.push_back(cur);
    TaskId next = kInvalidTask;
    double best = -1.0;
    for (TaskId s : graph.successors(cur)) {
      const double len = info.bottom_level[static_cast<std::size_t>(s)];
      if (len > best) {
        best = len;
        next = s;
      }
    }
    cur = next;
  }
  return info;
}

TaskGraph repeat_graph(const TaskGraph& step, int repetitions) {
  if (repetitions < 1) throw std::invalid_argument("need >= 1 repetition");
  TaskGraph program;
  std::vector<TaskId> prev_map;  // previous copy: original id -> program id

  for (int rep = 0; rep < repetitions; ++rep) {
    std::vector<TaskId> map(static_cast<std::size_t>(step.num_tasks()),
                            kInvalidTask);
    for (TaskId id = 0; id < step.num_tasks(); ++id) {
      if (step.task(id).is_marker()) continue;
      MTask copy = step.task(id);
      copy.set_name(copy.name() + "#" + std::to_string(rep));
      map[static_cast<std::size_t>(id)] = program.add_task(std::move(copy));
    }
    for (TaskId from = 0; from < step.num_tasks(); ++from) {
      if (step.task(from).is_marker()) continue;
      for (TaskId to : step.successors(from)) {
        if (step.task(to).is_marker()) continue;
        program.add_edge(map[static_cast<std::size_t>(from)],
                         map[static_cast<std::size_t>(to)]);
      }
    }
    if (rep > 0) {
      // Sinks of the previous copy feed the sources of this one.
      for (TaskId id = 0; id < step.num_tasks(); ++id) {
        const MTask& t = step.task(id);
        if (t.is_marker()) continue;
        bool is_sink = true;
        for (TaskId s : step.successors(id)) {
          if (!step.task(s).is_marker()) is_sink = false;
        }
        if (!is_sink) continue;
        for (TaskId src = 0; src < step.num_tasks(); ++src) {
          const MTask& st = step.task(src);
          if (st.is_marker()) continue;
          bool is_source = true;
          for (TaskId p : step.predecessors(src)) {
            if (!step.task(p).is_marker()) is_source = false;
          }
          if (!is_source) continue;
          program.add_edge(prev_map[static_cast<std::size_t>(id)],
                           map[static_cast<std::size_t>(src)]);
        }
      }
    }
    prev_map = std::move(map);
  }
  return program;
}

}  // namespace ptask::core
