#include "ptask/core/mtask.hpp"

namespace ptask::core {

const char* to_string(CommScope scope) {
  switch (scope) {
    case CommScope::Global:
      return "global";
    case CommScope::Group:
      return "group";
    case CommScope::Orthogonal:
      return "orthogonal";
  }
  return "unknown";
}

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::Bcast:
      return "bcast";
    case CollectiveKind::Allgather:
      return "allgather";
    case CollectiveKind::Allreduce:
      return "allreduce";
    case CollectiveKind::Barrier:
      return "barrier";
    case CollectiveKind::Exchange:
      return "exchange";
  }
  return "unknown";
}

}  // namespace ptask::core
