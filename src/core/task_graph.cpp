#include "ptask/core/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace ptask::core {

TaskId TaskGraph::add_task(MTask task) {
  tasks_.push_back(std::move(task));
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::check_id(TaskId id) const {
  if (id < 0 || id >= num_tasks()) {
    throw std::out_of_range("task id out of range");
  }
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  check_id(from);
  check_id(to);
  if (from == to) throw std::invalid_argument("self edge");
  if (has_edge(from, to)) return;
  if (reaches(to, from)) {
    throw std::invalid_argument("edge would create a cycle");
  }
  succ_[static_cast<std::size_t>(from)].push_back(to);
  pred_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
}

const MTask& TaskGraph::task(TaskId id) const {
  check_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

MTask& TaskGraph::task(TaskId id) {
  check_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

const std::vector<TaskId>& TaskGraph::successors(TaskId id) const {
  check_id(id);
  return succ_[static_cast<std::size_t>(id)];
}

const std::vector<TaskId>& TaskGraph::predecessors(TaskId id) const {
  check_id(id);
  return pred_[static_cast<std::size_t>(id)];
}

int TaskGraph::in_degree(TaskId id) const {
  return static_cast<int>(predecessors(id).size());
}

int TaskGraph::out_degree(TaskId id) const {
  return static_cast<int>(successors(id).size());
}

bool TaskGraph::has_edge(TaskId from, TaskId to) const {
  check_id(from);
  check_id(to);
  const auto& s = succ_[static_cast<std::size_t>(from)];
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<int> indeg(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    indeg[i] = static_cast<int>(pred_[i].size());
  }
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indeg[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (TaskId s : succ_[static_cast<std::size_t>(id)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  if (order.size() != tasks_.size()) {
    throw std::logic_error("task graph contains a cycle");
  }
  return order;
}

bool TaskGraph::reaches(TaskId from, TaskId to) const {
  check_id(from);
  check_id(to);
  if (from == to) return true;
  std::vector<bool> seen(tasks_.size(), false);
  std::vector<TaskId> stack{from};
  seen[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    const TaskId v = stack.back();
    stack.pop_back();
    for (TaskId s : succ_[static_cast<std::size_t>(v)]) {
      if (s == to) return true;
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

bool TaskGraph::independent(TaskId a, TaskId b) const {
  if (a == b) return false;
  return !reaches(a, b) && !reaches(b, a);
}

std::pair<TaskId, TaskId> TaskGraph::add_start_stop_markers() {
  std::vector<TaskId> sources, sinks;
  for (TaskId id = 0; id < num_tasks(); ++id) {
    if (in_degree(id) == 0) sources.push_back(id);
    if (out_degree(id) == 0) sinks.push_back(id);
  }
  MTask start("start", 0.0);
  start.set_marker(true);
  MTask stop("stop", 0.0);
  stop.set_marker(true);
  const TaskId start_id = add_task(std::move(start));
  const TaskId stop_id = add_task(std::move(stop));
  for (TaskId s : sources) add_edge(start_id, s);
  for (TaskId s : sinks) add_edge(s, stop_id);
  return {start_id, stop_id};
}

double TaskGraph::total_work_flop() const {
  double total = 0.0;
  for (const MTask& t : tasks_) total += t.work_flop();
  return total;
}

std::string TaskGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  for (TaskId id = 0; id < num_tasks(); ++id) {
    os << "  t" << id << " [label=\"" << task(id).name() << "\"";
    if (task(id).is_marker()) os << " shape=point";
    os << "];\n";
  }
  for (TaskId id = 0; id < num_tasks(); ++id) {
    for (TaskId s : successors(id)) {
      os << "  t" << id << " -> t" << s << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ptask::core
