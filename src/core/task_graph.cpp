#include "ptask/core/task_graph.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace ptask::core {

TaskId TaskGraph::add_task(MTask task) {
  tasks_.push_back(std::move(task));
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::check_id(TaskId id) const {
  if (id < 0 || id >= num_tasks()) {
    throw std::out_of_range("task id out of range");
  }
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  check_id(from);
  check_id(to);
  if (from == to) throw std::invalid_argument("self edge");
  if (has_edge(from, to)) return;
  if (reaches(to, from)) {
    throw std::invalid_argument("edge would create a cycle");
  }
  succ_[static_cast<std::size_t>(from)].push_back(to);
  pred_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
}

void TaskGraph::add_edges(const std::vector<std::pair<TaskId, TaskId>>& edges) {
  if (edges.empty()) return;
  const std::size_t n = tasks_.size();

  // Validate ranges / self edges and drop duplicates before touching any
  // adjacency, so a bad batch leaves the graph byte-identical.  The batch's
  // successor overlay lives in one flat CSR buffer (counted, prefix-summed,
  // then filled); per-node slices stay short in practice, so duplicate
  // probes are linear scans of the filled slice -- no hashing, no per-node
  // vector allocations.
  std::vector<std::uint32_t> offset(n + 1, 0);
  for (const auto& [from, to] : edges) {
    check_id(from);
    check_id(to);
    if (from == to) throw std::invalid_argument("self edge");
    ++offset[static_cast<std::size_t>(from) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) offset[i + 1] += offset[i];
  std::vector<TaskId> overlay(edges.size());
  std::vector<std::uint32_t> filled(n, 0);
  std::vector<std::uint32_t> in_added(n, 0);
  std::vector<std::pair<TaskId, TaskId>> fresh;
  fresh.reserve(edges.size());
  for (const auto& [from, to] : edges) {
    if (has_edge(from, to)) continue;
    TaskId* const begin =
        overlay.data() + offset[static_cast<std::size_t>(from)];
    TaskId* const end = begin + filled[static_cast<std::size_t>(from)];
    if (std::find(begin, end, to) != end) continue;
    *end = to;
    ++filled[static_cast<std::size_t>(from)];
    ++in_added[static_cast<std::size_t>(to)];
    fresh.push_back({from, to});
  }
  if (fresh.empty()) return;

  // One Kahn pass over the overlay graph (existing adjacency + the batch):
  // every node drains iff the combined edge set is acyclic.
  std::vector<int> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = static_cast<int>(pred_[i].size() + in_added[i]);
  }
  std::vector<TaskId> ready;
  ready.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<TaskId>(i));
  }
  std::size_t drained = 0;
  while (!ready.empty()) {
    const TaskId id = ready.back();
    ready.pop_back();
    ++drained;
    const auto relax = [&](TaskId s) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    };
    for (TaskId s : succ_[static_cast<std::size_t>(id)]) relax(s);
    const TaskId* const begin =
        overlay.data() + offset[static_cast<std::size_t>(id)];
    const TaskId* const end = begin + filled[static_cast<std::size_t>(id)];
    for (const TaskId* s = begin; s != end; ++s) relax(*s);
  }
  if (drained != n) {
    throw std::invalid_argument("edge batch would create a cycle");
  }

  // Exact-size reserves keep the commit loop realloc-free; the loop itself
  // appends in batch order so the resulting adjacency order is identical to
  // a sequence of add_edge calls.
  for (std::size_t i = 0; i < n; ++i) {
    if (filled[i] > 0) succ_[i].reserve(succ_[i].size() + filled[i]);
    if (in_added[i] > 0) pred_[i].reserve(pred_[i].size() + in_added[i]);
  }
  for (const auto& [from, to] : fresh) {
    succ_[static_cast<std::size_t>(from)].push_back(to);
    pred_[static_cast<std::size_t>(to)].push_back(from);
    ++num_edges_;
  }
}

const MTask& TaskGraph::task(TaskId id) const {
  check_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

MTask& TaskGraph::task(TaskId id) {
  check_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

const std::vector<TaskId>& TaskGraph::successors(TaskId id) const {
  check_id(id);
  return succ_[static_cast<std::size_t>(id)];
}

const std::vector<TaskId>& TaskGraph::predecessors(TaskId id) const {
  check_id(id);
  return pred_[static_cast<std::size_t>(id)];
}

int TaskGraph::in_degree(TaskId id) const {
  return static_cast<int>(predecessors(id).size());
}

int TaskGraph::out_degree(TaskId id) const {
  return static_cast<int>(successors(id).size());
}

bool TaskGraph::has_edge(TaskId from, TaskId to) const {
  check_id(from);
  check_id(to);
  const auto& s = succ_[static_cast<std::size_t>(from)];
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<int> indeg(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    indeg[i] = static_cast<int>(pred_[i].size());
  }
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indeg[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (TaskId s : succ_[static_cast<std::size_t>(id)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  if (order.size() != tasks_.size()) {
    throw std::logic_error("task graph contains a cycle");
  }
  return order;
}

bool TaskGraph::reaches(TaskId from, TaskId to) const {
  check_id(from);
  check_id(to);
  if (from == to) return true;
  std::vector<bool> seen(tasks_.size(), false);
  std::vector<TaskId> stack{from};
  seen[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    const TaskId v = stack.back();
    stack.pop_back();
    for (TaskId s : succ_[static_cast<std::size_t>(v)]) {
      if (s == to) return true;
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

bool TaskGraph::independent(TaskId a, TaskId b) const {
  if (a == b) return false;
  return !reaches(a, b) && !reaches(b, a);
}

std::pair<TaskId, TaskId> TaskGraph::add_start_stop_markers() {
  std::vector<TaskId> sources, sinks;
  for (TaskId id = 0; id < num_tasks(); ++id) {
    if (in_degree(id) == 0) sources.push_back(id);
    if (out_degree(id) == 0) sinks.push_back(id);
  }
  MTask start("start", 0.0);
  start.set_marker(true);
  MTask stop("stop", 0.0);
  stop.set_marker(true);
  const TaskId start_id = add_task(std::move(start));
  const TaskId stop_id = add_task(std::move(stop));
  for (TaskId s : sources) add_edge(start_id, s);
  for (TaskId s : sinks) add_edge(s, stop_id);
  return {start_id, stop_id};
}

double TaskGraph::total_work_flop() const {
  double total = 0.0;
  for (const MTask& t : tasks_) total += t.work_flop();
  return total;
}

std::string TaskGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  for (TaskId id = 0; id < num_tasks(); ++id) {
    os << "  t" << id << " [label=\"" << task(id).name() << "\"";
    if (task(id).is_marker()) os << " shape=point";
    os << "];\n";
  }
  for (TaskId id = 0; id < num_tasks(); ++id) {
    for (TaskId s : successors(id)) {
      os << "  t" << id << " -> t" << s << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ptask::core
