#include "ptask/fuzz/generator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "ptask/npb/multizone.hpp"
#include "ptask/ode/graph_gen.hpp"

namespace ptask::fuzz {

const char* to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::Layered:
      return "layered";
    case GraphFamily::SeriesParallel:
      return "series-parallel";
    case GraphFamily::RandomDag:
      return "random-dag";
    case GraphFamily::OdeSolver:
      return "ode-solver";
    case GraphFamily::NpbMultiZone:
      return "npb-multizone";
  }
  return "?";
}

namespace {

/// Random task with log-uniform work and an optional internal collective --
/// the cost-heterogeneity knob of the generator.
core::MTask random_task(Rng& rng, const GeneratorParams& params,
                        const std::string& name) {
  const double log_lo = std::log(params.min_work_flop);
  const double log_hi = std::log(params.max_work_flop);
  core::MTask task(name, std::exp(rng.uniform_real(log_lo, log_hi)));
  if (rng.chance(params.comm_probability)) {
    static constexpr core::CollectiveKind kKinds[] = {
        core::CollectiveKind::Bcast, core::CollectiveKind::Allgather,
        core::CollectiveKind::Allreduce, core::CollectiveKind::Exchange};
    task.add_comm(core::CollectiveOp{
        kKinds[static_cast<std::size_t>(rng.uniform(0, 3))],
        rng.chance(0.25) ? core::CommScope::Orthogonal : core::CommScope::Group,
        static_cast<std::size_t>(rng.uniform(1, 64)) * 1024,
        rng.uniform(1, 4)});
  }
  if (rng.chance(0.15)) task.set_max_cores(rng.uniform(1, 64));
  return task;
}

}  // namespace

core::TaskGraph layered_graph(Rng& rng, const GeneratorParams& params) {
  core::TaskGraph g;
  const int depth = rng.uniform(2, params.max_depth);
  std::vector<core::TaskId> previous;
  int counter = 0;
  for (int d = 0; d < depth; ++d) {
    const int width = rng.uniform(1, params.max_width);
    std::vector<core::TaskId> current;
    current.reserve(static_cast<std::size_t>(width));
    for (int w = 0; w < width; ++w) {
      current.push_back(
          g.add_task(random_task(rng, params, "L" + std::to_string(counter++))));
    }
    for (core::TaskId to : current) {
      bool connected = previous.empty();
      for (core::TaskId from : previous) {
        if (rng.chance(params.edge_density)) {
          g.add_edge(from, to);
          connected = true;
        }
      }
      // Keep the graph layered: every non-source hangs off its previous layer.
      if (!connected) {
        g.add_edge(previous[static_cast<std::size_t>(rng.uniform(
                       0, static_cast<int>(previous.size()) - 1))],
                   to);
      }
    }
    previous = std::move(current);
  }
  return g;
}

namespace {

/// Recursive series-parallel expansion between two existing nodes.  The
/// node budget bounds the worst case (deep all-parallel expansions are
/// exponential in depth otherwise).
void expand_sp(core::TaskGraph& g, Rng& rng, const GeneratorParams& params,
               core::TaskId src, core::TaskId dst, int depth, int* counter,
               int budget) {
  if (depth <= 0 || *counter >= budget || rng.chance(0.3)) {
    g.add_edge(src, dst);
    return;
  }
  if (rng.chance(0.5)) {
    // Series: src -> middle -> dst, both halves expanded further.
    const core::TaskId mid = g.add_task(
        random_task(rng, params, "S" + std::to_string((*counter)++)));
    expand_sp(g, rng, params, src, mid, depth - 1, counter, budget);
    expand_sp(g, rng, params, mid, dst, depth - 1, counter, budget);
  } else {
    // Parallel: independent branches between src and dst.
    const int branches = rng.uniform(2, 4);
    for (int b = 0; b < branches; ++b) {
      const core::TaskId node = g.add_task(
          random_task(rng, params, "P" + std::to_string((*counter)++)));
      expand_sp(g, rng, params, src, node, depth - 1, counter, budget);
      expand_sp(g, rng, params, node, dst, depth - 1, counter, budget);
    }
  }
}

}  // namespace

core::TaskGraph series_parallel_graph(Rng& rng, const GeneratorParams& params) {
  core::TaskGraph g;
  int counter = 0;
  const core::TaskId src =
      g.add_task(random_task(rng, params, "S" + std::to_string(counter++)));
  const core::TaskId dst =
      g.add_task(random_task(rng, params, "S" + std::to_string(counter++)));
  expand_sp(g, rng, params, src, dst, rng.uniform(1, params.max_depth / 2 + 1),
            &counter, params.max_width * params.max_depth);
  return g;
}

core::TaskGraph random_dag(Rng& rng, const GeneratorParams& params) {
  core::TaskGraph g;
  const int n = rng.uniform(3, params.max_width * params.max_depth);
  for (int i = 0; i < n; ++i) {
    g.add_task(random_task(rng, params, "R" + std::to_string(i)));
  }
  for (int to = 1; to < n; ++to) {
    // Chain density: bias a share of the nodes onto single-predecessor
    // chains so chain contraction has material to work on.
    if (rng.chance(params.chain_density)) {
      g.add_edge(to - 1, to);
      continue;
    }
    const int edges = rng.uniform(0, std::min(3, to));
    for (int e = 0; e < edges; ++e) {
      const int from = rng.uniform(0, to - 1);
      if (!g.has_edge(from, to)) g.add_edge(from, to);
    }
  }
  return g;
}

core::TaskGraph ode_solver_graph(Rng& rng, std::string* name) {
  static constexpr ode::Method kMethods[] = {
      ode::Method::EPOL, ode::Method::IRK, ode::Method::DIIRK,
      ode::Method::PAB, ode::Method::PABM};
  ode::SolverGraphSpec spec;
  spec.method = kMethods[static_cast<std::size_t>(rng.uniform(0, 4))];
  spec.n = static_cast<std::size_t>(1) << rng.uniform(8, 14);
  spec.stages = rng.uniform(2, 6);
  spec.iterations = rng.uniform(1, 2);
  spec.inner_iterations = rng.uniform(1, 2);
  const int steps = rng.uniform(1, 3);
  if (name != nullptr) {
    std::ostringstream os;
    os << ode::to_string(spec.method) << " n=" << spec.n
       << " stages=" << spec.stages << " steps=" << steps;
    *name = os.str();
  }
  const core::TaskGraph step = spec.step_graph();
  return steps == 1 ? step : core::repeat_graph(step, steps);
}

core::TaskGraph npb_multizone_graph(Rng& rng, std::string* name) {
  const npb::MzSolver solver =
      rng.chance(0.5) ? npb::MzSolver::SP : npb::MzSolver::BT;
  const char benchmark_class = rng.chance(0.5) ? 'S' : 'W';
  const npb::MultiZoneProblem problem =
      npb::make_problem(solver, benchmark_class);
  if (name != nullptr) *name = problem.name();
  return npb::step_graph(problem);
}

ArrivalStream arrival_stream(std::uint64_t seed, int batches) {
  ArrivalStream stream;
  const Instance source = random_instance(seed);
  const int n = source.graph.num_tasks();
  if (n == 0) {
    stream.instance = source;
    return stream;
  }
  const int k = std::max(1, std::min(batches, n));

  // Relabel into arrival order: ids follow the (deterministic, smallest-id-
  // first) topological order, so any contiguous id prefix is closed under
  // predecessors and every edge points into the same or a later batch.
  const std::vector<core::TaskId> topo = source.graph.topological_order();
  std::vector<core::TaskId> arrival_id(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    arrival_id[static_cast<std::size_t>(topo[static_cast<std::size_t>(j)])] =
        static_cast<core::TaskId>(j);
  }
  // k non-empty even chunks: batch b covers [batch_begin(b), batch_begin(b+1)).
  const auto batch_begin = [&](int b) {
    return static_cast<core::TaskId>((static_cast<long long>(b) * n) / k);
  };
  std::vector<int> batch_of(static_cast<std::size_t>(n));
  for (int b = 0; b < k; ++b) {
    const core::TaskId hi =
        b + 1 < k ? batch_begin(b + 1) : static_cast<core::TaskId>(n);
    for (core::TaskId j = batch_begin(b); j < hi; ++j) {
      batch_of[static_cast<std::size_t>(j)] = b;
    }
  }

  // Edges grouped by the batch of their target (the earliest instant both
  // endpoints exist), ordered (to, from) ascending within a batch.
  std::vector<std::vector<std::pair<core::TaskId, core::TaskId>>> batch_edges(
      static_cast<std::size_t>(k));
  for (core::TaskId to = 0; to < n; ++to) {
    std::vector<core::TaskId> froms;
    for (core::TaskId old_from :
         source.graph.predecessors(topo[static_cast<std::size_t>(to)])) {
      froms.push_back(arrival_id[static_cast<std::size_t>(old_from)]);
    }
    std::sort(froms.begin(), froms.end());
    for (core::TaskId from : froms) {
      batch_edges[static_cast<std::size_t>(batch_of[static_cast<std::size_t>(to)])]
          .push_back({from, to});
    }
  }

  // Batch 0 is the initial graph; later batches become timed deltas.  All
  // timing/priority randomness comes from a substream of the instance seed,
  // so the stream shape is independent of the instance generator's draws.
  Rng rng(substream(seed, 0xA881u));
  for (core::TaskId j = 0; j < batch_begin(1); ++j) {
    stream.initial.add_task(source.graph.task(topo[static_cast<std::size_t>(j)]));
  }
  for (const auto& [from, to] : batch_edges[0]) {
    stream.initial.add_edge(from, to);
  }
  stream.initial_release = 0.0;

  double release = 0.0;
  for (int b = 1; b < k; ++b) {
    sched::GraphDelta delta;
    release += rng.uniform_real(0.1, 10.0);
    delta.release_time = release;
    const core::TaskId lo = batch_begin(b);
    const core::TaskId hi = b + 1 < k ? batch_begin(b + 1)
                                      : static_cast<core::TaskId>(n);
    for (core::TaskId j = lo; j < hi; ++j) {
      sched::ArrivingTask arriving;
      arriving.task = source.graph.task(topo[static_cast<std::size_t>(j)]);
      arriving.release_time = release + rng.uniform_real(0.0, 1.0);
      arriving.priority = rng.uniform(0, 9);
      delta.tasks.push_back(std::move(arriving));
    }
    delta.edges = batch_edges[static_cast<std::size_t>(b)];
    stream.deltas.push_back(std::move(delta));
  }

  stream.instance = source;
  stream.instance.graph = materialize(stream);
  std::ostringstream os;
  os << source.name << " arrivals k=" << k;
  stream.instance.name = os.str();
  return stream;
}

core::TaskGraph materialize(const ArrivalStream& stream) {
  core::TaskGraph graph = stream.initial;
  for (const sched::GraphDelta& delta : stream.deltas) {
    for (const sched::ArrivingTask& arriving : delta.tasks) {
      graph.add_task(arriving.task);
    }
    graph.add_edges(delta.edges);
  }
  return graph;
}

Instance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.seed = seed;
  inst.family = static_cast<GraphFamily>(rng.uniform(0, 4));

  // Machine shape: one of the paper's platforms, truncated to a random node
  // count so the interconnect hierarchy varies with the instance.
  static constexpr const char* kPresets[] = {"chic", "juropa", "altix"};
  arch::MachineSpec spec = arch::machine_by_name(
      kPresets[static_cast<std::size_t>(rng.uniform(0, 2))]);
  spec.num_nodes = rng.uniform(2, 16);
  inst.machine = spec;

  GeneratorParams params;
  params.max_width = rng.uniform(3, 10);
  params.max_depth = rng.uniform(2, 7);
  params.chain_density = rng.uniform_real(0.1, 0.6);
  params.edge_density = rng.uniform_real(0.2, 0.8);
  params.comm_probability = rng.uniform_real(0.2, 0.8);
  // Heterogeneity: span the work range over 1..4 orders of magnitude.
  params.min_work_flop = rng.uniform_real(1.0e6, 1.0e8);
  params.max_work_flop =
      params.min_work_flop * std::pow(10.0, rng.uniform_real(1.0, 4.0));

  std::string detail;
  switch (inst.family) {
    case GraphFamily::Layered:
      inst.graph = layered_graph(rng, params);
      break;
    case GraphFamily::SeriesParallel:
      inst.graph = series_parallel_graph(rng, params);
      break;
    case GraphFamily::RandomDag:
      inst.graph = random_dag(rng, params);
      break;
    case GraphFamily::OdeSolver:
      inst.graph = ode_solver_graph(rng, &detail);
      break;
    case GraphFamily::NpbMultiZone:
      inst.graph = npb_multizone_graph(rng, &detail);
      break;
  }

  // Symbolic core count: between one node's cores and the whole machine.
  const int per_node = spec.cores_per_node();
  const int max_nodes = spec.num_nodes;
  inst.total_cores = per_node * rng.uniform(1, max_nodes);

  std::ostringstream os;
  os << to_string(inst.family);
  if (!detail.empty()) os << "(" << detail << ")";
  os << " tasks=" << inst.graph.num_tasks() << " edges="
     << inst.graph.num_edges() << " machine=" << spec.name << "x"
     << spec.num_nodes << " cores=" << inst.total_cores;
  inst.name = os.str();
  return inst;
}

}  // namespace ptask::fuzz
