#include "ptask/fuzz/oracles.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "ptask/analysis/analyzer.hpp"
#include "ptask/analysis/certifier.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/portfolio.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/sched/timeline.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask::fuzz {

namespace {

/// Copies `g` with all tasks and all edges except `skip_from -> skip_to`.
core::TaskGraph copy_without_edge(const core::TaskGraph& g,
                                  core::TaskId skip_from,
                                  core::TaskId skip_to) {
  core::TaskGraph out;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) out.add_task(g.task(id));
  for (core::TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const core::TaskId v : g.successors(u)) {
      if (u == skip_from && v == skip_to) continue;
      out.add_edge(u, v);
    }
  }
  return out;
}

/// First edge between two non-marker tasks, or {kInvalidTask, kInvalidTask}.
std::pair<core::TaskId, core::TaskId> first_basic_edge(
    const core::TaskGraph& g) {
  for (core::TaskId u = 0; u < g.num_tasks(); ++u) {
    if (g.task(u).is_marker()) continue;
    for (const core::TaskId v : g.successors(u)) {
      if (!g.task(v).is_marker()) return {u, v};
    }
  }
  return {core::kInvalidTask, core::kInvalidTask};
}

/// First pair of independent non-marker tasks, or invalid ids.
std::pair<core::TaskId, core::TaskId> independent_basic_pair(
    const core::TaskGraph& g) {
  for (core::TaskId a = 0; a < g.num_tasks(); ++a) {
    if (g.task(a).is_marker()) continue;
    for (core::TaskId b = a + 1; b < g.num_tasks(); ++b) {
      if (g.task(b).is_marker()) continue;
      if (g.independent(a, b)) return {a, b};
    }
  }
  return {core::kInvalidTask, core::kInvalidTask};
}

class Checker {
 public:
  Checker(const Instance& instance, const OracleOptions& options,
          OracleReport& report)
      : instance_(instance),
        options_(options),
        report_(report),
        machine_(instance.machine),
        cost_(machine_) {}

  void run() {
    // Differential sweep over every registered strategy: each candidate goes
    // through the same oracle set (validation, makespan agreement,
    // allocation consistency, redistribution, simulation for layered
    // strategies), so registering a scheduler is all it takes to fuzz it.
    const sched::SchedulerRegistry& registry =
        sched::SchedulerRegistry::instance();
    std::vector<std::pair<std::string, sched::Schedule>> candidates;
    for (const std::string& name : registry.names()) {
      if (name == "portfolio") continue;  // checked separately below
      sched::Schedule schedule = registry.make(name, cost_)->run(
          instance_.graph, instance_.total_cores);
      check_schedule(name, schedule, /*simulate=*/schedule.has_layers());
      candidates.emplace_back(name, std::move(schedule));
    }

    // Structurally distinct layer-scheduler variants (fixed options are not
    // registry entries; they exercise the non-default pass configurations).
    {
      sched::LayerSchedulerOptions opts;
      opts.fixed_groups = 2;
      check_schedule("layer[g=2]",
                     sched::Pipeline::algorithm1(cost_, opts).run(
                         instance_.graph, instance_.total_cores),
                     /*simulate=*/false);
    }
    {
      sched::LayerSchedulerOptions opts;
      opts.contract_chains = false;
      check_schedule("layer[no-contract]",
                     sched::Pipeline::algorithm1(cost_, opts).run(
                         instance_.graph, instance_.total_cores),
                     /*simulate=*/false);
    }
    sched::LayerSchedulerOptions unadjusted_opts;
    unadjusted_opts.adjust_group_sizes = false;
    const sched::Schedule unadjusted =
        sched::Pipeline::algorithm1(cost_, unadjusted_opts)
            .run(instance_.graph, instance_.total_cores);
    check_schedule("layer[unadjusted]", unadjusted, /*simulate=*/false);

    const sched::LayeredSchedule& layered = find(candidates, "layer").layered;
    const sched::LayeredSchedule& dp = find(candidates, "dp").layered;

    // Symbolic dominance: pure data parallelism is the g = 1 column of the
    // layer search, so the unadjusted layer schedule can never predict a
    // longer makespan.  (The harness originally asserted this for the
    // *adjusted* schedule too and promptly found counterexamples: the
    // proportional group-size adjustment is a heuristic that can lengthen
    // the prediction by a fraction of a percent, so it only gets a
    // bounded-degradation check.)
    if (unadjusted.layered.predicted_makespan >
        dp.predicted_makespan * (1.0 + options_.rel_tol) + 1e-12) {
      fail("dominance",
           "unadjusted layer-based makespan " +
               std::to_string(unadjusted.layered.predicted_makespan) +
               " exceeds data-parallel makespan " +
               std::to_string(dp.predicted_makespan));
    }
    if (layered.predicted_makespan >
        unadjusted.layered.predicted_makespan * options_.adjust_slack +
            1e-12) {
      fail("adjustment",
           "group-size adjustment degraded the makespan from " +
               std::to_string(unadjusted.layered.predicted_makespan) +
               " to " + std::to_string(layered.predicted_makespan));
    }

    check_portfolio(candidates);

    if (options_.check_executor) check_executor();
    if (options_.check_lint) check_lint(layered, candidates);
    if (options_.check_certifier) check_certifier_mutations(candidates);
  }

 private:
  void fail(const std::string& oracle, const std::string& message) {
    std::ostringstream os;
    os << "[seed=" << instance_.seed << " " << instance_.name << "] " << oracle
       << ": " << message;
    report_.errors.push_back(os.str());
  }

  /// The candidate schedule produced by strategy `name`.
  static const sched::Schedule& find(
      const std::vector<std::pair<std::string, sched::Schedule>>& candidates,
      const std::string& name) {
    for (const auto& [n, s] : candidates) {
      if (n == name) return s;
    }
    throw std::logic_error("strategy '" + name + "' missing from sweep");
  }

  /// Oracles 1-4, uniform over any canonical schedule.
  void check_schedule(const std::string& label,
                      const sched::Schedule& schedule, bool simulate) {
    ++report_.schedules_checked;
    if (schedule.has_layers()) {
      const sched::ValidationReport vr =
          sched::validate(schedule.layered, instance_.graph);
      if (!vr.ok()) {
        fail(label, "layered validation: " + vr.errors.front());
        return;
      }
    }
    const core::TaskGraph& graph = schedule.scheduled_graph();
    const sched::ValidationReport gr =
        sched::validate(schedule.gantt, graph);
    if (!gr.ok()) {
      fail(label, "gantt validation: " + gr.errors.front());
      return;
    }

    // Declared makespan vs the last slot finish (independent summations);
    // for layered strategies additionally vs the accumulated per-layer
    // prediction (canonical() lowers with to_gantt, a third code path).
    double max_finish = 0.0;
    for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
      if (graph.task(id).is_marker()) continue;
      max_finish = std::max(
          max_finish,
          schedule.gantt.slots[static_cast<std::size_t>(id)].finish);
    }
    if (relative_gap(schedule.makespan(), max_finish) > options_.rel_tol) {
      fail(label, "declared makespan " + std::to_string(schedule.makespan()) +
                      " disagrees with the last slot finish " +
                      std::to_string(max_finish));
    }
    if (schedule.has_layers() &&
        relative_gap(schedule.makespan(),
                     schedule.layered.predicted_makespan) >
            options_.rel_tol) {
      fail(label,
           "gantt lowering makespan " + std::to_string(schedule.makespan()) +
               " disagrees with predicted makespan " +
               std::to_string(schedule.layered.predicted_makespan));
    }

    // The per-task allocation must restate the slot widths.
    for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
      const auto& slot = schedule.gantt.slots[static_cast<std::size_t>(id)];
      if (schedule.task_width(id) != slot.num_cores()) {
        fail(label, "allocation of task " + graph.task(id).name() + " is " +
                        std::to_string(schedule.task_width(id)) +
                        " but its slot spans " +
                        std::to_string(slot.num_cores()) + " cores");
        break;
      }
    }

    const double redist = sched::gantt_redistribution_time(
        graph, schedule.gantt, cost_);
    if (!std::isfinite(redist) || redist < 0.0) {
      fail(label, "redistribution penalty is " + std::to_string(redist));
    }

    if (simulate && schedule.has_layers()) {
      check_simulation(label, schedule.layered);
    }

    // Oracle 7 (clean half): the independent certifier must agree that the
    // schedule is feasible.  Running it here covers every candidate of the
    // sweep, the layer variants, and the portfolio winner alike.
    if (options_.check_certifier) {
      ++report_.certificates_checked;
      const analysis::Certificate cert =
          analysis::certify(instance_.graph, schedule, certifier_options());
      if (!cert.ok()) {
        fail(label,
             "certifier rejected the schedule:\n" +
                 analysis::render_text(cert.report));
      }
    }
  }

  analysis::CertifierOptions certifier_options() const {
    analysis::CertifierOptions copts;
    copts.rel_tol = options_.rel_tol;
    copts.record_intervals = false;  // evidence unused; keep the sweep lean
    return copts;
  }

  /// Oracle 7 (mutation half): each schedule-corruption class must be caught
  /// by its matching PTC code.  Corruptions are surgical -- they perturb one
  /// invariant while keeping the tables otherwise consistent -- so the
  /// *distinct* diagnostic is what proves the certifier attributes failures
  /// correctly (collateral co-firing of other codes is legitimate, e.g. a
  /// moved slot can also shift the makespan).
  void check_certifier_mutations(
      const std::vector<std::pair<std::string, sched::Schedule>>& candidates) {
    const sched::Schedule& base = find(candidates, "layer");
    const core::TaskGraph& g = base.scheduled_graph();
    const auto slot_of = [](sched::Schedule& s,
                            core::TaskId id) -> sched::TaskSlot& {
      return s.gantt.slots[static_cast<std::size_t>(id)];
    };
    const auto duration = [&](const sched::Schedule& s, core::TaskId id) {
      const auto& slot = s.gantt.slots[static_cast<std::size_t>(id)];
      return slot.finish - slot.start;
    };

    // PTC001: shift a successor to start alongside its still-running
    // predecessor.
    {
      sched::Schedule m = base;
      bool applied = false;
      for (core::TaskId u = 0; u < g.num_tasks() && !applied; ++u) {
        if (g.task(u).is_marker() || duration(m, u) <= 0.0) continue;
        for (const core::TaskId v : g.successors(u)) {
          if (g.task(v).is_marker()) continue;
          sched::TaskSlot& sv = slot_of(m, v);
          const double d = sv.finish - sv.start;
          sv.start = slot_of(m, u).start;
          sv.finish = sv.start + d;
          applied = true;
          break;
        }
      }
      if (applied) expect_code("precedence", m, analysis::kCertPrecedence);
    }

    // PTC002: point one of a task's cores at a concurrently running task's
    // core (widths untouched, so the allocation tables stay consistent).
    {
      sched::Schedule m = base;
      bool applied = false;
      for (core::TaskId a = 0; a < g.num_tasks() && !applied; ++a) {
        if (g.task(a).is_marker() || duration(m, a) <= 0.0) continue;
        for (core::TaskId b = a + 1; b < g.num_tasks() && !applied; ++b) {
          if (g.task(b).is_marker() || duration(m, b) <= 0.0) continue;
          const sched::TaskSlot& sa = slot_of(m, a);
          const sched::TaskSlot& sb = slot_of(m, b);
          if (std::max(sa.start, sb.start) + 1e-12 >=
              std::min(sa.finish, sb.finish)) {
            continue;  // no temporal overlap
          }
          bool disjoint = true;
          for (const int c : sa.cores) {
            for (const int d : sb.cores) {
              if (c == d) disjoint = false;
            }
          }
          if (!disjoint || sa.cores.empty() || sb.cores.empty()) continue;
          slot_of(m, a).cores[0] = sb.cores[0];
          applied = true;
        }
      }
      if (applied) expect_code("overlap", m, analysis::kCertOverlap);
    }

    // PTC003: oversubscribe a layer group past the machine size.
    if (base.has_layers() && !base.layered.layers.empty() &&
        !base.layered.layers.front().group_sizes.empty()) {
      sched::Schedule m = base;
      m.layered.layers.front().group_sizes.front() += 1;
      expect_code("oversubscribed-group", m, analysis::kCertAllocation);
    }

    // PTC004: edit the declared makespan away from the last slot finish.
    {
      sched::Schedule m = base;
      m.gantt.makespan = m.gantt.makespan > 0.0 ? m.gantt.makespan * 1.5 : 1.0;
      expect_code("makespan-edit", m, analysis::kCertMakespan);
    }

    // PTC005: collapse every start to 0 and declare the longest single slot
    // as the makespan -- internally consistent arithmetic, but below the
    // critical-path lower bound whenever some dependent pair's combined work
    // exceeds every individual slot.  (If the longest *independent* task
    // dominates every chain, the collapsed makespan still meets the bound
    // and the corruption is undetectable by construction -- skip it then.)
    {
      double longest = 0.0;
      for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
        if (!g.task(id).is_marker())
          longest = std::max(longest, duration(base, id));
      }
      double best_chain = 0.0;
      for (core::TaskId u = 0; u < g.num_tasks(); ++u) {
        if (g.task(u).is_marker() || duration(base, u) <= 0.0) continue;
        for (const core::TaskId v : g.successors(u)) {
          if (!g.task(v).is_marker() && duration(base, v) > 0.0) {
            best_chain =
                std::max(best_chain, duration(base, u) + duration(base, v));
          }
        }
      }
      // Clear the certifier's slack (rel_tol ~1e-9) by a wide margin so the
      // violation is unambiguous.
      if (best_chain > longest * (1.0 + 1e-6) + 1e-9) {
        sched::Schedule m = base;
        double longest = 0.0;
        for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
          if (g.task(id).is_marker()) continue;
          sched::TaskSlot& s = slot_of(m, id);
          const double d = s.finish - s.start;
          s.start = 0.0;
          s.finish = d;
          longest = std::max(longest, d);
        }
        m.gantt.makespan = longest;
        expect_code("bound-violation", m, analysis::kCertLowerBound);
      }
    }
  }

  void expect_code(const std::string& name, const sched::Schedule& mutated,
                   std::string_view code) {
    ++report_.certifier_mutations;
    const analysis::Certificate cert =
        analysis::certify(instance_.graph, mutated, certifier_options());
    if (!cert.report.has(code)) {
      fail("certifier-mutation[" + name + "]",
           "schedule corruption was not flagged as " + std::string(code) +
               "; certifier said:\n" + analysis::render_text(cert.report));
    }
  }

  /// Portfolio oracle: the auto-scheduler's winner must pass the uniform
  /// checks and must never score worse (symbolic makespan metric) than the
  /// best individual strategy of the sweep.
  void check_portfolio(
      const std::vector<std::pair<std::string, sched::Schedule>>& candidates) {
    sched::PortfolioReport preport;
    sched::Schedule winner;
    try {
      winner = sched::PortfolioScheduler(cost_).run(
          instance_.graph, instance_.total_cores, preport);
    } catch (const std::exception& e) {
      fail("portfolio", std::string("portfolio run failed: ") + e.what());
      return;
    }
    check_schedule("portfolio[" + preport.winner + "]", winner,
                   /*simulate=*/false);
    double best = std::numeric_limits<double>::infinity();
    std::string best_name;
    for (const auto& [name, schedule] : candidates) {
      if (schedule.makespan() < best) {
        best = schedule.makespan();
        best_name = name;
      }
    }
    if (winner.makespan() > best * (1.0 + options_.rel_tol) + 1e-12) {
      fail("portfolio-dominance",
           "portfolio winner '" + preport.winner + "' makespan " +
               std::to_string(winner.makespan()) +
               " exceeds best individual strategy '" + best_name + "' at " +
               std::to_string(best));
    }
  }

  /// Oracle 4: analytic evaluation vs discrete-event replay.
  void check_simulation(const std::string& label,
                        const sched::LayeredSchedule& schedule) {
    const std::vector<cost::LayerLayout> layouts =
        map::map_schedule(schedule, machine_, map::Strategy::Consecutive);
    const sched::TimelineEvaluator eval(cost_);
    const double analytic = eval.evaluate(schedule, layouts).makespan;
    const double simulated = eval.simulate(schedule, layouts).makespan;
    if (!std::isfinite(analytic) || !std::isfinite(simulated)) {
      fail(label, "non-finite makespan (analytic=" + std::to_string(analytic) +
                      ", simulated=" + std::to_string(simulated) + ")");
      return;
    }
    // No simulation can beat perfect speedup of the total work.
    const double lower =
        instance_.graph.total_work_flop() /
        (machine_.spec().sustained_flops() * schedule.total_cores);
    if (simulated * (1.0 + 1e-9) < lower) {
      fail(label, "simulated makespan " + std::to_string(simulated) +
                      " beats the perfect-speedup bound " +
                      std::to_string(lower));
    }
    if (simulated > analytic * options_.sim_slack + 1e-6) {
      fail(label, "simulated makespan " + std::to_string(simulated) +
                      " exceeds " + std::to_string(options_.sim_slack) +
                      "x the analytic makespan " + std::to_string(analytic));
    }
    if (options_.check_sim_determinism) {
      const double replay = eval.simulate(schedule, layouts).makespan;
      if (replay != simulated) {
        fail(label, "event-engine replay is not deterministic: " +
                        std::to_string(simulated) + " vs " +
                        std::to_string(replay));
      }
    }
  }

  /// Oracles 1-2 for a Gantt schedule (CPA/MCPA/CPR output).
  void check_gantt(const std::string& label,
                   const sched::GanttSchedule& schedule) {
    ++report_.schedules_checked;
    const sched::ValidationReport vr =
        sched::validate(schedule, instance_.graph);
    if (!vr.ok()) {
      fail(label, "gantt validation: " + vr.errors.front());
      return;
    }
    double max_finish = 0.0;
    for (core::TaskId id = 0; id < instance_.graph.num_tasks(); ++id) {
      if (instance_.graph.task(id).is_marker()) continue;
      max_finish = std::max(
          max_finish, schedule.slots[static_cast<std::size_t>(id)].finish);
    }
    if (relative_gap(schedule.makespan, max_finish) > options_.rel_tol) {
      fail(label, "declared makespan " + std::to_string(schedule.makespan) +
                      " disagrees with the last slot finish " +
                      std::to_string(max_finish));
    }
    const double redist = sched::gantt_redistribution_time(instance_.graph,
                                                           schedule, cost_);
    if (!std::isfinite(redist) || redist < 0.0) {
      fail(label,
           "redistribution penalty is " + std::to_string(redist));
    }
  }

  // ---- oracle 5: executor schedule independence ----

  /// Deterministic per-task seed value for the executed computation.
  static double task_base(core::TaskId id) {
    return 1.0 + static_cast<double>(id % 97) +
           1.0e-3 * static_cast<double>(id);
  }

  /// Sequential reference: values in topological order, markers skipped.
  std::vector<double> reference_values() const {
    const core::TaskGraph& g = instance_.graph;
    std::vector<double> out(static_cast<std::size_t>(g.num_tasks()), 0.0);
    for (core::TaskId id : g.topological_order()) {
      if (g.task(id).is_marker()) continue;
      double v = task_base(id);
      for (core::TaskId p : g.predecessors(id)) {
        if (g.task(p).is_marker()) continue;
        v += 0.5 * out[static_cast<std::size_t>(p)];
      }
      out[static_cast<std::size_t>(id)] = v;
    }
    return out;
  }

  /// Runs `schedule` through `exec` and compares against the reference.
  void run_executor(const std::string& label, rt::Executor& exec,
                    const sched::LayeredSchedule& schedule,
                    const std::vector<double>& reference) {
    const core::TaskGraph& g = instance_.graph;
    const std::size_t n = static_cast<std::size_t>(g.num_tasks());
    std::vector<double> out(n, 0.0);
    std::vector<std::atomic<int>> rank0_runs(n);
    std::atomic<int> collective_failures{0};

    std::vector<rt::TaskFn> fns(n);
    for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
      if (g.task(id).is_marker()) continue;
      fns[static_cast<std::size_t>(id)] = [&, id](rt::ExecContext& ctx) {
        if (ctx.group_rank == 0) {
          double v = task_base(id);
          for (core::TaskId p : g.predecessors(id)) {
            if (g.task(p).is_marker()) continue;
            v += 0.5 * out[static_cast<std::size_t>(p)];
          }
          out[static_cast<std::size_t>(id)] = v;
          rank0_runs[static_cast<std::size_t>(id)]++;
        }
        // Rank 0's write must be visible to the whole group afterwards.
        ctx.comm->barrier(ctx.group_rank);
        const double value = out[static_cast<std::size_t>(id)];
        if (ctx.comm->allreduce_max(ctx.group_rank, value) != value) {
          collective_failures++;
        }
        if (ctx.comm->allreduce_sum(ctx.group_rank, 1.0) !=
            static_cast<double>(ctx.group_size)) {
          collective_failures++;
        }
      };
    }

    exec.run(schedule, fns);
    ++report_.executor_runs;

    for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
      if (g.task(id).is_marker()) continue;
      const int runs = rank0_runs[static_cast<std::size_t>(id)].load();
      if (runs != 1) {
        fail(label, "task " + g.task(id).name() + " executed " +
                        std::to_string(runs) + " times");
        return;
      }
    }
    if (collective_failures.load() != 0) {
      fail(label, std::to_string(collective_failures.load()) +
                      " group-collective cross-checks failed");
    }
    // Bit-identical: the computation is performed by one rank in one fixed
    // order regardless of the schedule, so even floating point must agree.
    if (std::memcmp(out.data(), reference.data(), n * sizeof(double)) != 0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (out[i] != reference[i]) {
          fail(label, "task " + g.task(static_cast<core::TaskId>(i)).name() +
                          " computed " + std::to_string(out[i]) +
                          ", reference " + std::to_string(reference[i]));
          return;
        }
      }
    }
  }

  void check_executor() {
    const int cores =
        std::min(options_.executor_max_cores, instance_.total_cores);
    if (cores < 1) return;

    // Structurally distinct schedules of the same program.
    std::vector<std::pair<std::string, sched::LayeredSchedule>> schedules;
    schedules.emplace_back(
        "exec[layer]",
        sched::LayerScheduler(cost_).schedule(instance_.graph, cores));
    {
      sched::LayerSchedulerOptions opts;
      opts.fixed_groups = 2;
      schedules.emplace_back("exec[layer,g=2]",
                             sched::LayerScheduler(cost_, opts).schedule(
                                 instance_.graph, cores));
    }
    {
      sched::LayerSchedulerOptions opts;
      opts.contract_chains = false;
      opts.adjust_group_sizes = false;
      schedules.emplace_back("exec[layer,no-contract]",
                             sched::LayerScheduler(cost_, opts).schedule(
                                 instance_.graph, cores));
    }
    schedules.emplace_back("exec[data-parallel]",
                           sched::DataParallelScheduler(cost_).schedule(
                               instance_.graph, cores));

    for (const auto& [label, schedule] : schedules) {
      const sched::ValidationReport vr =
          sched::validate(schedule, instance_.graph);
      if (!vr.ok()) {
        fail(label, "pre-execution validation: " + vr.errors.front());
        return;
      }
    }

    const std::vector<double> reference = reference_values();
    rt::Executor exec(cores, rt::FaultOptions{});
    for (const auto& [label, schedule] : schedules) {
      run_executor(label, exec, schedule, reference);
    }
    if (options_.executor_faults.any()) {
      rt::Executor faulty(cores, options_.executor_faults);
      run_executor("exec[layer,faults]", faulty, schedules.front().second,
                   reference);
    }
  }

  // ---- oracle 6: static-analysis differential ----

  /// Clean-graph half: the generators build consistent graphs by
  /// construction, so the analyzer must report zero errors (warnings are
  /// legitimate, e.g. IRK's deliberately unconsumed stage outputs).  The
  /// schedule lints run for crash coverage; they are warning tier.
  void check_lint(
      const sched::LayeredSchedule& layered,
      const std::vector<std::pair<std::string, sched::Schedule>>& candidates) {
    const analysis::Analyzer analyzer;
    ++report_.lints_checked;
    const analysis::Report rep = analyzer.analyze(
        instance_.graph, machine_, instance_.total_cores);
    if (!rep.clean()) {
      fail("lint-clean", "generated graph has lint errors:\n" +
                             analysis::render_text(rep));
    }
    (void)analyzer.lint(layered, cost_);
    // Crash coverage of the canonical-schedule lint path for every strategy
    // of the sweep (warning tier -- only errors would be a finding).
    for (const auto& [name, schedule] : candidates) {
      if (!analyzer.lint(schedule, cost_).clean()) {
        fail("lint[" + name + "]",
             "schedule lint produced error-tier diagnostics");
      }
    }
    mutate_size(analyzer);
    mutate_dependency(analyzer);
  }

  /// Mutation half A: corrupting a matched parameter's byte size must raise
  /// PTA010.  Prefers corrupting a real matched pair; graphs without
  /// parameters (synthetic families, PAB/PABM, NPB zones) get a mismatched
  /// pair injected across an existing edge, or across a new edge between two
  /// independent tasks when no basic edge exists at all (NPB's zones only
  /// meet at the sync marker).
  void mutate_size(const analysis::Analyzer& analyzer) {
    core::TaskGraph mutated = instance_.graph;
    bool corrupted = false;
    for (core::TaskId u = 0; u < mutated.num_tasks() && !corrupted; ++u) {
      for (const core::TaskId v : mutated.successors(u)) {
        for (core::Param& in : mutated.task(v).mutable_params()) {
          if (!in.is_input || in.bytes == 0) continue;
          bool matched = false;
          for (const core::Param& p : mutated.task(u).params()) {
            if (p.is_output && p.name == in.name && p.bytes == in.bytes) {
              matched = true;
            }
          }
          if (!matched) continue;
          // Stay a multiple of the element size so that exactly PTA010
          // (and not PTA011) is the expected finding.
          in.bytes += sizeof(double);
          corrupted = true;
          break;
        }
        if (corrupted) break;
      }
    }
    if (!corrupted) {
      auto [u, v] = first_basic_edge(mutated);
      if (u == core::kInvalidTask) {
        std::tie(u, v) = independent_basic_pair(mutated);
        if (u == core::kInvalidTask) return;  // degenerate single-task graph
        mutated.add_edge(u, v);
      }
      core::Param out_p;
      out_p.name = "fz_payload";
      out_p.bytes = 64;
      out_p.is_output = true;
      core::Param in_p = out_p;
      in_p.is_output = false;
      in_p.is_input = true;
      in_p.bytes = 128;
      mutated.task(u).add_param(out_p);
      mutated.task(v).add_param(in_p);
    }
    ++report_.lint_mutations;
    if (!analyzer.analyze(mutated).has(analysis::kSizeMismatch)) {
      fail("lint-mutation[size]",
           "byte-size corruption was not flagged as PTA010");
    }
  }

  /// Mutation half B: a missing ordering edge between conflicting tasks must
  /// raise PTA001/PTA002.  Prefers removing a real edge (and injecting the
  /// conflicting variable pair across the now-unordered endpoints); when no
  /// edge removal disconnects its endpoints, the conflict is injected onto
  /// an already-independent pair, modelling the omitted dependency directly.
  void mutate_dependency(const analysis::Analyzer& analyzer) {
    const core::TaskGraph& g = instance_.graph;
    core::TaskGraph mutated;
    core::TaskId u = core::kInvalidTask;
    core::TaskId v = core::kInvalidTask;
    for (core::TaskId a = 0; a < g.num_tasks() && u == core::kInvalidTask;
         ++a) {
      if (g.task(a).is_marker()) continue;
      for (const core::TaskId b : g.successors(a)) {
        if (g.task(b).is_marker()) continue;
        core::TaskGraph candidate = copy_without_edge(g, a, b);
        if (candidate.independent(a, b)) {
          mutated = std::move(candidate);
          u = a;
          v = b;
          break;
        }
      }
    }
    if (u == core::kInvalidTask) {
      std::tie(u, v) = independent_basic_pair(g);
      if (u == core::kInvalidTask) return;
      mutated = g;
    }
    core::Param out_p;
    out_p.name = "fz_race";
    out_p.bytes = 64;
    out_p.is_output = true;
    core::Param in_p = out_p;
    in_p.is_output = false;
    in_p.is_input = true;
    mutated.task(u).add_param(out_p);
    mutated.task(v).add_param(in_p);
    ++report_.lint_mutations;
    const analysis::Report rep = analyzer.analyze(mutated);
    if (!rep.has(analysis::kRaceRaw) && !rep.has(analysis::kRaceWaw)) {
      fail("lint-mutation[race]",
           "removed/missing dependency was not flagged as PTA001/PTA002");
    }
  }

  static double relative_gap(double a, double b) {
    const double scale = std::max({std::fabs(a), std::fabs(b), 1e-30});
    return std::fabs(a - b) / scale;
  }

  const Instance& instance_;
  const OracleOptions& options_;
  OracleReport& report_;
  arch::Machine machine_;
  cost::CostModel cost_;
};

}  // namespace

std::string OracleReport::summary() const {
  std::ostringstream os;
  for (const std::string& e : errors) os << e << "\n";
  return os.str();
}

OracleReport check_instance(const Instance& instance,
                            const OracleOptions& options) {
  OracleReport report;
  Checker(instance, options, report).run();
  return report;
}

}  // namespace ptask::fuzz
