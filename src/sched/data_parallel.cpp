#include "ptask/sched/data_parallel.hpp"

#include <stdexcept>

namespace ptask::sched {

LayeredSchedule DataParallelScheduler::schedule(const core::TaskGraph& graph,
                                                int total_cores) const {
  if (total_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  LayeredSchedule result;
  result.total_cores = total_cores;
  result.contraction = core::contract_linear_chains(graph);

  const core::TaskGraph& contracted = result.contraction.contracted;
  for (const std::vector<core::TaskId>& layer_tasks :
       core::greedy_layers(contracted)) {
    ScheduledLayer layer;
    layer.tasks = layer_tasks;
    layer.group_sizes = {total_cores};
    layer.task_group.assign(layer_tasks.size(), 0);
    for (core::TaskId id : layer_tasks) {
      layer.predicted_time += cost_->symbolic_task_time(
          contracted.task(id), total_cores, 1, total_cores);
    }
    result.predicted_makespan += layer.predicted_time;
    result.layers.push_back(std::move(layer));
  }
  return result;
}

}  // namespace ptask::sched
