#include "ptask/sched/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ptask/cost/cached_model.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/sched/timeline.hpp"

namespace ptask::sched {

const char* to_string(PortfolioMetric metric) {
  switch (metric) {
    case PortfolioMetric::SymbolicMakespan: return "symbolic";
    case PortfolioMetric::CommAware: return "comm-aware";
    case PortfolioMetric::Simulated: return "simulated";
  }
  return "?";
}

namespace {

struct Candidate {
  StrategyScore score;
  Schedule schedule;
};

/// Runs one strategy and scores its schedule; failures are captured into
/// the scoreboard row (score +inf) instead of propagating.
Candidate run_strategy(const std::string& name, const core::TaskGraph& graph,
                       int total_cores, const cost::CostModel& cost,
                       PortfolioMetric metric) {
  Candidate candidate;
  candidate.score.strategy = name;
  const auto start = std::chrono::steady_clock::now();
  try {
    const std::unique_ptr<Scheduler> scheduler =
        SchedulerRegistry::instance().make(name, cost);
    candidate.schedule = scheduler->run(graph, total_cores);
    candidate.score.makespan = candidate.schedule.makespan();
    candidate.score.redistribution = gantt_redistribution_time(
        candidate.schedule.scheduled_graph(), candidate.schedule.gantt, cost);
    switch (metric) {
      case PortfolioMetric::SymbolicMakespan:
        candidate.score.score = candidate.score.makespan;
        break;
      case PortfolioMetric::CommAware:
        candidate.score.score =
            candidate.score.makespan + candidate.score.redistribution;
        break;
      case PortfolioMetric::Simulated:
        if (candidate.schedule.has_layers()) {
          const std::vector<cost::LayerLayout> layouts = map::map_schedule(
              candidate.schedule.layered, cost.machine(),
              map::Strategy::Consecutive);
          candidate.score.score = TimelineEvaluator(cost)
                                      .simulate(candidate.schedule.layered,
                                                layouts)
                                      .makespan;
        } else {
          // Allocation-only candidates have no group structure to map;
          // fall back to the analytic comm-aware score.
          candidate.score.score =
              candidate.score.makespan + candidate.score.redistribution;
        }
        break;
    }
  } catch (const std::exception& e) {
    candidate.score.failed = true;
    candidate.score.error = e.what();
    candidate.score.score = std::numeric_limits<double>::infinity();
  }
  candidate.score.millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return candidate;
}

}  // namespace

Schedule PortfolioScheduler::run(const core::TaskGraph& graph,
                                 int total_cores) const {
  PortfolioReport report;
  return run(graph, total_cores, report);
}

Schedule PortfolioScheduler::run(const core::TaskGraph& graph,
                                 int total_cores,
                                 PortfolioReport& report) const {
  if (total_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  static obs::Counter& invocations =
      obs::metrics().counter("sched.portfolio.invocations");
  invocations.add();
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.portfolio");

  std::vector<std::string> strategies = options_.strategies;
  if (strategies.empty()) {
    for (std::string& name : SchedulerRegistry::instance().names()) {
      // "incremental" is the layer pipeline under another name -- sweeping
      // it would double-count the layer candidate (and tie-break scoreboard
      // winners by name), so the default sweep covers distinct algorithms.
      if (name != "portfolio" && name != "incremental") {
        strategies.push_back(std::move(name));
      }
    }
  }
  if (strategies.empty()) {
    throw std::runtime_error("portfolio has no strategies to run");
  }

  // One memo shared by every strategy (and, through make_context reuse, by
  // every layer-pipeline invocation): the candidates largely price the same
  // (task, group size) pairs, so cross-strategy reuse is where the cache
  // pays off.  CachedCostModel is internally synchronized, so the parallel
  // path shares it too.
  std::optional<cost::CachedCostModel> shared_cache;
  const cost::CostModel* pricing = cost_;
  if (options_.shared_cost_cache &&
      dynamic_cast<const cost::CachedCostModel*>(cost_) == nullptr) {
    shared_cache.emplace(*cost_);
    pricing = &*shared_cache;
  }

  std::vector<Candidate> candidates(strategies.size());
  if (options_.parallel && strategies.size() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(strategies.size());
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      workers.emplace_back([&, i] {
        candidates[i] = run_strategy(strategies[i], graph, total_cores,
                                     *pricing, options_.metric);
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      candidates[i] = run_strategy(strategies[i], graph, total_cores,
                                   *pricing, options_.metric);
    }
  }

  // Pick the best score; ties break towards the earlier strategy.
  std::size_t best = candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].score.failed) continue;
    if (best == candidates.size() ||
        candidates[i].score.score < candidates[best].score.score) {
      best = i;
    }
  }
  if (best == candidates.size()) {
    std::ostringstream message;
    message << "all portfolio strategies failed:";
    for (const Candidate& c : candidates) {
      message << ' ' << c.score.strategy << " (" << c.score.error << ")";
    }
    throw std::runtime_error(message.str());
  }

  report.scores.clear();
  report.scores.reserve(candidates.size());
  for (Candidate& c : candidates) report.scores.push_back(c.score);
  report.winner = candidates[best].score.strategy;

  obs::metrics().counter("sched.portfolio.win." + report.winner).add();

  Schedule winner = std::move(candidates[best].schedule);
  {
    std::ostringstream note;
    note << "portfolio[" << to_string(options_.metric)
         << "] winner=" << report.winner;
    winner.notes.push_back(note.str());
  }
  for (const StrategyScore& s : report.scores) {
    std::ostringstream note;
    note << "portfolio: " << s.strategy;
    if (s.failed) {
      note << " FAILED (" << s.error << ")";
    } else {
      note << " score=" << s.score << " makespan=" << s.makespan
           << " redist=" << s.redistribution;
    }
    note << " [" << s.millis << " ms]";
    if (s.strategy == report.winner) note << " *";
    winner.notes.push_back(note.str());
  }
  return winner;
}

}  // namespace ptask::sched
