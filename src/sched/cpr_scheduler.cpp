#include "ptask/sched/cpr_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "ptask/core/graph_algorithms.hpp"

namespace ptask::sched {

MoldableResult CprScheduler::schedule(const core::TaskGraph& graph,
                                 int total_cores) const {
  const int n = graph.num_tasks();
  const int P = total_cores;
  const TaskTimeTable table(graph, *cost_, P, mode_);

  MoldableResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 1);
  result.schedule = list_schedule(graph, result.allocation, table);

  auto total_task_time = [&] {
    double total = 0.0;
    for (core::TaskId id = 0; id < n; ++id) {
      total += table.time(id, result.allocation[static_cast<std::size_t>(id)]);
    }
    return total;
  };

  std::vector<double> task_time(static_cast<std::size_t>(n));
  constexpr double kEps = 1e-15;
  bool improved = true;
  while (improved) {
    improved = false;
    for (core::TaskId id = 0; id < n; ++id) {
      task_time[static_cast<std::size_t>(id)] =
          table.time(id, result.allocation[static_cast<std::size_t>(id)]);
    }
    const core::CriticalPathInfo cp = core::critical_path(graph, task_time);
    const double sum_before = total_task_time();

    // Try the critical-path tasks in decreasing bottom-level order.
    std::vector<core::TaskId> candidates = cp.path;
    std::sort(candidates.begin(), candidates.end(),
              [&](core::TaskId a, core::TaskId b) {
                return cp.bottom_level[static_cast<std::size_t>(a)] >
                       cp.bottom_level[static_cast<std::size_t>(b)];
              });
    for (core::TaskId id : candidates) {
      const int p = result.allocation[static_cast<std::size_t>(id)];
      if (p >= P || p >= graph.task(id).max_cores()) continue;
      result.allocation[static_cast<std::size_t>(id)] = p + 1;
      // Cutoff prunes doomed trials: once the partial makespan exceeds
      // current + kEps neither the strict-improvement nor the tie branch
      // below can accept, so list_schedule stops placing tasks early.  The
      // decision is exactly the one the full schedule would produce (the
      // makespan only grows as tasks are placed).
      GanttSchedule trial = list_schedule(
          graph, result.allocation, table, result.schedule.makespan + kEps);
      // Accept strict makespan improvements; on an exact tie, accept if the
      // sum of the task times shrank (this is what lets CPR make progress
      // through the plateau of a layer of equal independent tasks, where
      // widening any single task cannot move the makespan until all of them
      // widened).
      bool accept = trial.makespan < result.schedule.makespan - kEps;
      if (!accept && trial.makespan <= result.schedule.makespan + kEps) {
        accept = total_task_time() < sum_before - kEps;
      }
      if (accept) {
        result.schedule = std::move(trial);
        improved = true;
        break;  // recompute the critical path with the new allocation
      }
      result.allocation[static_cast<std::size_t>(id)] = p;  // revert
    }
  }
  return result;
}

}  // namespace ptask::sched
