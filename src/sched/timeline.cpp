#include "ptask/sched/timeline.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

namespace ptask::sched {

namespace {

struct TaskLocation {
  std::size_t layer = 0;
  int group = 0;
};

std::vector<TaskLocation> locate_tasks(const LayeredSchedule& schedule) {
  const int n = schedule.contraction.contracted.num_tasks();
  std::vector<TaskLocation> loc(static_cast<std::size_t>(n),
                                TaskLocation{static_cast<std::size_t>(-1), -1});
  for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
    const ScheduledLayer& layer = schedule.layers[li];
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      loc[static_cast<std::size_t>(layer.tasks[i])] =
          TaskLocation{li, layer.task_group[i]};
    }
  }
  return loc;
}

/// Lowered form of one re-distribution: a message schedule over an explicit
/// placement (flat core ids).  Replicated -> replicated moves become a
/// binomial broadcast from the producer's first core to the destination
/// cores that do not already hold the data; everything else becomes the
/// pairwise transfer rounds of the element-wise plan.
struct RedistLowering {
  std::vector<int> placement;
  net::MessageSchedule schedule;
  bool empty() const { return schedule.empty(); }
};

RedistLowering lower_redistribution(const RedistributionEdge& edge,
                                    const cost::GroupLayout& src,
                                    const cost::GroupLayout& dst) {
  RedistLowering lowering;
  const std::size_t n_elems = edge.bytes / sizeof(double);
  if (n_elems == 0) return lowering;

  if (edge.src_dist.is_replicated() && edge.dst_dist.is_replicated()) {
    lowering.placement.push_back(src.cores.front());
    for (int core : dst.cores) {
      if (std::find(src.cores.begin(), src.cores.end(), core) ==
          src.cores.end()) {
        lowering.placement.push_back(core);
      }
    }
    if (lowering.placement.size() > 1) {
      lowering.schedule = net::binomial_bcast(
          static_cast<int>(lowering.placement.size()), 0, edge.bytes);
    }
    return lowering;
  }

  const bool same = src.cores == dst.cores;
  const dist::RedistributionPlan plan = dist::RedistributionPlan::compute(
      n_elems, sizeof(double), edge.src_dist,
      static_cast<std::size_t>(src.size()), edge.dst_dist,
      static_cast<std::size_t>(dst.size()), same);
  if (plan.empty()) return lowering;

  lowering.placement.assign(src.cores.begin(), src.cores.end());
  std::vector<int> dst_rank(dst.cores.size());
  for (std::size_t d = 0; d < dst.cores.size(); ++d) {
    const auto it = std::find(lowering.placement.begin(),
                              lowering.placement.end(), dst.cores[d]);
    if (it != lowering.placement.end()) {
      dst_rank[d] = static_cast<int>(it - lowering.placement.begin());
    } else {
      dst_rank[d] = static_cast<int>(lowering.placement.size());
      lowering.placement.push_back(dst.cores[d]);
    }
  }
  std::vector<net::Message> messages;
  for (const dist::Transfer& t : plan.transfers()) {
    const int s = static_cast<int>(t.src_rank);
    const int d = dst_rank.at(t.dst_rank);
    if (s == d) continue;
    messages.push_back(net::Message{s, d, t.bytes});
  }
  lowering.schedule = net::redistribution_rounds(messages);
  return lowering;
}

}  // namespace

std::vector<RedistributionEdge> redistribution_edges(
    const LayeredSchedule& schedule) {
  const core::TaskGraph& graph = schedule.contraction.contracted;
  const std::vector<TaskLocation> loc = locate_tasks(schedule);

  std::vector<RedistributionEdge> edges;
  for (core::TaskId producer = 0; producer < graph.num_tasks(); ++producer) {
    if (graph.task(producer).is_marker()) continue;
    for (core::TaskId consumer : graph.successors(producer)) {
      if (graph.task(consumer).is_marker()) continue;
      const TaskLocation& pl = loc[static_cast<std::size_t>(producer)];
      const TaskLocation& cl = loc[static_cast<std::size_t>(consumer)];
      if (pl.group < 0 || cl.group < 0) continue;
      // Match output parameters of the producer with input parameters of the
      // consumer by name.  The *last* matching output wins (latest write
      // inside a contracted chain).
      for (const core::Param& in : graph.task(consumer).params()) {
        if (!in.is_input) continue;
        const core::Param* out = nullptr;
        for (const core::Param& p : graph.task(producer).params()) {
          if (p.is_output && p.name == in.name) out = &p;
        }
        if (out == nullptr) continue;
        RedistributionEdge edge;
        edge.producer = producer;
        edge.consumer = consumer;
        edge.producer_layer = pl.layer;
        edge.consumer_layer = cl.layer;
        edge.producer_group = pl.group;
        edge.consumer_group = cl.group;
        edge.param_name = in.name;
        edge.bytes = std::min(out->bytes, in.bytes);
        edge.src_dist = out->distribution;
        edge.dst_dist = in.distribution;
        edges.push_back(std::move(edge));
      }
    }
  }
  return edges;
}

double gantt_redistribution_time(const core::TaskGraph& graph,
                                 const GanttSchedule& schedule,
                                 const cost::CostModel& cost) {
  const arch::LinkParams& slow =
      cost.machine().link(arch::CommLevel::InterNode);
  double total = 0.0;
  for (core::TaskId producer = 0; producer < graph.num_tasks(); ++producer) {
    if (graph.task(producer).is_marker()) continue;
    const TaskSlot& src_slot =
        schedule.slots[static_cast<std::size_t>(producer)];
    if (src_slot.cores.empty()) continue;
    for (core::TaskId consumer : graph.successors(producer)) {
      if (graph.task(consumer).is_marker()) continue;
      const TaskSlot& dst_slot =
          schedule.slots[static_cast<std::size_t>(consumer)];
      if (dst_slot.cores.empty() || src_slot.cores == dst_slot.cores) continue;
      for (const core::Param& in : graph.task(consumer).params()) {
        if (!in.is_input) continue;
        const core::Param* out = nullptr;
        for (const core::Param& p : graph.task(producer).params()) {
          if (p.is_output && p.name == in.name) out = &p;
        }
        if (out == nullptr) continue;
        RedistributionEdge edge;
        edge.bytes = std::min(out->bytes, in.bytes);
        edge.src_dist = out->distribution;
        edge.dst_dist = in.distribution;
        const cost::GroupLayout src{src_slot.cores};
        const cost::GroupLayout dst{dst_slot.cores};
        const RedistLowering lowering = lower_redistribution(edge, src, dst);
        for (const net::Round& round : lowering.schedule) {
          std::size_t max_bytes = 0;
          for (const net::Message& m : round.messages) {
            max_bytes = std::max(max_bytes, m.bytes);
          }
          total += slow.transfer_time(max_bytes);
        }
      }
    }
  }
  return total;
}

TimelineResult TimelineEvaluator::evaluate(
    const LayeredSchedule& schedule,
    std::span<const cost::LayerLayout> layouts,
    const TimelineOptions& options) const {
  if (layouts.size() != schedule.layers.size()) {
    throw std::invalid_argument("one layout per layer required");
  }
  const core::TaskGraph& graph = schedule.contraction.contracted;

  std::unique_ptr<cost::HybridCostModel> hybrid;
  if (options.threads_per_rank > 1) {
    cost::HybridConfig config;
    config.threads_per_rank = options.threads_per_rank;
    hybrid = std::make_unique<cost::HybridCostModel>(cost_->machine(), config);
  }

  TimelineResult result;
  result.layer_times.reserve(schedule.layers.size());
  for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
    const ScheduledLayer& layer = schedule.layers[li];
    const cost::LayerLayout& layout = layouts[li];
    std::vector<double> group_time(layout.groups.size(), 0.0);
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const std::size_t g = static_cast<std::size_t>(layer.task_group[i]);
      const core::MTask& task = graph.task(layer.tasks[i]);
      group_time[g] += hybrid != nullptr
                           ? hybrid->mapped_task_time(task, layout, g)
                           : cost_->mapped_task_time(task, layout, g);
    }
    const double layer_time =
        group_time.empty()
            ? 0.0
            : *std::max_element(group_time.begin(), group_time.end());
    result.layer_times.push_back(layer_time);
    result.makespan += layer_time;
  }

  if (options.include_redistribution) {
    const net::LinkModel link(cost_->machine());
    for (const RedistributionEdge& edge : redistribution_edges(schedule)) {
      const cost::GroupLayout& src =
          layouts[edge.producer_layer]
              .groups[static_cast<std::size_t>(edge.producer_group)];
      const cost::GroupLayout& dst =
          layouts[edge.consumer_layer]
              .groups[static_cast<std::size_t>(edge.consumer_group)];
      const RedistLowering lowering = lower_redistribution(edge, src, dst);
      if (lowering.empty()) continue;
      result.redistribution_time +=
          link.schedule_time(lowering.schedule, lowering.placement);
    }
    result.makespan += result.redistribution_time;
  }
  return result;
}

sim::SimResult TimelineEvaluator::simulate(
    const LayeredSchedule& schedule,
    std::span<const cost::LayerLayout> layouts,
    const TimelineOptions& options) const {
  if (layouts.size() != schedule.layers.size()) {
    throw std::invalid_argument("one layout per layer required");
  }
  const core::TaskGraph& graph = schedule.contraction.contracted;
  const arch::Machine& machine = cost_->machine();

  // Rank space: the union of cores used by any layer, in first-seen order.
  std::vector<int> rank_cores;
  std::map<int, int> rank_of;
  for (const cost::LayerLayout& layout : layouts) {
    for (const cost::GroupLayout& g : layout.groups) {
      for (int core : g.cores) {
        if (rank_of.emplace(core, static_cast<int>(rank_cores.size())).second) {
          rank_cores.push_back(core);
        }
      }
    }
  }
  const int nranks = static_cast<int>(rank_cores.size());
  sim::ProgramSet programs(nranks);
  std::vector<int> all_ranks(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) all_ranks[static_cast<std::size_t>(r)] = r;

  const std::vector<RedistributionEdge> redist =
      options.include_redistribution ? redistribution_edges(schedule)
                                     : std::vector<RedistributionEdge>{};

  // Hybrid execution: collectives run over the rank sub-layout (every t-th
  // core), every collective pays two team synchronizations, and compute is
  // derated by the team efficiency -- mirroring cost::HybridCostModel in
  // the simulated path.
  const int threads = std::max(1, options.threads_per_rank);
  std::unique_ptr<cost::HybridCostModel> hybrid;
  if (threads > 1) {
    cost::HybridConfig config;
    config.threads_per_rank = threads;
    hybrid = std::make_unique<cost::HybridCostModel>(cost_->machine(), config);
  }

  auto group_ranks = [&](const cost::GroupLayout& g) {
    std::vector<int> ranks;
    ranks.reserve(g.cores.size());
    for (int core : g.cores) ranks.push_back(rank_of.at(core));
    return ranks;
  };
  /// Communicator ranks of a group: all cores (pure MPI) or one rank per
  /// team anchor core (hybrid).
  auto comm_ranks = [&](const cost::GroupLayout& g) {
    if (hybrid == nullptr) return group_ranks(g);
    std::vector<int> ranks;
    for (std::size_t i = 0; i < g.cores.size();
         i += static_cast<std::size_t>(threads)) {
      ranks.push_back(rank_of.at(g.cores[i]));
    }
    return ranks;
  };
  auto team_sync_seconds = [&](const cost::GroupLayout& g) {
    if (hybrid == nullptr || g.size() < threads) return 0.0;
    return hybrid->team_sync_time(threads, hybrid->team_span(g, 0));
  };

  const net::MessageSchedule layer_barrier = net::barrier(nranks);

  for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
    const ScheduledLayer& layer = schedule.layers[li];
    const cost::LayerLayout& layout = layouts[li];

    // Re-distributions feeding this layer.
    for (const RedistributionEdge& edge : redist) {
      if (edge.consumer_layer != li) continue;
      const cost::GroupLayout& src =
          layouts[edge.producer_layer]
              .groups[static_cast<std::size_t>(edge.producer_group)];
      const cost::GroupLayout& dst =
          layout.groups[static_cast<std::size_t>(edge.consumer_group)];
      const RedistLowering lowering = lower_redistribution(edge, src, dst);
      if (lowering.empty()) continue;
      std::vector<int> comm_ranks;
      comm_ranks.reserve(lowering.placement.size());
      for (int core : lowering.placement) comm_ranks.push_back(rank_of.at(core));
      programs.add_collective(lowering.schedule, comm_ranks);
    }

    // Tasks, group by group (tasks of one group run back-to-back in
    // assignment order on the group's ranks).
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const std::size_t g = static_cast<std::size_t>(layer.task_group[i]);
      const core::MTask& task = graph.task(layer.tasks[i]);
      const cost::GroupLayout& group = layout.groups[g];
      const std::vector<int> ranks = group_ranks(group);
      const std::vector<int> collective_ranks = comm_ranks(group);
      const double sync = team_sync_seconds(group);

      programs.add_compute(ranks,
                           cost_->symbolic_compute_time(task, group.size()) +
                               sync);
      for (const core::CollectiveOp& op : task.comms()) {
        if (sync > 0.0) {
          programs.add_compute(ranks,
                               2.0 * sync * static_cast<double>(op.repeat));
        }
        const int explicit_reps =
            std::min(op.repeat, options.max_explicit_repeats);
        for (int rep = 0; rep < explicit_reps; ++rep) {
          switch (op.scope) {
            case core::CommScope::Global: {
              std::vector<int> global_ranks;
              for (const cost::GroupLayout& gg : layout.groups) {
                for (int rank : comm_ranks(gg)) global_ranks.push_back(rank);
              }
              const net::MessageSchedule s =
                  cost::CostModel::collective_schedule(
                      op, static_cast<int>(global_ranks.size()));
              programs.add_collective(s, global_ranks);
              break;
            }
            case core::CommScope::Group: {
              const net::MessageSchedule s =
                  cost::CostModel::collective_schedule(
                      op, static_cast<int>(collective_ranks.size()));
              programs.add_collective(s, collective_ranks);
              break;
            }
            case core::CommScope::Orthogonal: {
              int min_size = layout.groups.front().size();
              for (const cost::GroupLayout& gg : layout.groups) {
                min_size = std::min(min_size, gg.size());
              }
              const int g_count = static_cast<int>(layout.groups.size());
              if (g_count <= 1) break;
              core::CollectiveOp per_position = op;
              per_position.data_bytes =
                  op.data_bytes / static_cast<std::size_t>(min_size) *
                  static_cast<std::size_t>(g_count);
              const net::MessageSchedule s =
                  cost::CostModel::collective_schedule(per_position, g_count);
              // Only the positions this group owns add ops for their ranks;
              // lowering once per position covers all groups, so do it only
              // when processing the first group-assigned task that has the
              // op -- to keep things simple we lower it for group 0's task
              // only (all groups run it jointly).
              if (g == 0 || layer.num_groups() == 1) {
                // Under hybrid execution only the team anchor cores (every
                // t-th position) carry ranks that communicate.
                for (int j = 0; j < min_size; j += threads) {
                  std::vector<int> comm;
                  comm.reserve(static_cast<std::size_t>(g_count));
                  for (const cost::GroupLayout& gg : layout.groups) {
                    comm.push_back(
                        rank_of.at(gg.cores[static_cast<std::size_t>(j)]));
                  }
                  programs.add_collective(s, comm);
                }
              }
              break;
            }
          }
        }
        if (op.repeat > explicit_reps) {
          // Charge the residual repetitions as analytically priced busy time.
          const double once = cost_->mapped_collective_time(op, layout, g);
          programs.add_compute(
              ranks, static_cast<double>(op.repeat - explicit_reps) * once);
        }
      }
    }

    if (options.barrier_between_layers && li + 1 < schedule.layers.size()) {
      programs.add_collective(layer_barrier, all_ranks);
    }
  }

  const sim::NetworkSim simulator(machine, rank_cores);
  return simulator.run(programs, options.record_trace);
}

namespace {

const LayeredSchedule& require_layers(const Schedule& schedule) {
  if (!schedule.has_layers()) {
    throw std::invalid_argument(
        "schedule '" + schedule.strategy +
        "' has no layer structure for the timeline evaluator");
  }
  return schedule.layered;
}

std::span<const cost::LayerLayout> require_layouts(const Schedule& schedule) {
  if (schedule.layouts.empty()) {
    throw std::invalid_argument(
        "schedule '" + schedule.strategy +
        "' carries no embedded layouts (run a mapping pass or pass them "
        "explicitly)");
  }
  return schedule.layouts;
}

}  // namespace

TimelineResult TimelineEvaluator::evaluate(
    const Schedule& schedule, std::span<const cost::LayerLayout> layouts,
    const TimelineOptions& options) const {
  return evaluate(require_layers(schedule), layouts, options);
}

TimelineResult TimelineEvaluator::evaluate(
    const Schedule& schedule, const TimelineOptions& options) const {
  return evaluate(require_layers(schedule), require_layouts(schedule),
                  options);
}

sim::SimResult TimelineEvaluator::simulate(
    const Schedule& schedule, std::span<const cost::LayerLayout> layouts,
    const TimelineOptions& options) const {
  return simulate(require_layers(schedule), layouts, options);
}

sim::SimResult TimelineEvaluator::simulate(
    const Schedule& schedule, const TimelineOptions& options) const {
  return simulate(require_layers(schedule), require_layouts(schedule),
                  options);
}

}  // namespace ptask::sched
