#include "ptask/sched/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "ptask/cost/cached_model.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::sched {

namespace {

/// Non-virtual evaluation target for the layer sweep's row fills: calling
/// `model.BaseModel::symbolic_task_time(...)` computes the plain-model
/// double directly, bypassing CachedCostModel's shard lock and insert for
/// keys the per-layer row memo already deduplicates (and that would never
/// repeat in the shared cache anyway).
using BaseModel = cost::CostModel;

/// The model passes price through: the invocation's memoizing cache when
/// the pipeline installed one, the plain cost model otherwise (hand-built
/// contexts).  Either way the returned values are bit-identical.
const cost::CostModel& pricing_model(const PassContext& ctx) {
  return ctx.pricing != nullptr ? *ctx.pricing : *ctx.cost;
}

/// Per-layer working buffers, reused across the candidate group counts of
/// the layer (and across layers of one worker) so the candidate loop does
/// no per-candidate allocation.
struct LayerScratch {
  std::vector<std::size_t> order;     ///< LPT order, carried across candidates
  std::vector<double> time;           ///< patched times at the large size
  std::vector<double> time_lo;        ///< patched times at the small size
  std::vector<double> accumulated;    ///< scan-mode group loads
  std::vector<int> task_group;        ///< candidate assignment
  std::vector<std::pair<double, int>> heap;  ///< (load, group) min-heap
  /// Shared time rows: group size q -> per-task symbolic time.  Valid for
  /// tasks without orthogonal collectives (their time is independent of
  /// the candidate's group count), which is what lets the ~min(P, n)
  /// candidate counts of a layer share only O(sqrt(P)) distinct rows.
  std::unordered_map<int, std::vector<double>> rows;
  std::vector<std::size_t> ortho;     ///< tasks with orthogonal collectives
  /// Compute-only pruning bounds per group size: (max, sum) over tasks of
  /// work / (min(q, max_cores) * flops).
  std::unordered_map<int, std::pair<double, double>> compute_bounds;
};

struct PruneStats {
  std::uint64_t pruned = 0;
  std::uint64_t evaluated = 0;
};

/// One layer of Algorithm 1: evaluate every candidate group count with an
/// equal core split and the modified Sahni greedy assignment, keep the best.
///
/// Bit-identity contract: for any combination of the LayerSchedulerOptions
/// performance knobs this computes the byte-identical ScheduledLayer of the
/// historical monolith (tests/pipeline_test.cpp pins it against a verbatim
/// copy).  The invariants that make that hold:
///  * `order` is sorted for *every* candidate, pruned ones included --
///    std::sort is unstable, so the carried order (and with it the
///    placement of equal-time tasks in the winning candidate) depends on
///    the full sort history;
///  * the heap pops the lowest-index minimum load, exactly the group
///    std::min_element scans to;
///  * memoized times are the same doubles the plain model computes;
///  * pruning uses true lower bounds (compute share at the largest group
///    size; the averaged bound is deflated by the worst-case summation
///    error), so a pruned candidate can never have beaten the incumbent.
ScheduledLayer schedule_layer(const core::TaskGraph& graph,
                              const std::vector<core::TaskId>& tasks,
                              const std::vector<int>& candidates, int P,
                              const cost::CostModel& cost,
                              const LayerSchedulerOptions& opt,
                              LayerScratch& s, PruneStats& stats) {
  const std::size_t n = tasks.size();
  ScheduledLayer best;
  if (candidates.empty()) return best;

  s.order.resize(n);
  std::iota(s.order.begin(), s.order.end(), 0);
  s.rows.clear();
  s.compute_bounds.clear();
  s.ortho.clear();
  const bool cached = opt.cost_cache;
  if (cached) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cost::CachedCostModel::depends_on_num_groups(graph.task(tasks[i]))) {
        s.ortho.push_back(i);
      }
    }
  }

  // Fills (once) the shared time row for group size q; entries of tasks
  // with orthogonal collectives stay 0 and are patched per candidate.
  // Row fills and patches call the base model non-virtually: the rows ARE
  // the memo here, and routing millions of never-repeating (task, q, g)
  // keys through the shared CachedCostModel would be pure shard-lock and
  // hash-insert overhead.  The qualified call computes the exact same
  // doubles the cache would have stored.
  const auto shared_row = [&](int q, int g) -> const std::vector<double>& {
    auto [it, inserted] = s.rows.try_emplace(q);
    if (inserted) {
      it->second.assign(n, 0.0);
      std::size_t next_ortho = 0;  // s.ortho is ascending
      for (std::size_t i = 0; i < n; ++i) {
        if (next_ortho < s.ortho.size() && s.ortho[next_ortho] == i) {
          ++next_ortho;
          continue;
        }
        it->second[i] =
            cost.BaseModel::symbolic_task_time(graph.task(tasks[i]), q, g, P);
      }
    }
    return it->second;
  };
  // The layer's times at group size q under g groups; `into` receives the
  // patched copy when the layer has orthogonal tasks.
  const auto times_at = [&](int q, int g,
                            std::vector<double>& into) -> const double* {
    const std::vector<double>& row = shared_row(q, g);
    if (s.ortho.empty()) return row.data();
    into = row;
    for (const std::size_t i : s.ortho) {
      into[i] =
          cost.BaseModel::symbolic_task_time(graph.task(tasks[i]), q, g, P);
    }
    return into.data();
  };

  double best_time = std::numeric_limits<double>::infinity();
  int best_g = 0;

  for (const int g : candidates) {
    const int q_lo = P / g;
    const int rem = P % g;
    const int q_top = rem > 0 ? q_lo + 1 : q_lo;  // == equal_group_sizes[0]

    // Times at the first (largest) group size drive the LPT sort.
    const double* time_top = nullptr;
    if (cached) {
      time_top = times_at(q_top, g, s.time);
    } else {
      s.time.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        s.time[i] = cost.symbolic_task_time(graph.task(tasks[i]), q_top, g, P);
      }
      time_top = s.time.data();
    }

    // The sort runs for every candidate, pruned ones included: `order`
    // carries across candidates (historical tie-break semantics), and
    // skipping an unstable sort could permute equal-time tasks of a later
    // winning candidate.
    std::sort(s.order.begin(), s.order.end(),
              [&](std::size_t a, std::size_t b) {
                return time_top[a] > time_top[b];
              });

    if (opt.prune_group_search &&
        best_time < std::numeric_limits<double>::infinity()) {
      auto [it, inserted] = s.compute_bounds.try_emplace(q_top);
      if (inserted) {
        double max_c = 0.0;
        double sum_c = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double c =
              cost.symbolic_compute_time(graph.task(tasks[i]), q_top);
          max_c = std::max(max_c, c);
          sum_c += c;
        }
        it->second = {max_c, sum_c};
      }
      // max_c lower-bounds the makespan exactly: every task's time is at
      // least its compute share at the largest group size.  The averaged
      // bound (total compute spread over g groups) is deflated by the
      // worst-case summation error so rounding can never prune a candidate
      // that would have won.
      const double safety =
          1.0 - 8.0 * static_cast<double>(n + 2) *
                    std::numeric_limits<double>::epsilon();
      const double lower_bound =
          std::max(it->second.first,
                   it->second.second / static_cast<double>(g) * safety);
      if (lower_bound >= best_time) {
        ++stats.pruned;
        continue;
      }
    }
    ++stats.evaluated;

    const double* time_lo = time_top;
    if (cached && rem > 0) time_lo = times_at(q_lo, g, s.time_lo);

    s.task_group.assign(n, 0);
    double layer_time = 0.0;
    if (opt.heap_lpt) {
      // Greedy assignment via a (load, group) min-heap: the heap minimum
      // under lexicographic pair order is the lowest-index minimum load --
      // exactly what the linear scan's std::min_element picks -- and each
      // group accumulates the same time sequence, so the assignment is
      // bit-identical at O(n log g) instead of O(n g).
      s.heap.clear();
      for (int gi = 0; gi < g; ++gi) s.heap.emplace_back(0.0, gi);
      // All-zero loads with ascending indices already form a min-heap.
      for (const std::size_t i : s.order) {
        std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>{});
        auto& [load, gi] = s.heap.back();
        const double t =
            cached ? (gi < rem ? time_top[i] : time_lo[i])
                   : cost.symbolic_task_time(graph.task(tasks[i]),
                                             q_lo + (gi < rem ? 1 : 0), g, P);
        load += t;
        s.task_group[i] = gi;
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>{});
      }
      for (const auto& [load, gi] : s.heap) {
        layer_time = std::max(layer_time, load);
      }
    } else {
      // Reference path: each task onto the group with the smallest
      // accumulated execution time (modified Sahni algorithm, line 10).
      s.accumulated.assign(static_cast<std::size_t>(g), 0.0);
      for (const std::size_t i : s.order) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(s.accumulated.begin(), s.accumulated.end()) -
            s.accumulated.begin());
        const int gi = static_cast<int>(target);
        const double t =
            cached ? (gi < rem ? time_top[i] : time_lo[i])
                   : cost.symbolic_task_time(graph.task(tasks[i]),
                                             q_lo + (gi < rem ? 1 : 0), g, P);
        s.accumulated[target] += t;
        s.task_group[i] = gi;
      }
      layer_time =
          *std::max_element(s.accumulated.begin(), s.accumulated.end());
    }

    if (layer_time < best_time) {
      best_time = layer_time;
      best_g = g;
      best.task_group.swap(s.task_group);
      best.predicted_time = layer_time;
    }
  }

  if (best_g > 0) {
    // Materialized once for the winner instead of per improving candidate.
    best.tasks = tasks;
    best.group_sizes = equal_group_sizes(P, best_g);
  }
  return best;
}

/// Content signature of one layer: the ordered original-task member lists
/// of its contracted nodes plus the candidate group counts.  Layers with
/// equal signatures have byte-identical merged task contents (original
/// tasks are immutable under the online-arrival model and chain contraction
/// merges members deterministically), so their schedule_layer results are
/// interchangeable modulo the contracted-id labels.
std::string layer_signature(const core::ChainContraction& contraction,
                            const std::vector<core::TaskId>& tasks,
                            const std::vector<int>& candidates) {
  std::string key;
  key.reserve(tasks.size() * 8);
  for (const core::TaskId id : tasks) {
    for (const core::TaskId member :
         contraction.members[static_cast<std::size_t>(id)]) {
      key += std::to_string(member);
      key += ',';
    }
    key += ';';
  }
  key += '|';
  for (const int g : candidates) {
    key += std::to_string(g);
    key += ',';
  }
  return key;
}

/// The signature of a memo entry (members were captured at settle time).
std::string memo_signature(const LayerMemoEntry& entry) {
  std::string key;
  for (const std::vector<core::TaskId>& members : entry.members) {
    for (const core::TaskId member : members) {
      key += std::to_string(member);
      key += ',';
    }
    key += ';';
  }
  key += '|';
  for (const int g : entry.candidates) {
    key += std::to_string(g);
    key += ',';
  }
  return key;
}

/// Moves the pass results out of `ctx` and accumulates the predicted
/// makespan -- the shared tail of Pipeline::run and Pipeline::run_layered.
LayeredSchedule finalize_layered(PassContext& ctx) {
  LayeredSchedule result;
  result.total_cores = ctx.total_cores;
  result.contraction = std::move(ctx.contraction);
  result.layers = std::move(ctx.layers);
  for (const ScheduledLayer& layer : result.layers) {
    result.predicted_makespan += layer.predicted_time;
  }
  return result;
}

}  // namespace

void ContractChains::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.chain_contraction");
  if (ctx.options.contract_chains) {
    ctx.contraction = core::contract_linear_chains(*ctx.graph);
  } else {
    ctx.contraction = core::identity_contraction(*ctx.graph);
  }
}

void Layerize::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.layer_partition");
  ctx.layer_tasks = core::greedy_layers(ctx.contraction.contracted);
}

void GroupSearch::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.group_search");
  const int P = ctx.total_cores;
  ctx.group_candidates.clear();
  ctx.group_candidates.reserve(ctx.layer_tasks.size());
  for (const std::vector<core::TaskId>& tasks : ctx.layer_tasks) {
    const int n_tasks = static_cast<int>(tasks.size());
    int g_limit = std::min(P, n_tasks);
    if (ctx.options.max_groups > 0) {
      g_limit = std::min(g_limit, ctx.options.max_groups);
    }
    int g_first = 1;
    if (ctx.options.fixed_groups > 0) {
      g_first = g_limit = std::min(ctx.options.fixed_groups,
                                   std::min(P, n_tasks));
    }
    std::vector<int> candidates;
    candidates.reserve(static_cast<std::size_t>(g_limit - g_first + 1));
    for (int g = g_first; g <= g_limit; ++g) candidates.push_back(g);
    ctx.group_candidates.push_back(std::move(candidates));
  }
}

void AssignLPT::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.assign_lpt");
  if (ctx.group_candidates.size() != ctx.layer_tasks.size()) {
    throw std::logic_error("AssignLPT requires GroupSearch candidates");
  }
  static obs::Counter& pruned_counter =
      obs::metrics().counter("sched.prune.pruned");
  static obs::Counter& evaluated_counter =
      obs::metrics().counter("sched.prune.evaluated");

  const core::TaskGraph& contracted = ctx.contraction.contracted;
  const int P = ctx.total_cores;
  const cost::CostModel& cost = pricing_model(ctx);
  const std::size_t n_layers = ctx.layer_tasks.size();
  ctx.layers.clear();
  ctx.layers.resize(n_layers);
  ctx.layer_dirty.assign(n_layers, 1);
  ctx.layer_memo.assign(n_layers, -1);

  // Incremental repair: layers whose content signature matches a memo entry
  // are replayed under the new contracted ids instead of re-scheduled.  The
  // replay is bit-identical because schedule_layer is a pure function of
  // the signature (plus P / cost / options, constant across a session) and
  // the memo stores the settled post-adjust layer.
  //
  // Matching is two-tier.  Arrival deltas usually leave a long prefix of
  // layers untouched, so layer li is first compared structurally against
  // memo entry li -- an allocation-free vector walk.  Only when some layer
  // misses positionally (content shifted between layers) is the signature
  // string map built to find entries that moved.
  std::vector<std::int32_t> memo_hit(n_layers, -1);
  if (!ctx.memo.empty()) {
    const auto matches_entry = [&](const LayerMemoEntry& entry,
                                   std::size_t li) {
      const std::vector<core::TaskId>& tasks = ctx.layer_tasks[li];
      if (entry.candidates != ctx.group_candidates[li] ||
          entry.members.size() != tasks.size()) {
        return false;
      }
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (entry.members[i] !=
            ctx.contraction.members[static_cast<std::size_t>(tasks[i])]) {
          return false;
        }
      }
      return true;
    };
    bool all_positional = true;
    for (std::size_t li = 0; li < n_layers; ++li) {
      if (li < ctx.memo.size() && matches_entry(ctx.memo[li], li)) {
        memo_hit[li] = static_cast<std::int32_t>(li);
      } else {
        all_positional = false;
      }
    }
    if (!all_positional) {
      std::unordered_map<std::string, std::int32_t> settled;
      settled.reserve(ctx.memo.size());
      for (std::size_t m = 0; m < ctx.memo.size(); ++m) {
        settled.emplace(memo_signature(ctx.memo[m]),
                        static_cast<std::int32_t>(m));
      }
      for (std::size_t li = 0; li < n_layers; ++li) {
        if (memo_hit[li] >= 0) continue;
        const auto hit = settled.find(layer_signature(
            ctx.contraction, ctx.layer_tasks[li], ctx.group_candidates[li]));
        if (hit != settled.end()) memo_hit[li] = hit->second;
      }
    }
  }

  // Layers are independent and `order` is per-layer, so the worker split
  // cannot change any tie-break: parallel == serial, byte for byte.
  std::atomic<std::size_t> next{0};
  const auto run_layers = [&](PruneStats& stats) {
    LayerScratch scratch;
    for (std::size_t li = next.fetch_add(1); li < n_layers;
         li = next.fetch_add(1)) {
      if (memo_hit[li] >= 0) {
        const LayerMemoEntry& entry =
            ctx.memo[static_cast<std::size_t>(memo_hit[li])];
        // Positional remap: equal signatures mean position i of the new
        // layer is the same merged task as position i of the settled one.
        ScheduledLayer replay = entry.layer;
        replay.tasks = ctx.layer_tasks[li];
        ctx.layers[li] = std::move(replay);
        ctx.layer_dirty[li] = 0;
        ctx.layer_memo[li] = memo_hit[li];
        continue;
      }
      ctx.layers[li] =
          schedule_layer(contracted, ctx.layer_tasks[li],
                         ctx.group_candidates[li], P, cost, ctx.options,
                         scratch, stats);
    }
  };

  PruneStats total;
  const int workers =
      std::min(ctx.options.parallel_layers, static_cast<int>(n_layers));
  if (workers <= 1) {
    run_layers(total);
  } else {
    std::vector<PruneStats> stats(static_cast<std::size_t>(workers));
    std::mutex error_mutex;
    std::exception_ptr error;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          run_layers(stats[static_cast<std::size_t>(w)]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    if (error) std::rethrow_exception(error);
    for (const PruneStats& s : stats) {
      total.pruned += s.pruned;
      total.evaluated += s.evaluated;
    }
  }
  pruned_counter.add(total.pruned);
  evaluated_counter.add(total.evaluated);

  ctx.layers_reused = 0;
  ctx.layers_scheduled = 0;
  ctx.settled_prefix = 0;
  bool prefix_clean = true;
  for (std::size_t li = 0; li < n_layers; ++li) {
    if (ctx.layer_dirty[li] != 0) {
      ++ctx.layers_scheduled;
      prefix_clean = false;
    } else {
      ++ctx.layers_reused;
      if (prefix_clean) ++ctx.settled_prefix;
    }
  }
}

void AdjustGroups::run(PassContext& ctx) const {
  if (!ctx.options.adjust_group_sizes) return;
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.adjust");
  const core::TaskGraph& contracted = ctx.contraction.contracted;
  const cost::CostModel& cost = pricing_model(ctx);
  const int P = ctx.total_cores;
  for (std::size_t li = 0; li < ctx.layers.size(); ++li) {
    ScheduledLayer& layer = ctx.layers[li];
    // Layers replayed from the memo are already post-adjust (the memo is
    // captured after the full pass chain); re-adjusting them would be an
    // idempotent waste of the repair's savings.
    if (li < ctx.layer_dirty.size() && ctx.layer_dirty[li] == 0) continue;
    if (layer.num_groups() <= 1) continue;
    // Accumulated *sequential* work per group (paper: Tseq(G_l)).
    std::vector<double> work(static_cast<std::size_t>(layer.num_groups()),
                             0.0);
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      work[static_cast<std::size_t>(layer.task_group[i])] +=
          contracted.task(layer.tasks[i]).work_flop();
    }
    layer.group_sizes = proportional_group_sizes(P, work);
    // Re-evaluate the layer time with the adjusted sizes.
    std::vector<double> accumulated(
        static_cast<std::size_t>(layer.num_groups()), 0.0);
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const std::size_t gidx = static_cast<std::size_t>(layer.task_group[i]);
      accumulated[gidx] += cost.symbolic_task_time(
          contracted.task(layer.tasks[i]), layer.group_sizes[gidx],
          layer.num_groups(), P);
    }
    layer.predicted_time =
        *std::max_element(accumulated.begin(), accumulated.end());
  }
}

Pipeline& Pipeline::append(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

Pipeline Pipeline::algorithm1(const cost::CostModel& cost,
                              LayerSchedulerOptions options) {
  Pipeline pipeline(cost, "layer", options);
  pipeline.append(std::make_unique<ContractChains>())
      .append(std::make_unique<Layerize>())
      .append(std::make_unique<GroupSearch>())
      .append(std::make_unique<AssignLPT>())
      .append(std::make_unique<AdjustGroups>());
  return pipeline;
}

PassContext Pipeline::make_context(const core::TaskGraph& graph,
                                   int total_cores) const {
  if (total_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  static obs::Counter& invocations =
      obs::metrics().counter("sched.invocations");
  invocations.add();
  PassContext ctx;
  ctx.graph = &graph;
  ctx.cost = cost_;
  ctx.total_cores = total_cores;
  ctx.options = options_;
  if (options_.cost_cache) {
    if (dynamic_cast<const cost::CachedCostModel*>(cost_) != nullptr) {
      // The caller already prices through a cache (e.g. the portfolio's
      // shared one); reuse it instead of stacking a second level.
      ctx.pricing = cost_;
    } else {
      auto cache = std::make_shared<cost::CachedCostModel>(*cost_);
      ctx.pricing = cache.get();
      ctx.owned_cache = std::move(cache);
    }
  } else {
    ctx.pricing = cost_;
  }
  return ctx;
}

LayeredSchedule Pipeline::run_layered(const core::TaskGraph& graph,
                                      int total_cores) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.schedule");
  PassContext ctx = make_context(graph, total_cores);
  for (const std::unique_ptr<Pass>& pass : passes_) pass->run(ctx);
  return finalize_layered(ctx);
}

Schedule Pipeline::run(const core::TaskGraph& graph, int total_cores) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.schedule");
  PassContext ctx = make_context(graph, total_cores);
  for (const std::unique_ptr<Pass>& pass : passes_) pass->run(ctx);
  // Price the Gantt lowering through the same memo the passes filled (the
  // contraction's task addresses are stable across the move).
  Schedule result =
      canonical(finalize_layered(ctx), pricing_model(ctx), name_);
  result.layouts = std::move(ctx.layouts);
  result.notes = std::move(ctx.notes);
  return result;
}

Schedule Pipeline::run_with_context(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.schedule");
  for (const std::unique_ptr<Pass>& pass : passes_) pass->run(ctx);

  // Per-task lowering times: the settled doubles from the memo for replayed
  // layers, freshly priced for dirty ones.  Replaying the exact memoized
  // doubles (instead of re-deriving durations from slot differences, which
  // is not FP-exact) is what keeps the spliced Gantt byte-identical to a
  // full re-schedule -- to_gantt then runs the identical accumulation
  // arithmetic either way.
  const core::TaskGraph& contracted = ctx.contraction.contracted;
  const cost::CostModel& cost = pricing_model(ctx);
  const int P = ctx.total_cores;
  std::vector<double> time_of(
      static_cast<std::size_t>(contracted.num_tasks()), 0.0);
  std::vector<LayerMemoEntry> settled(ctx.layers.size());
  {
    obs::ScopedSpan settle_span(obs::SpanKind::Scheduler, "sched.memo_settle");
    for (std::size_t li = 0; li < ctx.layers.size(); ++li) {
      const ScheduledLayer& layer = ctx.layers[li];
      const std::int32_t memo_idx =
          li < ctx.layer_memo.size() ? ctx.layer_memo[li] : -1;
      if (memo_idx >= 0) {
        const std::vector<double>& times =
            ctx.memo[static_cast<std::size_t>(memo_idx)].task_times;
        for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
          time_of[static_cast<std::size_t>(layer.tasks[i])] = times[i];
        }
      } else {
        for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
          const core::TaskId id = layer.tasks[i];
          const std::size_t g = static_cast<std::size_t>(layer.task_group[i]);
          time_of[static_cast<std::size_t>(id)] = cost.symbolic_task_time(
              contracted.task(id), layer.group_sizes[g], layer.num_groups(),
              P);
        }
      }
    }

    // Settle the new memo before finalize_layered moves the working state
    // out of the context.  A layer replayed from memo entry m has members,
    // candidates, times, and layer content identical to that entry (that is
    // what the signature match certified), so the entry is moved wholesale --
    // only the contracted-id labels need refreshing.  Deep construction is
    // reserved for dirty layers and duplicate hits on an already-moved
    // entry.
    std::vector<char> consumed(ctx.memo.size(), 0);
    for (std::size_t li = 0; li < ctx.layers.size(); ++li) {
      LayerMemoEntry& entry = settled[li];
      const ScheduledLayer& layer = ctx.layers[li];
      const std::int32_t memo_idx =
          li < ctx.layer_memo.size() ? ctx.layer_memo[li] : -1;
      if (memo_idx >= 0 && !consumed[static_cast<std::size_t>(memo_idx)]) {
        entry = std::move(ctx.memo[static_cast<std::size_t>(memo_idx)]);
        consumed[static_cast<std::size_t>(memo_idx)] = 1;
        entry.layer.tasks = layer.tasks;
        continue;
      }
      entry.members.reserve(layer.tasks.size());
      entry.task_times.reserve(layer.tasks.size());
      for (const core::TaskId id : layer.tasks) {
        entry.members.push_back(
            ctx.contraction.members[static_cast<std::size_t>(id)]);
        entry.task_times.push_back(time_of[static_cast<std::size_t>(id)]);
      }
      entry.candidates = ctx.group_candidates[li];
      entry.layer = layer;
    }
  }

  obs::ScopedSpan lowering_span(obs::SpanKind::Scheduler, "sched.lowering");
  Schedule result;
  result.strategy = name_;
  result.settled_prefix_layers = ctx.settled_prefix;
  result.layered = finalize_layered(ctx);
  result.gantt =
      to_gantt(result.layered, [&](core::TaskId id, int, int) {
        return time_of[static_cast<std::size_t>(id)];
      });
  result.allocation.resize(result.gantt.slots.size());
  for (std::size_t id = 0; id < result.gantt.slots.size(); ++id) {
    result.allocation[id] = result.gantt.slots[id].num_cores();
  }
  result.layouts = std::move(ctx.layouts);
  result.notes = std::move(ctx.notes);
  ctx.memo = std::move(settled);
  return result;
}

Schedule canonical(LayeredSchedule layered, const cost::CostModel& cost,
                   std::string strategy) {
  Schedule result;
  result.strategy = std::move(strategy);
  result.layered = std::move(layered);
  const core::TaskGraph& contracted =
      result.layered.contraction.contracted;
  const int P = result.layered.total_cores;
  result.gantt = to_gantt(
      result.layered, [&](core::TaskId id, int q, int num_groups) {
        return cost.symbolic_task_time(contracted.task(id), q, num_groups, P);
      });
  result.allocation.resize(result.gantt.slots.size());
  for (std::size_t id = 0; id < result.gantt.slots.size(); ++id) {
    result.allocation[id] = result.gantt.slots[id].num_cores();
  }
  return result;
}

Schedule canonical(const core::TaskGraph& graph, MoldableResult moldable,
                   std::string strategy) {
  Schedule result;
  result.strategy = std::move(strategy);
  result.layered.total_cores = moldable.schedule.total_cores;
  result.layered.contraction = core::identity_contraction(graph);
  result.layered.predicted_makespan = moldable.schedule.makespan;
  result.gantt = std::move(moldable.schedule);
  result.allocation = std::move(moldable.allocation);
  return result;
}

}  // namespace ptask::sched
