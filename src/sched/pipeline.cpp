#include "ptask/sched/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::sched {

namespace {

/// One LPT (modified Sahni) evaluation: sorts `order` by decreasing task
/// time under `sizes` and greedily assigns each task to the least-loaded
/// group.  `order` is carried across candidate group counts of the same
/// layer, exactly like the pre-pass monolith did, so tie-breaks -- and
/// therefore schedules -- are bit-identical to the historical algorithm.
struct LptResult {
  std::vector<int> task_group;
  double time = 0.0;
};

LptResult lpt_assign(const core::TaskGraph& graph,
                     const std::vector<core::TaskId>& tasks,
                     const std::vector<int>& sizes, int num_groups,
                     int total_cores, const cost::CostModel& cost,
                     std::vector<std::size_t>& order) {
  // Sort tasks by decreasing execution time on a group of this size.
  std::vector<double> time(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    time[i] = cost.symbolic_task_time(graph.task(tasks[i]), sizes[0],
                                      num_groups, total_cores);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return time[a] > time[b]; });

  // Greedy assignment: each task onto the group with the smallest
  // accumulated execution time (modified Sahni algorithm, line 10).
  std::vector<double> accumulated(static_cast<std::size_t>(num_groups), 0.0);
  LptResult result;
  result.task_group.assign(tasks.size(), 0);
  for (std::size_t i : order) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(accumulated.begin(), accumulated.end()) -
        accumulated.begin());
    const double t = cost.symbolic_task_time(graph.task(tasks[i]),
                                             sizes[target], num_groups,
                                             total_cores);
    accumulated[target] += t;
    result.task_group[i] = static_cast<int>(target);
  }
  result.time = *std::max_element(accumulated.begin(), accumulated.end());
  return result;
}

}  // namespace

void ContractChains::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.chain_contraction");
  if (ctx.options.contract_chains) {
    ctx.contraction = core::contract_linear_chains(*ctx.graph);
  } else {
    ctx.contraction = core::identity_contraction(*ctx.graph);
  }
}

void Layerize::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.layer_partition");
  ctx.layer_tasks = core::greedy_layers(ctx.contraction.contracted);
}

void GroupSearch::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.group_search");
  const int P = ctx.total_cores;
  ctx.group_candidates.clear();
  ctx.group_candidates.reserve(ctx.layer_tasks.size());
  for (const std::vector<core::TaskId>& tasks : ctx.layer_tasks) {
    const int n_tasks = static_cast<int>(tasks.size());
    int g_limit = std::min(P, n_tasks);
    if (ctx.options.max_groups > 0) {
      g_limit = std::min(g_limit, ctx.options.max_groups);
    }
    int g_first = 1;
    if (ctx.options.fixed_groups > 0) {
      g_first = g_limit = std::min(ctx.options.fixed_groups,
                                   std::min(P, n_tasks));
    }
    std::vector<int> candidates;
    candidates.reserve(static_cast<std::size_t>(g_limit - g_first + 1));
    for (int g = g_first; g <= g_limit; ++g) candidates.push_back(g);
    ctx.group_candidates.push_back(std::move(candidates));
  }
}

void AssignLPT::run(PassContext& ctx) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.assign_lpt");
  if (ctx.group_candidates.size() != ctx.layer_tasks.size()) {
    throw std::logic_error("AssignLPT requires GroupSearch candidates");
  }
  const core::TaskGraph& contracted = ctx.contraction.contracted;
  const int P = ctx.total_cores;
  ctx.layers.clear();
  ctx.layers.reserve(ctx.layer_tasks.size());
  for (std::size_t li = 0; li < ctx.layer_tasks.size(); ++li) {
    const std::vector<core::TaskId>& tasks = ctx.layer_tasks[li];
    ScheduledLayer best;
    double best_time = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> order(tasks.size());
    std::iota(order.begin(), order.end(), 0);
    for (const int g : ctx.group_candidates[li]) {
      const std::vector<int> sizes = equal_group_sizes(P, g);
      LptResult lpt =
          lpt_assign(contracted, tasks, sizes, g, P, *ctx.cost, order);
      if (lpt.time < best_time) {
        best_time = lpt.time;
        best.tasks = tasks;
        best.group_sizes = sizes;
        best.task_group = std::move(lpt.task_group);
        best.predicted_time = lpt.time;
      }
    }
    ctx.layers.push_back(std::move(best));
  }
}

void AdjustGroups::run(PassContext& ctx) const {
  if (!ctx.options.adjust_group_sizes) return;
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.adjust");
  const core::TaskGraph& contracted = ctx.contraction.contracted;
  const int P = ctx.total_cores;
  for (ScheduledLayer& layer : ctx.layers) {
    if (layer.num_groups() <= 1) continue;
    // Accumulated *sequential* work per group (paper: Tseq(G_l)).
    std::vector<double> work(static_cast<std::size_t>(layer.num_groups()),
                             0.0);
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      work[static_cast<std::size_t>(layer.task_group[i])] +=
          contracted.task(layer.tasks[i]).work_flop();
    }
    layer.group_sizes = proportional_group_sizes(P, work);
    // Re-evaluate the layer time with the adjusted sizes.
    std::vector<double> accumulated(
        static_cast<std::size_t>(layer.num_groups()), 0.0);
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const std::size_t gidx = static_cast<std::size_t>(layer.task_group[i]);
      accumulated[gidx] += ctx.cost->symbolic_task_time(
          contracted.task(layer.tasks[i]), layer.group_sizes[gidx],
          layer.num_groups(), P);
    }
    layer.predicted_time =
        *std::max_element(accumulated.begin(), accumulated.end());
  }
}

Pipeline& Pipeline::append(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

Pipeline Pipeline::algorithm1(const cost::CostModel& cost,
                              LayerSchedulerOptions options) {
  Pipeline pipeline(cost, "layer", options);
  pipeline.append(std::make_unique<ContractChains>())
      .append(std::make_unique<Layerize>())
      .append(std::make_unique<GroupSearch>())
      .append(std::make_unique<AssignLPT>())
      .append(std::make_unique<AdjustGroups>());
  return pipeline;
}

PassContext Pipeline::make_context(const core::TaskGraph& graph,
                                   int total_cores) const {
  if (total_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  static obs::Counter& invocations =
      obs::metrics().counter("sched.invocations");
  invocations.add();
  PassContext ctx;
  ctx.graph = &graph;
  ctx.cost = cost_;
  ctx.total_cores = total_cores;
  ctx.options = options_;
  return ctx;
}

LayeredSchedule Pipeline::run_layered(const core::TaskGraph& graph,
                                      int total_cores) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.schedule");
  PassContext ctx = make_context(graph, total_cores);
  for (const std::unique_ptr<Pass>& pass : passes_) pass->run(ctx);
  LayeredSchedule result;
  result.total_cores = total_cores;
  result.contraction = std::move(ctx.contraction);
  result.layers = std::move(ctx.layers);
  for (const ScheduledLayer& layer : result.layers) {
    result.predicted_makespan += layer.predicted_time;
  }
  return result;
}

Schedule Pipeline::run(const core::TaskGraph& graph, int total_cores) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.schedule");
  PassContext ctx = make_context(graph, total_cores);
  for (const std::unique_ptr<Pass>& pass : passes_) pass->run(ctx);
  LayeredSchedule layered;
  layered.total_cores = total_cores;
  layered.contraction = std::move(ctx.contraction);
  layered.layers = std::move(ctx.layers);
  for (const ScheduledLayer& layer : layered.layers) {
    layered.predicted_makespan += layer.predicted_time;
  }
  Schedule result = canonical(std::move(layered), *cost_, name_);
  result.layouts = std::move(ctx.layouts);
  result.notes = std::move(ctx.notes);
  return result;
}

Schedule canonical(LayeredSchedule layered, const cost::CostModel& cost,
                   std::string strategy) {
  Schedule result;
  result.strategy = std::move(strategy);
  result.layered = std::move(layered);
  const core::TaskGraph& contracted =
      result.layered.contraction.contracted;
  const int P = result.layered.total_cores;
  result.gantt = to_gantt(
      result.layered, [&](core::TaskId id, int q, int num_groups) {
        return cost.symbolic_task_time(contracted.task(id), q, num_groups, P);
      });
  result.allocation.resize(result.gantt.slots.size());
  for (std::size_t id = 0; id < result.gantt.slots.size(); ++id) {
    result.allocation[id] = result.gantt.slots[id].num_cores();
  }
  return result;
}

Schedule canonical(const core::TaskGraph& graph, MoldableResult moldable,
                   std::string strategy) {
  Schedule result;
  result.strategy = std::move(strategy);
  result.layered.total_cores = moldable.schedule.total_cores;
  result.layered.contraction = core::identity_contraction(graph);
  result.layered.predicted_makespan = moldable.schedule.makespan;
  result.gantt = std::move(moldable.schedule);
  result.allocation = std::move(moldable.allocation);
  return result;
}

}  // namespace ptask::sched
