#include "ptask/sched/incremental.hpp"

#include <sstream>
#include <utility>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::sched {

namespace {

Pipeline incremental_pipeline(const cost::CostModel& cost,
                              LayerSchedulerOptions options) {
  // The exact Algorithm-1 pass chain under the "incremental" strategy name:
  // the memo-aware replay lives inside AssignLPT/AdjustGroups, so the
  // offline and online paths share every line of scheduling logic.
  Pipeline pipeline(cost, "incremental", options);
  pipeline.append(std::make_unique<ContractChains>())
      .append(std::make_unique<Layerize>())
      .append(std::make_unique<GroupSearch>())
      .append(std::make_unique<AssignLPT>())
      .append(std::make_unique<AdjustGroups>());
  return pipeline;
}

RepairStats stats_from(const PassContext& ctx, const GraphDelta* delta) {
  RepairStats stats;
  stats.total_layers = ctx.layers_reused + ctx.layers_scheduled;
  stats.layers_reused = ctx.layers_reused;
  stats.layers_scheduled = ctx.layers_scheduled;
  stats.settled_prefix = ctx.settled_prefix;
  if (delta != nullptr) {
    stats.delta_tasks = delta->tasks.size();
    stats.delta_edges = delta->edges.size();
  }
  return stats;
}

}  // namespace

IncrementalScheduler::IncrementalScheduler(const cost::CostModel& cost,
                                           LayerSchedulerOptions options)
    : pipeline_(incremental_pipeline(cost, options)) {}

Schedule IncrementalScheduler::run(const core::TaskGraph& graph,
                                   int total_cores) const {
  // Stateless: an extend from an empty memo is a plain full run.
  PassContext ctx = pipeline_.make_context(graph, total_cores);
  return pipeline_.run_with_context(ctx);
}

const Schedule& IncrementalScheduler::reset(core::TaskGraph graph,
                                            int total_cores,
                                            double release_time) {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.incremental.reset");
  PassContext ctx = pipeline_.make_context(graph, total_cores);
  Schedule result = pipeline_.run_with_context(ctx);
  // Commit only after the run succeeded, so a throwing cost model cannot
  // leave a half-reset session behind.
  graph_ = std::move(graph);
  total_cores_ = total_cores;
  current_ = std::move(result);
  memo_ = std::move(ctx.memo);
  stats_ = stats_from(ctx, nullptr);
  last_release_ = release_time;
  has_schedule_ = true;
  return current_;
}

const Schedule& IncrementalScheduler::extend(const GraphDelta& delta) {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.incremental.extend");
  if (!has_schedule_) {
    throw DeltaError("extend without a settled schedule; call reset first");
  }
  if (delta.release_time < last_release_) {
    std::ostringstream message;
    message << "non-monotonic batch release time " << delta.release_time
            << " (last batch arrived at " << last_release_ << ")";
    throw DeltaError(message.str());
  }
  for (const ArrivingTask& arriving : delta.tasks) {
    if (arriving.release_time < delta.release_time) {
      std::ostringstream message;
      message << "task release time " << arriving.release_time
              << " precedes its batch release " << delta.release_time;
      throw DeltaError(message.str());
    }
  }

  // Grow a copy and swap it in only after the whole repair succeeded, so an
  // invalid delta (or a throwing cost model) leaves the session untouched.
  core::TaskGraph next = graph_;
  for (const ArrivingTask& arriving : delta.tasks) {
    next.add_task(arriving.task);
  }
  try {
    next.add_edges(delta.edges);
  } catch (const std::exception& error) {
    throw DeltaError(error.what());
  }

  // Fresh context per extend: the pricing cache keys on task addresses,
  // which the graph copy invalidated.  The memo moves through the context
  // (in before the run, back out after), making the pipeline re-entrant.
  PassContext ctx = pipeline_.make_context(next, total_cores_);
  ctx.memo = std::move(memo_);
  Schedule result;
  try {
    result = pipeline_.run_with_context(ctx);
  } catch (...) {
    memo_ = std::move(ctx.memo);
    throw;
  }

  graph_ = std::move(next);
  current_ = std::move(result);
  memo_ = std::move(ctx.memo);
  stats_ = stats_from(ctx, &delta);
  last_release_ = delta.release_time;

  static obs::Counter& reused =
      obs::metrics().counter("sched.incremental.layers_reused");
  static obs::Counter& scheduled =
      obs::metrics().counter("sched.incremental.layers_scheduled");
  reused.add(static_cast<std::uint64_t>(stats_.layers_reused));
  scheduled.add(static_cast<std::uint64_t>(stats_.layers_scheduled));
  return current_;
}

const Schedule& IncrementalScheduler::current() const {
  if (!has_schedule_) {
    throw std::logic_error("no settled schedule; call reset first");
  }
  return current_;
}

}  // namespace ptask::sched
