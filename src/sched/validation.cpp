#include "ptask/sched/validation.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

namespace ptask::sched {

namespace {

void add_error(ValidationReport& report, const std::string& message) {
  report.errors.push_back(message);
}

/// "'name' (id N)" -- diagnostics carry both so fuzz logs are greppable by
/// either the task's name or its bare index.
std::string task_ref(const core::TaskGraph& graph, core::TaskId id) {
  return "'" + graph.task(id).name() + "' (id " + std::to_string(id) + ")";
}

}  // namespace

ValidationReport validate(const LayeredSchedule& schedule,
                          const core::TaskGraph& original) {
  ValidationReport report;
  const core::TaskGraph& contracted = schedule.contraction.contracted;

  // Contraction covers the original graph.
  if (static_cast<int>(schedule.contraction.representative.size()) !=
      original.num_tasks()) {
    add_error(report, "contraction does not cover the original graph");
    return report;
  }

  std::vector<int> appearances(
      static_cast<std::size_t>(contracted.num_tasks()), 0);
  std::vector<int> layer_of(static_cast<std::size_t>(contracted.num_tasks()),
                            -1);

  for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
    const ScheduledLayer& layer = schedule.layers[li];
    std::ostringstream prefix;
    prefix << "layer " << li << ": ";

    const int sum = std::accumulate(layer.group_sizes.begin(),
                                    layer.group_sizes.end(), 0);
    if (sum != schedule.total_cores) {
      add_error(report, prefix.str() + "group sizes sum to " +
                            std::to_string(sum) + ", expected " +
                            std::to_string(schedule.total_cores));
    }
    for (int g : layer.group_sizes) {
      if (g <= 0) add_error(report, prefix.str() + "non-positive group size");
    }
    if (layer.task_group.size() != layer.tasks.size()) {
      add_error(report, prefix.str() + "assignment size mismatch");
      continue;
    }
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const core::TaskId id = layer.tasks[i];
      if (id < 0 || id >= contracted.num_tasks()) {
        add_error(report, prefix.str() + "task id out of range");
        continue;
      }
      ++appearances[static_cast<std::size_t>(id)];
      layer_of[static_cast<std::size_t>(id)] = static_cast<int>(li);
      if (layer.task_group[i] < 0 ||
          layer.task_group[i] >= layer.num_groups()) {
        add_error(report, prefix.str() + "task assigned to missing group");
      }
    }
    // Pairwise independence inside the layer.
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      for (std::size_t j = i + 1; j < layer.tasks.size(); ++j) {
        if (!contracted.independent(layer.tasks[i], layer.tasks[j])) {
          add_error(report,
                    prefix.str() + "dependent tasks share a layer: " +
                        task_ref(contracted, layer.tasks[i]) + " and " +
                        task_ref(contracted, layer.tasks[j]));
        }
      }
    }
  }

  for (core::TaskId id = 0; id < contracted.num_tasks(); ++id) {
    if (contracted.task(id).is_marker()) continue;
    if (appearances[static_cast<std::size_t>(id)] != 1) {
      add_error(report, "task " + task_ref(contracted, id) + " appears " +
                            std::to_string(
                                appearances[static_cast<std::size_t>(id)]) +
                            " times");
    }
  }

  // Layer order respects contracted edges.
  for (core::TaskId id = 0; id < contracted.num_tasks(); ++id) {
    if (contracted.task(id).is_marker()) continue;
    for (core::TaskId s : contracted.successors(id)) {
      if (contracted.task(s).is_marker()) continue;
      if (layer_of[static_cast<std::size_t>(id)] >=
          layer_of[static_cast<std::size_t>(s)]) {
        add_error(report, "edge " + task_ref(contracted, id) + " -> " +
                              task_ref(contracted, s) +
                              " violated by layer order");
      }
    }
  }
  return report;
}

ValidationReport validate(const GanttSchedule& schedule,
                          const core::TaskGraph& graph) {
  ValidationReport report;
  if (static_cast<int>(schedule.slots.size()) != graph.num_tasks()) {
    add_error(report, "one slot per task required");
    return report;
  }

  // Per-core busy intervals.
  std::map<int, std::vector<std::pair<double, double>>> busy;
  constexpr double kEps = 1e-12;

  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    if (graph.task(id).is_marker()) continue;
    const TaskSlot& slot = schedule.slots[static_cast<std::size_t>(id)];
    if (slot.cores.empty()) {
      add_error(report, "task " + task_ref(graph, id) + " has no cores");
      continue;
    }
    for (int c : slot.cores) {
      if (c < 0 || c >= schedule.total_cores) {
        add_error(report,
                  "task " + task_ref(graph, id) + " uses core out of range");
      }
      busy[c].emplace_back(slot.start, slot.finish);
    }
    if (slot.finish < slot.start) {
      add_error(report, "task " + task_ref(graph, id) + " finishes early");
    }
    for (core::TaskId p : graph.predecessors(id)) {
      if (graph.task(p).is_marker()) continue;
      const TaskSlot& ps = schedule.slots[static_cast<std::size_t>(p)];
      if (slot.start + kEps < ps.finish) {
        add_error(report, "task " + task_ref(graph, id) +
                              " starts before predecessor " +
                              task_ref(graph, p) + " finishes");
      }
    }
  }

  for (auto& [c, intervals] : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first + kEps < intervals[i - 1].second) {
        add_error(report, "core " + std::to_string(c) +
                              " executes overlapping tasks");
        break;
      }
    }
  }
  return report;
}

}  // namespace ptask::sched
