#include "ptask/sched/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace ptask::sched {

namespace {

std::string format_layer(const core::TaskGraph& graph,
                         const ScheduledLayer& layer, std::size_t index) {
  std::ostringstream os;
  os << "layer " << index << ": " << layer.tasks.size() << " task(s), "
     << layer.num_groups() << " group(s), sizes [";
  for (std::size_t g = 0; g < layer.group_sizes.size(); ++g) {
    if (g > 0) os << ' ';
    os << layer.group_sizes[g];
  }
  os << "], predicted " << layer.predicted_time << " s\n";
  for (int g = 0; g < layer.num_groups(); ++g) {
    os << "  group " << g << ":";
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      if (layer.task_group[i] == g) {
        os << ' ' << graph.task(layer.tasks[i]).name();
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace

std::string describe(const LayeredSchedule& schedule) {
  std::ostringstream os;
  os << "layered schedule on " << schedule.total_cores << " symbolic cores, "
     << schedule.layers.size() << " layer(s), predicted makespan "
     << schedule.predicted_makespan << " s\n";
  for (std::size_t i = 0; i < schedule.layers.size(); ++i) {
    os << format_layer(schedule.contraction.contracted, schedule.layers[i], i);
  }
  return os.str();
}

std::vector<core::TaskId> Schedule::core_sequence(int core) const {
  std::vector<core::TaskId> tasks;
  for (core::TaskId id = 0; id < num_tasks(); ++id) {
    const TaskSlot& slot = gantt.slots[static_cast<std::size_t>(id)];
    if (std::find(slot.cores.begin(), slot.cores.end(), core) !=
        slot.cores.end()) {
      tasks.push_back(id);
    }
  }
  std::sort(tasks.begin(), tasks.end(), [&](core::TaskId a, core::TaskId b) {
    const TaskSlot& sa = gantt.slots[static_cast<std::size_t>(a)];
    const TaskSlot& sb = gantt.slots[static_cast<std::size_t>(b)];
    if (sa.start != sb.start) return sa.start < sb.start;
    return a < b;
  });
  return tasks;
}

std::size_t common_layer_prefix(const Schedule& a, const Schedule& b) {
  const std::size_t layers = std::min(a.num_layers(), b.num_layers());
  for (std::size_t i = 0; i < layers; ++i) {
    const ScheduledLayer& la = a.layered.layers[i];
    const ScheduledLayer& lb = b.layered.layers[i];
    if (la.tasks != lb.tasks || la.group_sizes != lb.group_sizes ||
        la.task_group != lb.task_group ||
        la.predicted_time != lb.predicted_time) {
      return i;
    }
  }
  return layers;
}

std::string describe(const Schedule& schedule) {
  std::ostringstream os;
  os << "schedule [" << schedule.strategy << "] on " << schedule.total_cores()
     << " symbolic cores, makespan " << schedule.makespan() << " s";
  if (schedule.has_layers()) {
    std::size_t scheduled_tasks = 0;
    for (const ScheduledLayer& layer : schedule.layered.layers) {
      scheduled_tasks += layer.tasks.size();
    }
    os << ", " << schedule.num_layers() << " layer(s), " << scheduled_tasks
       << " scheduled task(s)";
    if (schedule.settled_prefix_layers > 0) {
      os << ", settled prefix " << schedule.settled_prefix_layers
         << " layer(s)";
    }
    os << '\n';
    for (std::size_t i = 0; i < schedule.layered.layers.size(); ++i) {
      if (i == schedule.settled_prefix_layers &&
          schedule.settled_prefix_layers > 0) {
        os << "---- settled prefix ends; repaired suffix below ----\n";
      }
      os << format_layer(schedule.scheduled_graph(),
                         schedule.layered.layers[i], i);
    }
  } else {
    os << " (no layered structure)\n";
  }
  for (const std::string& note : schedule.notes) os << "  " << note << '\n';
  return os.str();
}

}  // namespace ptask::sched
