#include "ptask/sched/schedule.hpp"

#include <sstream>

namespace ptask::sched {

namespace {

std::string format_layer(const core::TaskGraph& graph,
                         const ScheduledLayer& layer, std::size_t index) {
  std::ostringstream os;
  os << "layer " << index << ": " << layer.num_groups() << " group(s), sizes [";
  for (std::size_t g = 0; g < layer.group_sizes.size(); ++g) {
    if (g > 0) os << ' ';
    os << layer.group_sizes[g];
  }
  os << "], predicted " << layer.predicted_time << " s\n";
  for (int g = 0; g < layer.num_groups(); ++g) {
    os << "  group " << g << ":";
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      if (layer.task_group[i] == g) {
        os << ' ' << graph.task(layer.tasks[i]).name();
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace

std::string describe(const LayeredSchedule& schedule) {
  std::ostringstream os;
  os << "layered schedule on " << schedule.total_cores << " symbolic cores, "
     << schedule.layers.size() << " layer(s), predicted makespan "
     << schedule.predicted_makespan << " s\n";
  for (std::size_t i = 0; i < schedule.layers.size(); ++i) {
    os << format_layer(schedule.contraction.contracted, schedule.layers[i], i);
  }
  return os.str();
}

}  // namespace ptask::sched
