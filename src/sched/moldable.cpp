#include "ptask/sched/moldable.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ptask/core/graph_algorithms.hpp"

namespace ptask::sched {

TaskTimeTable::TaskTimeTable(const core::TaskGraph& graph,
                             const cost::CostModel& cost, int total_cores,
                             MoldableCostMode mode)
    : total_cores_(total_cores) {
  if (total_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  times_.resize(static_cast<std::size_t>(graph.num_tasks()));
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    // Orthogonal collectives are inter-task exchanges and never part of
    // T(t, p); price the task without them.
    core::MTask task(graph.task(id).name(), graph.task(id).work_flop());
    task.set_max_cores(graph.task(id).max_cores());
    if (mode == MoldableCostMode::CommAware) {
      for (const core::CollectiveOp& op : graph.task(id).comms()) {
        if (op.scope != core::CommScope::Orthogonal) task.add_comm(op);
      }
    }
    std::vector<double>& row = times_[static_cast<std::size_t>(id)];
    row.resize(static_cast<std::size_t>(total_cores));
    for (int p = 1; p <= total_cores; ++p) {
      row[static_cast<std::size_t>(p - 1)] =
          cost.symbolic_task_time(task, p, 1, total_cores);
    }
  }
}

double TaskTimeTable::time(core::TaskId id, int p) const {
  if (p < 1 || p > total_cores_) throw std::out_of_range("bad core count");
  return times_.at(static_cast<std::size_t>(id))[static_cast<std::size_t>(p - 1)];
}

GanttSchedule list_schedule(const core::TaskGraph& graph,
                            std::span<const int> allocation,
                            const TaskTimeTable& table, double abort_above) {
  const int n = graph.num_tasks();
  const int P = table.total_cores();
  if (static_cast<int>(allocation.size()) != n) {
    throw std::invalid_argument("one allocation entry per task required");
  }

  std::vector<double> task_time(static_cast<std::size_t>(n));
  for (core::TaskId id = 0; id < n; ++id) {
    task_time[static_cast<std::size_t>(id)] =
        table.time(id, allocation[static_cast<std::size_t>(id)]);
  }
  const core::CriticalPathInfo cp = core::critical_path(graph, task_time);

  // Ready tasks ordered by decreasing bottom level.
  std::vector<int> remaining_preds(static_cast<std::size_t>(n));
  std::vector<double> ready_time(static_cast<std::size_t>(n), 0.0);
  std::vector<core::TaskId> ready;
  for (core::TaskId id = 0; id < n; ++id) {
    remaining_preds[static_cast<std::size_t>(id)] = graph.in_degree(id);
    if (remaining_preds[static_cast<std::size_t>(id)] == 0) {
      ready.push_back(id);
    }
  }

  std::vector<double> core_free(static_cast<std::size_t>(P), 0.0);
  // All cores in (free time, index) order -- the order a stable sort of
  // 0..P-1 by free time yields.  Kept incrementally as a flat sorted
  // vector: a placement gives all of its p cores the same new free time
  // (the task's finish), so one compaction pass plus one block insert at
  // the lower bound restores the order in O(P) with no allocations.  CPR
  // runs this scheduler once per trial widening, which is where the
  // difference to re-sorting every core for every task shows.
  std::vector<std::pair<double, int>> free_order(static_cast<std::size_t>(P));
  for (int c = 0; c < P; ++c) {
    free_order[static_cast<std::size_t>(c)] = {0.0, c};
  }
  std::vector<char> pred_core(static_cast<std::size_t>(P), 0);
  std::vector<char> chosen_core(static_cast<std::size_t>(P), 0);
  std::vector<int> pred_list;

  GanttSchedule gantt;
  gantt.total_cores = P;
  gantt.slots.resize(static_cast<std::size_t>(n));

  int scheduled = 0;
  while (!ready.empty()) {
    // Pick the ready task with the largest bottom level.
    const auto it = std::max_element(
        ready.begin(), ready.end(), [&](core::TaskId a, core::TaskId b) {
          return cp.bottom_level[static_cast<std::size_t>(a)] <
                 cp.bottom_level[static_cast<std::size_t>(b)];
        });
    const core::TaskId id = *it;
    ready.erase(it);

    const int p = allocation[static_cast<std::size_t>(id)];
    if (p < 1 || p > P) throw std::invalid_argument("allocation out of range");

    // Cores that become free earliest; among equally free cores, prefer the
    // cores of the task's predecessors (data affinity keeps chains on one
    // set of cores and avoids spurious re-distributions).
    pred_list.clear();
    for (core::TaskId pr : graph.predecessors(id)) {
      for (int c : gantt.slots[static_cast<std::size_t>(pr)].cores) {
        if (pred_core[static_cast<std::size_t>(c)] == 0) {
          pred_core[static_cast<std::size_t>(c)] = 1;
          pred_list.push_back(c);
        }
      }
    }
    // The start time is fixed by the p-th earliest-free core; any core free
    // by then is an equally good pick, so among those the predecessor cores
    // win (affinity costs nothing and avoids re-distribution).  The chosen
    // set is therefore: predecessor cores free by `start` first (in free
    // time order), then the other earliest-free cores -- at least p cores
    // are free by `start` by construction.
    double start = std::max(ready_time[static_cast<std::size_t>(id)],
                            free_order[static_cast<std::size_t>(p - 1)].first);
    TaskSlot& slot = gantt.slots[static_cast<std::size_t>(id)];
    slot.cores.clear();
    // The sorted prefix with free <= start holds every eligible core (at
    // least p of them, since the p-th earliest-free core bounds `start`);
    // walking it visits cores in (free time, index) order, so taking the
    // predecessor cores first and backfilling with the rest reproduces the
    // affinity tie-break exactly.
    for (std::size_t i = 0; i < free_order.size() &&
                            static_cast<int>(slot.cores.size()) < p;
         ++i) {
      if (free_order[i].first > start) break;
      if (pred_core[static_cast<std::size_t>(free_order[i].second)] != 0) {
        slot.cores.push_back(free_order[i].second);
      }
    }
    for (std::size_t i = 0; static_cast<int>(slot.cores.size()) < p; ++i) {
      if (pred_core[static_cast<std::size_t>(free_order[i].second)] == 0) {
        slot.cores.push_back(free_order[i].second);
      }
    }
    for (const int c : pred_list) pred_core[static_cast<std::size_t>(c)] = 0;
    std::sort(slot.cores.begin(), slot.cores.end());
    for (int c : slot.cores) {
      start = std::max(start, core_free[static_cast<std::size_t>(c)]);
    }
    slot.start = start;
    slot.finish = start + task_time[static_cast<std::size_t>(id)];
    // Restore the free order: drop the chosen cores, then merge them back
    // in from the rear -- they all share the finish time and come with
    // ascending indices, so they already form a sorted run.
    for (int c : slot.cores) {
      chosen_core[static_cast<std::size_t>(c)] = 1;
      core_free[static_cast<std::size_t>(c)] = slot.finish;
    }
    auto kept_end = std::remove_if(
        free_order.begin(), free_order.end(), [&](const auto& entry) {
          return chosen_core[static_cast<std::size_t>(entry.second)] != 0;
        });
    auto dst = free_order.end();
    for (std::size_t b = slot.cores.size(); b > 0;) {
      const std::pair<double, int> entry{
          slot.finish, slot.cores[static_cast<std::size_t>(b - 1)]};
      if (kept_end != free_order.begin() && *(kept_end - 1) > entry) {
        *--dst = *(--kept_end);
      } else {
        *--dst = entry;
        --b;
      }
    }
    for (int c : slot.cores) chosen_core[static_cast<std::size_t>(c)] = 0;
    gantt.makespan = std::max(gantt.makespan, slot.finish);
    ++scheduled;
    // Prune-cutoff for trial-and-reject callers: the makespan is monotone
    // in the placements, so exceeding the cutoff now decides the trial.
    // The returned schedule is partial; only its makespan is meaningful.
    if (gantt.makespan > abort_above) return gantt;

    for (core::TaskId s : graph.successors(id)) {
      ready_time[static_cast<std::size_t>(s)] =
          std::max(ready_time[static_cast<std::size_t>(s)], slot.finish);
      if (--remaining_preds[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
      }
    }
  }
  if (scheduled != n) throw std::logic_error("graph contains a cycle");
  return gantt;
}

}  // namespace ptask::sched
