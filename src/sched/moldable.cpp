#include "ptask/sched/moldable.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ptask/core/graph_algorithms.hpp"

namespace ptask::sched {

TaskTimeTable::TaskTimeTable(const core::TaskGraph& graph,
                             const cost::CostModel& cost, int total_cores,
                             MoldableCostMode mode)
    : total_cores_(total_cores) {
  if (total_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  times_.resize(static_cast<std::size_t>(graph.num_tasks()));
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    // Orthogonal collectives are inter-task exchanges and never part of
    // T(t, p); price the task without them.
    core::MTask task(graph.task(id).name(), graph.task(id).work_flop());
    task.set_max_cores(graph.task(id).max_cores());
    if (mode == MoldableCostMode::CommAware) {
      for (const core::CollectiveOp& op : graph.task(id).comms()) {
        if (op.scope != core::CommScope::Orthogonal) task.add_comm(op);
      }
    }
    std::vector<double>& row = times_[static_cast<std::size_t>(id)];
    row.resize(static_cast<std::size_t>(total_cores));
    for (int p = 1; p <= total_cores; ++p) {
      row[static_cast<std::size_t>(p - 1)] =
          cost.symbolic_task_time(task, p, 1, total_cores);
    }
  }
}

double TaskTimeTable::time(core::TaskId id, int p) const {
  if (p < 1 || p > total_cores_) throw std::out_of_range("bad core count");
  return times_.at(static_cast<std::size_t>(id))[static_cast<std::size_t>(p - 1)];
}

GanttSchedule list_schedule(const core::TaskGraph& graph,
                            std::span<const int> allocation,
                            const TaskTimeTable& table) {
  const int n = graph.num_tasks();
  const int P = table.total_cores();
  if (static_cast<int>(allocation.size()) != n) {
    throw std::invalid_argument("one allocation entry per task required");
  }

  std::vector<double> task_time(static_cast<std::size_t>(n));
  for (core::TaskId id = 0; id < n; ++id) {
    task_time[static_cast<std::size_t>(id)] =
        table.time(id, allocation[static_cast<std::size_t>(id)]);
  }
  const core::CriticalPathInfo cp = core::critical_path(graph, task_time);

  // Ready tasks ordered by decreasing bottom level.
  std::vector<int> remaining_preds(static_cast<std::size_t>(n));
  std::vector<double> ready_time(static_cast<std::size_t>(n), 0.0);
  std::vector<core::TaskId> ready;
  for (core::TaskId id = 0; id < n; ++id) {
    remaining_preds[static_cast<std::size_t>(id)] = graph.in_degree(id);
    if (remaining_preds[static_cast<std::size_t>(id)] == 0) {
      ready.push_back(id);
    }
  }

  std::vector<double> core_free(static_cast<std::size_t>(P), 0.0);
  std::vector<int> core_order(static_cast<std::size_t>(P));

  GanttSchedule gantt;
  gantt.total_cores = P;
  gantt.slots.resize(static_cast<std::size_t>(n));

  int scheduled = 0;
  while (!ready.empty()) {
    // Pick the ready task with the largest bottom level.
    const auto it = std::max_element(
        ready.begin(), ready.end(), [&](core::TaskId a, core::TaskId b) {
          return cp.bottom_level[static_cast<std::size_t>(a)] <
                 cp.bottom_level[static_cast<std::size_t>(b)];
        });
    const core::TaskId id = *it;
    ready.erase(it);

    const int p = allocation[static_cast<std::size_t>(id)];
    if (p < 1 || p > P) throw std::invalid_argument("allocation out of range");

    // Cores that become free earliest; among equally free cores, prefer the
    // cores of the task's predecessors (data affinity keeps chains on one
    // set of cores and avoids spurious re-distributions).
    std::vector<bool> pred_core(static_cast<std::size_t>(P), false);
    for (core::TaskId pr : graph.predecessors(id)) {
      for (int c : gantt.slots[static_cast<std::size_t>(pr)].cores) {
        pred_core[static_cast<std::size_t>(c)] = true;
      }
    }
    std::iota(core_order.begin(), core_order.end(), 0);
    std::stable_sort(core_order.begin(), core_order.end(), [&](int a, int b) {
      return core_free[static_cast<std::size_t>(a)] <
             core_free[static_cast<std::size_t>(b)];
    });
    // The start time is fixed by the p-th earliest-free core; any core free
    // by then is an equally good pick, so among those the predecessor cores
    // win (affinity costs nothing and avoids re-distribution).
    double start = std::max(
        ready_time[static_cast<std::size_t>(id)],
        core_free[static_cast<std::size_t>(
            core_order[static_cast<std::size_t>(p - 1)])]);
    std::stable_sort(core_order.begin(), core_order.end(), [&](int a, int b) {
      const bool ea = core_free[static_cast<std::size_t>(a)] <= start;
      const bool eb = core_free[static_cast<std::size_t>(b)] <= start;
      if (ea != eb) return ea;
      if (ea && eb) {
        const bool pa = pred_core[static_cast<std::size_t>(a)];
        const bool pb = pred_core[static_cast<std::size_t>(b)];
        if (pa != pb) return pa;
        return false;  // keep free-time order among equals
      }
      return core_free[static_cast<std::size_t>(a)] <
             core_free[static_cast<std::size_t>(b)];
    });
    TaskSlot& slot = gantt.slots[static_cast<std::size_t>(id)];
    slot.cores.assign(core_order.begin(), core_order.begin() + p);
    std::sort(slot.cores.begin(), slot.cores.end());
    for (int c : slot.cores) {
      start = std::max(start, core_free[static_cast<std::size_t>(c)]);
    }
    slot.start = start;
    slot.finish = start + task_time[static_cast<std::size_t>(id)];
    for (int c : slot.cores) {
      core_free[static_cast<std::size_t>(c)] = slot.finish;
    }
    gantt.makespan = std::max(gantt.makespan, slot.finish);
    ++scheduled;

    for (core::TaskId s : graph.successors(id)) {
      ready_time[static_cast<std::size_t>(s)] =
          std::max(ready_time[static_cast<std::size_t>(s)], slot.finish);
      if (--remaining_preds[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
      }
    }
  }
  if (scheduled != n) throw std::logic_error("graph contains a cycle");
  return gantt;
}

}  // namespace ptask::sched
