#include "ptask/sched/batch.hpp"

#include "ptask/sched/registry.hpp"

namespace ptask::sched {

BatchScheduler::BatchScheduler(const std::string& strategy,
                               const cost::CostModel& base)
    : strategy_(strategy),
      cached_(base, cost::CachedCostModel::KeyMode::Content),
      scheduler_(SchedulerRegistry::instance().make(strategy, cached_)) {}

Schedule BatchScheduler::run(const core::TaskGraph& graph,
                             int total_cores) const {
  return scheduler_->run(graph, total_cores);
}

}  // namespace ptask::sched
