#include "ptask/sched/layer_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::sched {

std::vector<int> equal_group_sizes(int total, int g) {
  if (g <= 0 || total < g) throw std::invalid_argument("bad group count");
  std::vector<int> sizes(static_cast<std::size_t>(g), total / g);
  for (int i = 0; i < total % g; ++i) sizes[static_cast<std::size_t>(i)] += 1;
  return sizes;
}

std::vector<int> proportional_group_sizes(int total,
                                          const std::vector<double>& weights) {
  const int g = static_cast<int>(weights.size());
  if (g <= 0 || total < g) throw std::invalid_argument("bad group count");
  double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (sum <= 0.0) return equal_group_sizes(total, g);

  // Give every group its floor share (but at least 1 core), then distribute
  // the remaining cores by largest fractional remainder.
  std::vector<int> sizes(static_cast<std::size_t>(g), 0);
  std::vector<double> remainder(static_cast<std::size_t>(g), 0.0);
  int assigned = 0;
  for (int i = 0; i < g; ++i) {
    const double share =
        static_cast<double>(total) * weights[static_cast<std::size_t>(i)] / sum;
    int floor_share = static_cast<int>(share);
    floor_share = std::max(floor_share, 1);
    sizes[static_cast<std::size_t>(i)] = floor_share;
    remainder[static_cast<std::size_t>(i)] = share - floor_share;
    assigned += floor_share;
  }
  std::vector<int> order(static_cast<std::size_t>(g));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return remainder[static_cast<std::size_t>(a)] >
           remainder[static_cast<std::size_t>(b)];
  });
  // Add missing cores to the largest remainders; remove surplus cores from
  // the smallest remainders (never below 1).
  int idx = 0;
  while (assigned < total) {
    sizes[static_cast<std::size_t>(order[static_cast<std::size_t>(idx % g)])]++;
    ++assigned;
    ++idx;
  }
  idx = g - 1;
  while (assigned > total) {
    int& s = sizes[static_cast<std::size_t>(
        order[static_cast<std::size_t>(((idx % g) + g) % g)])];
    if (s > 1) {
      --s;
      --assigned;
    }
    --idx;
  }
  return sizes;
}

ScheduledLayer LayerScheduler::schedule_layer(
    const core::TaskGraph& graph, const std::vector<core::TaskId>& tasks,
    int total_cores) const {
  const int P = total_cores;
  const int n_tasks = static_cast<int>(tasks.size());
  int g_limit = std::min(P, n_tasks);
  if (options_.max_groups > 0) g_limit = std::min(g_limit, options_.max_groups);
  int g_first = 1;
  if (options_.fixed_groups > 0) {
    g_first = g_limit = std::min(options_.fixed_groups, std::min(P, n_tasks));
  }

  ScheduledLayer best;
  double best_time = std::numeric_limits<double>::infinity();

  // Tasks in decreasing order of a size-independent proxy (their sequential
  // work); the per-g loop refines with the actual parallel time.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);

  {
    obs::ScopedSpan search_span(obs::SpanKind::Scheduler,
                                "sched.group_search");
    for (int g = g_first; g <= g_limit; ++g) {
      const std::vector<int> sizes = equal_group_sizes(P, g);

      // Sort tasks by decreasing execution time on a group of this size.
      std::vector<double> time(tasks.size());
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        time[i] =
            cost_->symbolic_task_time(graph.task(tasks[i]), sizes[0], g, P);
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return time[a] > time[b];
      });

      // Greedy assignment: each task onto the group with the smallest
      // accumulated execution time (modified Sahni algorithm, line 10).
      std::vector<double> accumulated(static_cast<std::size_t>(g), 0.0);
      std::vector<int> task_group(tasks.size(), 0);
      for (std::size_t i : order) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(accumulated.begin(), accumulated.end()) -
            accumulated.begin());
        const double t = cost_->symbolic_task_time(graph.task(tasks[i]),
                                                   sizes[target], g, P);
        accumulated[target] += t;
        task_group[i] = static_cast<int>(target);
      }
      const double t_act =
          *std::max_element(accumulated.begin(), accumulated.end());
      if (t_act < best_time) {
        best_time = t_act;
        best.tasks = tasks;
        best.group_sizes = sizes;
        best.task_group = task_group;
        best.predicted_time = t_act;
      }
    }
  }

  if (options_.adjust_group_sizes && best.num_groups() > 1) {
    obs::ScopedSpan adjust_span(obs::SpanKind::Scheduler, "sched.adjust");
    // Accumulated *sequential* work per group (paper: Tseq(G_l)).
    std::vector<double> work(static_cast<std::size_t>(best.num_groups()), 0.0);
    for (std::size_t i = 0; i < best.tasks.size(); ++i) {
      work[static_cast<std::size_t>(best.task_group[i])] +=
          graph.task(best.tasks[i]).work_flop();
    }
    const std::vector<int> adjusted = proportional_group_sizes(P, work);
    best.group_sizes = adjusted;
    // Re-evaluate the layer time with the adjusted sizes.
    std::vector<double> accumulated(static_cast<std::size_t>(best.num_groups()),
                                    0.0);
    for (std::size_t i = 0; i < best.tasks.size(); ++i) {
      const std::size_t gidx = static_cast<std::size_t>(best.task_group[i]);
      accumulated[gidx] += cost_->symbolic_task_time(
          graph.task(best.tasks[i]), best.group_sizes[gidx], best.num_groups(),
          P);
    }
    best.predicted_time =
        *std::max_element(accumulated.begin(), accumulated.end());
  }
  return best;
}

LayeredSchedule LayerScheduler::schedule(const core::TaskGraph& graph,
                                         int total_cores) const {
  if (total_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  static obs::Counter& invocations = obs::metrics().counter("sched.invocations");
  invocations.add();
  obs::ScopedSpan schedule_span(obs::SpanKind::Scheduler, "sched.schedule");

  LayeredSchedule result;
  result.total_cores = total_cores;
  {
    obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.chain_contraction");
    if (options_.contract_chains) {
      result.contraction = core::contract_linear_chains(graph);
    } else {
      // Identity contraction.
      result.contraction.contracted = graph;
      result.contraction.members.resize(
          static_cast<std::size_t>(graph.num_tasks()));
      result.contraction.representative.resize(
          static_cast<std::size_t>(graph.num_tasks()));
      for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
        result.contraction.members[static_cast<std::size_t>(id)] = {id};
        result.contraction.representative[static_cast<std::size_t>(id)] = id;
      }
    }
  }

  const core::TaskGraph& contracted = result.contraction.contracted;
  std::vector<std::vector<core::TaskId>> layers;
  {
    obs::ScopedSpan span(obs::SpanKind::Scheduler, "sched.layer_partition");
    layers = core::greedy_layers(contracted);
  }
  result.layers.reserve(layers.size());
  for (const std::vector<core::TaskId>& layer_tasks : layers) {
    ScheduledLayer layer =
        schedule_layer(contracted, layer_tasks, total_cores);
    result.predicted_makespan += layer.predicted_time;
    result.layers.push_back(std::move(layer));
  }
  return result;
}

}  // namespace ptask::sched
