#include "ptask/sched/layer_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ptask/sched/pipeline.hpp"

namespace ptask::sched {

std::vector<int> equal_group_sizes(int total, int g) {
  if (g <= 0 || total < g) throw std::invalid_argument("bad group count");
  std::vector<int> sizes(static_cast<std::size_t>(g), total / g);
  for (int i = 0; i < total % g; ++i) sizes[static_cast<std::size_t>(i)] += 1;
  return sizes;
}

std::vector<int> proportional_group_sizes(int total,
                                          const std::vector<double>& weights) {
  const int g = static_cast<int>(weights.size());
  if (g <= 0 || total < g) throw std::invalid_argument("bad group count");
  double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (sum <= 0.0) return equal_group_sizes(total, g);

  // Give every group its floor share (but at least 1 core), then distribute
  // the remaining cores by largest fractional remainder.
  std::vector<int> sizes(static_cast<std::size_t>(g), 0);
  std::vector<double> remainder(static_cast<std::size_t>(g), 0.0);
  int assigned = 0;
  for (int i = 0; i < g; ++i) {
    const double share =
        static_cast<double>(total) * weights[static_cast<std::size_t>(i)] / sum;
    int floor_share = static_cast<int>(share);
    floor_share = std::max(floor_share, 1);
    sizes[static_cast<std::size_t>(i)] = floor_share;
    remainder[static_cast<std::size_t>(i)] = share - floor_share;
    assigned += floor_share;
  }
  std::vector<int> order(static_cast<std::size_t>(g));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return remainder[static_cast<std::size_t>(a)] >
           remainder[static_cast<std::size_t>(b)];
  });
  // Add missing cores to the largest remainders; remove surplus cores from
  // the smallest remainders (never below 1).
  int idx = 0;
  while (assigned < total) {
    sizes[static_cast<std::size_t>(order[static_cast<std::size_t>(idx % g)])]++;
    ++assigned;
    ++idx;
  }
  idx = g - 1;
  while (assigned > total) {
    int& s = sizes[static_cast<std::size_t>(
        order[static_cast<std::size_t>(((idx % g) + g) % g)])];
    if (s > 1) {
      --s;
      --assigned;
    }
    --idx;
  }
  return sizes;
}

LayeredSchedule LayerScheduler::schedule(const core::TaskGraph& graph,
                                         int total_cores) const {
  return Pipeline::algorithm1(*cost_, options_).run_layered(graph, total_cores);
}

}  // namespace ptask::sched
