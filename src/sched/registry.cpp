#include "ptask/sched/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "ptask/sched/cpa_scheduler.hpp"
#include "ptask/sched/cpr_scheduler.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/portfolio.hpp"

namespace ptask::sched {

namespace {

/// Adapts the allocation-based schedulers (anything with a
/// `MoldableResult schedule(graph, cores) const`) to the Scheduler
/// interface via canonical().
template <typename Impl>
class MoldableAdapter final : public Scheduler {
 public:
  MoldableAdapter(const cost::CostModel& cost, std::string name)
      : impl_(cost), name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  Schedule run(const core::TaskGraph& graph, int total_cores) const override {
    return canonical(graph, impl_.schedule(graph, total_cores), name_);
  }

 private:
  Impl impl_;
  std::string name_;
};

/// Adapts DataParallelScheduler (layered result, no group search).
class DataParallelAdapter final : public Scheduler {
 public:
  explicit DataParallelAdapter(const cost::CostModel& cost)
      : impl_(cost), cost_(&cost) {}
  std::string_view name() const override { return "dp"; }
  Schedule run(const core::TaskGraph& graph, int total_cores) const override {
    return canonical(impl_.schedule(graph, total_cores), *cost_, "dp");
  }

 private:
  DataParallelScheduler impl_;
  const cost::CostModel* cost_;
};

}  // namespace

SchedulerRegistry::SchedulerRegistry() {
  register_strategy("layer", [](const cost::CostModel& cost) {
    return std::make_unique<Pipeline>(Pipeline::algorithm1(cost));
  });
  register_strategy("cpa", [](const cost::CostModel& cost) {
    return std::make_unique<MoldableAdapter<CpaScheduler>>(cost, "cpa");
  });
  register_strategy("mcpa", [](const cost::CostModel& cost) {
    return std::make_unique<MoldableAdapter<McpaScheduler>>(cost, "mcpa");
  });
  register_strategy("cpr", [](const cost::CostModel& cost) {
    return std::make_unique<MoldableAdapter<CprScheduler>>(cost, "cpr");
  });
  register_strategy("dp", [](const cost::CostModel& cost) {
    return std::make_unique<DataParallelAdapter>(cost);
  });
  register_strategy("portfolio", [](const cost::CostModel& cost) {
    return std::make_unique<PortfolioScheduler>(cost);
  });
  register_strategy("incremental", [](const cost::CostModel& cost) {
    return std::make_unique<IncrementalScheduler>(cost);
  });
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry;
  return registry;
}

void SchedulerRegistry::register_strategy(std::string name,
                                          SchedulerFactory factory) {
  for (auto& [existing, existing_factory] : entries_) {
    if (existing == name) {
      existing_factory = std::move(factory);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(factory));
}

bool SchedulerRegistry::contains(std::string_view name) const {
  for (const auto& [existing, factory] : entries_) {
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [name, factory] : entries_) result.push_back(name);
  return result;
}

std::unique_ptr<Scheduler> SchedulerRegistry::make(
    std::string_view name, const cost::CostModel& cost) const {
  for (const auto& [existing, factory] : entries_) {
    if (existing == name) return factory(cost);
  }
  std::ostringstream message;
  message << "unknown scheduler '" << name << "'; known:";
  for (const auto& [existing, factory] : entries_) message << ' ' << existing;
  throw std::invalid_argument(message.str());
}

}  // namespace ptask::sched
