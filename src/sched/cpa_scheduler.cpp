#include "ptask/sched/cpa_scheduler.hpp"

#include <algorithm>

#include "ptask/core/graph_algorithms.hpp"

namespace ptask::sched {

namespace {

/// Shared CPA allocation loop; `alloc_cap[id]` bounds each task's cores.
MoldableResult cpa_allocate_and_schedule(const core::TaskGraph& graph, int P,
                                    const TaskTimeTable& table,
                                    const std::vector<int>& alloc_cap) {
  const int n = graph.num_tasks();
  MoldableResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 1);

  std::vector<double> task_time(static_cast<std::size_t>(n));
  auto refresh_times = [&] {
    for (core::TaskId id = 0; id < n; ++id) {
      task_time[static_cast<std::size_t>(id)] =
          table.time(id, result.allocation[static_cast<std::size_t>(id)]);
    }
  };
  auto average_area = [&] {
    double area = 0.0;
    for (core::TaskId id = 0; id < n; ++id) {
      area += task_time[static_cast<std::size_t>(id)] *
              result.allocation[static_cast<std::size_t>(id)];
    }
    return area / static_cast<double>(P);
  };

  refresh_times();
  while (true) {
    const core::CriticalPathInfo cp = core::critical_path(graph, task_time);
    if (cp.length <= average_area()) break;

    core::TaskId best = core::kInvalidTask;
    double best_gain = 0.0;
    for (core::TaskId id : cp.path) {
      const int p = result.allocation[static_cast<std::size_t>(id)];
      if (p >= alloc_cap[static_cast<std::size_t>(id)] ||
          p >= graph.task(id).max_cores()) {
        continue;
      }
      if (table.time(id, p + 1) >= task_time[static_cast<std::size_t>(id)]) {
        continue;
      }
      const double gain = task_time[static_cast<std::size_t>(id)] / p -
                          table.time(id, p + 1) / (p + 1);
      if (best == core::kInvalidTask || gain > best_gain) {
        best = id;
        best_gain = gain;
      }
    }
    if (best == core::kInvalidTask || best_gain <= 0.0) break;
    result.allocation[static_cast<std::size_t>(best)] += 1;
    task_time[static_cast<std::size_t>(best)] =
        table.time(best, result.allocation[static_cast<std::size_t>(best)]);
  }

  result.schedule = list_schedule(graph, result.allocation, table);
  return result;
}

}  // namespace

MoldableResult CpaScheduler::schedule(const core::TaskGraph& graph,
                                 int total_cores) const {
  const TaskTimeTable table(graph, *cost_, total_cores, mode_);
  const std::vector<int> cap(static_cast<std::size_t>(graph.num_tasks()),
                             total_cores);
  return cpa_allocate_and_schedule(graph, total_cores, table, cap);
}


MoldableResult McpaScheduler::schedule(const core::TaskGraph& graph,
                                  int total_cores) const {
  const TaskTimeTable table(graph, *cost_, total_cores, mode_);
  // Level-width bound: a task in a precedence level of width w may use at
  // most ceil(P / w) cores, so the level as a whole fits the machine.
  std::vector<int> cap(static_cast<std::size_t>(graph.num_tasks()), 1);
  for (const std::vector<core::TaskId>& level : core::greedy_layers(graph)) {
    const int width = static_cast<int>(level.size());
    const int bound =
        std::max(1, (total_cores + width - 1) / std::max(1, width));
    for (core::TaskId id : level) {
      cap[static_cast<std::size_t>(id)] = bound;
    }
  }
  return cpa_allocate_and_schedule(graph, total_cores, table, cap);
}

}  // namespace ptask::sched
