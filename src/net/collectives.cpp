#include "ptask/net/collectives.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ptask::net {

namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

void require_ranks(int nranks) {
  if (nranks <= 0) throw std::invalid_argument("rank count must be positive");
}

}  // namespace

MessageSchedule binomial_bcast(int nranks, int root, std::size_t bytes) {
  require_ranks(nranks);
  if (root < 0 || root >= nranks) throw std::invalid_argument("bad root");
  MessageSchedule schedule;
  if (nranks == 1) return schedule;
  // MPICH-style binomial tree with *descending* distances (work in a
  // rotated rank space where the root is rank 0): the root first reaches the
  // farthest half, and the final -- and largest -- round exchanges between
  // *neighbouring* ranks, which is what lets a consecutive mapping keep the
  // bulk of the tree inside cluster nodes.
  int top = 1;
  while (top < nranks) top <<= 1;
  for (int dist = top / 2; dist >= 1; dist >>= 1) {
    Round round;
    // Holders before this round are the multiples of 2*dist.
    for (int r = 0; r < nranks; r += 2 * dist) {
      const int partner = r + dist;
      if (partner >= nranks) continue;
      round.messages.push_back(Message{(r + root) % nranks,
                                       (partner + root) % nranks, bytes});
    }
    if (!round.messages.empty()) schedule.push_back(std::move(round));
  }
  return schedule;
}

MessageSchedule ring_allgather(int nranks, std::size_t bytes_per_rank) {
  require_ranks(nranks);
  MessageSchedule schedule;
  // Round k: rank r sends block (r - k) mod n to (r + 1) mod n.  The block
  // identity does not affect cost, only the (src, dst, size) pattern does.
  for (int k = 0; k + 1 < nranks; ++k) {
    Round round;
    round.messages.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      round.messages.push_back(Message{r, (r + 1) % nranks, bytes_per_rank});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

MessageSchedule recursive_doubling_allgather(int nranks,
                                             std::size_t bytes_per_rank) {
  require_ranks(nranks);
  if (!is_power_of_two(nranks)) {
    throw std::invalid_argument(
        "recursive doubling requires a power-of-two rank count");
  }
  MessageSchedule schedule;
  for (int dist = 1; dist < nranks; dist <<= 1) {
    Round round;
    const std::size_t bytes = bytes_per_rank * static_cast<std::size_t>(dist);
    for (int r = 0; r < nranks; ++r) {
      const int partner = r ^ dist;
      round.messages.push_back(Message{r, partner, bytes});
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

MessageSchedule allgather(int nranks, std::size_t bytes_per_rank,
                          std::size_t rd_threshold_bytes) {
  require_ranks(nranks);
  if (nranks == 1) return {};
  const std::size_t total = bytes_per_rank * static_cast<std::size_t>(nranks);
  if (total < rd_threshold_bytes && is_power_of_two(nranks)) {
    return recursive_doubling_allgather(nranks, bytes_per_rank);
  }
  return ring_allgather(nranks, bytes_per_rank);
}

MessageSchedule binomial_reduce(int nranks, int root, std::size_t bytes) {
  MessageSchedule schedule = binomial_bcast(nranks, root, bytes);
  // A binomial reduce is the bcast tree run backwards with reversed edges.
  std::reverse(schedule.begin(), schedule.end());
  for (Round& round : schedule) {
    for (Message& m : round.messages) std::swap(m.src, m.dst);
  }
  return schedule;
}

MessageSchedule allreduce(int nranks, std::size_t bytes) {
  require_ranks(nranks);
  if (nranks == 1) return {};
  if (is_power_of_two(nranks)) {
    MessageSchedule schedule;
    for (int dist = 1; dist < nranks; dist <<= 1) {
      Round round;
      for (int r = 0; r < nranks; ++r) {
        round.messages.push_back(Message{r, r ^ dist, bytes});
      }
      schedule.push_back(std::move(round));
    }
    return schedule;
  }
  MessageSchedule schedule = binomial_reduce(nranks, 0, bytes);
  MessageSchedule bcast = binomial_bcast(nranks, 0, bytes);
  schedule.insert(schedule.end(), bcast.begin(), bcast.end());
  return schedule;
}

MessageSchedule barrier(int nranks) { return allreduce(nranks, 0); }

MessageSchedule ring_exchange(int nranks, std::size_t bytes) {
  require_ranks(nranks);
  if (nranks == 1) return {};
  MessageSchedule schedule(2);
  for (int r = 0; r < nranks; ++r) {
    schedule[0].messages.push_back(Message{r, (r + 1) % nranks, bytes});
    schedule[1].messages.push_back(
        Message{r, (r + nranks - 1) % nranks, bytes});
  }
  return schedule;
}

MessageSchedule redistribution_rounds(const std::vector<Message>& transfers) {
  // Greedy scheduling: place each transfer in the earliest round where
  // neither its source is already sending nor its destination receiving.
  MessageSchedule schedule;
  std::vector<std::map<int, bool>> senders, receivers;
  for (const Message& m : transfers) {
    std::size_t round = 0;
    for (; round < schedule.size(); ++round) {
      if (!senders[round].count(m.src) && !receivers[round].count(m.dst)) {
        break;
      }
    }
    if (round == schedule.size()) {
      schedule.emplace_back();
      senders.emplace_back();
      receivers.emplace_back();
    }
    schedule[round].messages.push_back(m);
    senders[round][m.src] = true;
    receivers[round][m.dst] = true;
  }
  return schedule;
}

std::size_t schedule_bytes(const MessageSchedule& schedule) {
  std::size_t total = 0;
  for (const Round& round : schedule) {
    for (const Message& m : round.messages) total += m.bytes;
  }
  return total;
}

}  // namespace ptask::net
