#include "ptask/net/link_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace ptask::net {

namespace {

int ceil_log2(int n) {
  int bits = 0;
  for (int v = 1; v < n; v <<= 1) ++bits;
  return bits;
}

}  // namespace

double LinkModel::round_time(const Round& round,
                             std::span<const int> placement,
                             TrafficStats* stats) const {
  const arch::Machine& m = *machine_;
  double max_message_time = 0.0;
  // Per-node NIC byte counters for this round (egress and ingress).
  std::unordered_map<int, std::size_t> egress, ingress;
  double max_inter_latency = 0.0;

  for (const Message& msg : round.messages) {
    if (msg.src < 0 || msg.dst < 0 ||
        static_cast<std::size_t>(msg.src) >= placement.size() ||
        static_cast<std::size_t>(msg.dst) >= placement.size()) {
      throw std::out_of_range("message rank outside placement");
    }
    if (msg.src == msg.dst) continue;  // self-message: free
    const arch::CoreId a = m.core_at(placement[msg.src]);
    const arch::CoreId b = m.core_at(placement[msg.dst]);
    const arch::CommLevel level = m.comm_level(a, b);
    const arch::LinkParams& link = m.link(level);
    max_message_time = std::max(max_message_time, link.transfer_time(msg.bytes));
    if (stats != nullptr) {
      ++stats->messages;
      switch (level) {
        case arch::CommLevel::SameProcessor:
          stats->bytes_same_processor += msg.bytes;
          break;
        case arch::CommLevel::SameNode:
          stats->bytes_same_node += msg.bytes;
          break;
        case arch::CommLevel::InterNode:
          stats->bytes_inter_node += msg.bytes;
          break;
      }
    }
    if (level == arch::CommLevel::InterNode) {
      egress[a.node] += msg.bytes;
      ingress[b.node] += msg.bytes;
      max_inter_latency = std::max(max_inter_latency, link.latency_s);
    }
  }

  // NIC serialization: all inter-node bytes of one node share its NIC.
  std::size_t max_nic_bytes = 0;
  for (const auto& [node, bytes] : egress) {
    max_nic_bytes = std::max(max_nic_bytes, bytes);
  }
  for (const auto& [node, bytes] : ingress) {
    max_nic_bytes = std::max(max_nic_bytes, bytes);
  }
  double nic_time = 0.0;
  if (max_nic_bytes > 0) {
    nic_time = max_inter_latency +
               static_cast<double>(max_nic_bytes) /
                   m.link(arch::CommLevel::InterNode).bandwidth_Bps;
  }
  return std::max(max_message_time, nic_time);
}

double LinkModel::schedule_time(const MessageSchedule& schedule,
                                std::span<const int> placement,
                                TrafficStats* stats) const {
  double total = 0.0;
  for (const Round& round : schedule) {
    total += round_time(round, placement, stats);
  }
  return total;
}

double LinkModel::concurrent_schedule_time(
    std::span<const MessageSchedule> schedules,
    std::span<const std::vector<int>> placements, TrafficStats* stats) const {
  if (schedules.size() != placements.size()) {
    throw std::invalid_argument("one placement per schedule required");
  }
  std::size_t max_rounds = 0;
  for (const MessageSchedule& s : schedules) {
    max_rounds = std::max(max_rounds, s.size());
  }
  // Merge round i of every schedule into one global round with ranks
  // translated to a global placement.
  std::vector<int> global_placement;
  std::vector<std::size_t> offset(schedules.size(), 0);
  for (std::size_t g = 0; g < schedules.size(); ++g) {
    offset[g] = global_placement.size();
    global_placement.insert(global_placement.end(), placements[g].begin(),
                            placements[g].end());
  }
  double total = 0.0;
  for (std::size_t r = 0; r < max_rounds; ++r) {
    Round merged;
    for (std::size_t g = 0; g < schedules.size(); ++g) {
      if (r >= schedules[g].size()) continue;
      for (const Message& msg : schedules[g][r].messages) {
        merged.messages.push_back(
            Message{msg.src + static_cast<int>(offset[g]),
                    msg.dst + static_cast<int>(offset[g]), msg.bytes});
      }
    }
    total += round_time(merged, global_placement, stats);
  }
  return total;
}

double bcast_time_uniform(int q, std::size_t bytes,
                          const arch::LinkParams& link) {
  if (q <= 1) return 0.0;
  return static_cast<double>(ceil_log2(q)) * link.transfer_time(bytes);
}

double allgather_time_uniform(int q, std::size_t bytes_per_rank,
                              const arch::LinkParams& link) {
  if (q <= 1) return 0.0;
  // Ring: q-1 rounds of one block each (the large-message regime that
  // dominates the benchmarks).
  return static_cast<double>(q - 1) * link.transfer_time(bytes_per_rank);
}

double allreduce_time_uniform(int q, std::size_t bytes,
                              const arch::LinkParams& link) {
  if (q <= 1) return 0.0;
  return static_cast<double>(ceil_log2(q)) * link.transfer_time(bytes);
}

double barrier_time_uniform(int q, const arch::LinkParams& link) {
  if (q <= 1) return 0.0;
  return static_cast<double>(ceil_log2(q)) * link.latency_s;
}

double exchange_time_uniform(int q, std::size_t bytes,
                             const arch::LinkParams& link) {
  if (q <= 1) return 0.0;
  return 2.0 * link.transfer_time(bytes);
}

}  // namespace ptask::net
