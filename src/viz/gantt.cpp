#include "ptask/viz/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <iomanip>
#include <sstream>

namespace ptask::viz {

namespace {

char task_letter(core::TaskId id) {
  // a..z, A..Z, then '*' for very large graphs.
  if (id < 26) return static_cast<char>('a' + id);
  if (id < 52) return static_cast<char>('A' + id - 26);
  return '*';
}

/// Per-core list of (start, end, task) slots, sorted by start.
std::vector<std::vector<std::tuple<double, double, core::TaskId>>>
core_timelines(const core::TaskGraph& graph,
               const sched::GanttSchedule& schedule) {
  std::vector<std::vector<std::tuple<double, double, core::TaskId>>> rows(
      static_cast<std::size_t>(schedule.total_cores));
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    if (graph.task(id).is_marker()) continue;
    const sched::TaskSlot& slot = schedule.slots[static_cast<std::size_t>(id)];
    for (int c : slot.cores) {
      rows[static_cast<std::size_t>(c)].emplace_back(slot.start, slot.finish,
                                                     id);
    }
  }
  for (auto& row : rows) std::sort(row.begin(), row.end());
  return rows;
}

/// Groups consecutive identical rows; returns (first_core, last_core, row).
template <typename Row>
std::vector<std::tuple<int, int, const Row*>> collapse(
    const std::vector<Row>& rows, bool enabled) {
  std::vector<std::tuple<int, int, const Row*>> out;
  for (std::size_t c = 0; c < rows.size(); ++c) {
    if (enabled && !out.empty() && *std::get<2>(out.back()) == rows[c]) {
      std::get<1>(out.back()) = static_cast<int>(c);
    } else {
      out.emplace_back(static_cast<int>(c), static_cast<int>(c), &rows[c]);
    }
  }
  return out;
}

std::string core_range_label(int first, int last) {
  std::ostringstream os;
  if (first == last) {
    os << "core " << first;
  } else {
    os << "cores " << first << "-" << last;
  }
  return os.str();
}

}  // namespace

std::string ascii_gantt(const core::TaskGraph& graph,
                        const sched::GanttSchedule& schedule,
                        const RenderOptions& options) {
  const double makespan = std::max(schedule.makespan, 1e-30);
  const int width = std::max(options.width, 8);
  const auto rows = core_timelines(graph, schedule);
  const auto bands = collapse(rows, options.collapse_identical_rows);

  std::ostringstream os;
  os << "gantt: " << schedule.total_cores << " cores, makespan " << makespan
     << " s, 1 column = " << makespan / width << " s\n";
  for (const auto& [first, last, row] : bands) {
    std::string line(static_cast<std::size_t>(width), '.');
    for (const auto& [start, end, id] : *row) {
      int lo = static_cast<int>(std::floor(start / makespan * width));
      int hi = static_cast<int>(std::ceil(end / makespan * width));
      lo = std::clamp(lo, 0, width - 1);
      hi = std::clamp(hi, lo + 1, width);
      for (int x = lo; x < hi; ++x) {
        line[static_cast<std::size_t>(x)] = task_letter(id);
      }
    }
    os << std::setw(14) << core_range_label(first, last) << " |" << line
       << "|\n";
  }
  // Legend.
  os << "legend:";
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    if (graph.task(id).is_marker()) continue;
    os << ' ' << task_letter(id) << '=' << graph.task(id).name();
  }
  os << '\n';
  return os.str();
}

std::string svg_gantt(const core::TaskGraph& graph,
                      const sched::GanttSchedule& schedule,
                      const RenderOptions& options) {
  const double makespan = std::max(schedule.makespan, 1e-30);
  const auto rows = core_timelines(graph, schedule);
  const auto bands = collapse(rows, options.collapse_identical_rows);
  const int label_px = 90;
  const int width = options.svg_width_px;
  const int row_h = options.svg_row_px;
  const int height = static_cast<int>(bands.size()) * row_h + 30;

  // A small qualitative palette, cycled by task id.
  static const char* kColors[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
                                  "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
                                  "#9c755f", "#bab0ac"};

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='"
     << label_px + width + 10 << "' height='" << height << "'>\n";
  os << "<style>text{font:10px sans-serif;}</style>\n";
  int y = 5;
  for (const auto& [first, last, row] : bands) {
    os << "<text x='2' y='" << y + row_h - 6 << "'>"
       << core_range_label(first, last) << "</text>\n";
    for (const auto& [start, end, id] : *row) {
      const double x0 = label_px + start / makespan * width;
      const double x1 = label_px + end / makespan * width;
      os << "<rect x='" << x0 << "' y='" << y << "' width='"
         << std::max(x1 - x0, 1.0) << "' height='" << row_h - 3
         << "' fill='" << kColors[id % 10] << "'><title>"
         << graph.task(id).name() << " [" << start << ", " << end
         << "]</title></rect>\n";
    }
    y += row_h;
  }
  os << "<text x='" << label_px << "' y='" << y + 14 << "'>0 s</text>\n";
  os << "<text x='" << label_px + width - 40 << "' y='" << y + 14 << "'>"
     << makespan << " s</text>\n";
  os << "</svg>\n";
  return os.str();
}

std::string ascii_trace(const sim::SimResult& result, int num_ranks,
                        const RenderOptions& options) {
  const double makespan = std::max(result.makespan, 1e-30);
  const int width = std::max(options.width, 8);
  std::vector<std::string> lines(static_cast<std::size_t>(num_ranks),
                                 std::string(static_cast<std::size_t>(width),
                                             '.'));
  for (const sim::TraceEvent& e : result.trace) {
    if (e.rank < 0 || e.rank >= num_ranks) continue;
    int lo = static_cast<int>(std::floor(e.start / makespan * width));
    int hi = static_cast<int>(std::ceil(e.end / makespan * width));
    lo = std::clamp(lo, 0, width - 1);
    hi = std::clamp(hi, lo + 1, width);
    const char mark = e.kind == sim::TraceEvent::Kind::Compute ? '#' : '~';
    for (int x = lo; x < hi; ++x) {
      char& cell = lines[static_cast<std::size_t>(e.rank)]
                        [static_cast<std::size_t>(x)];
      // Compute wins over transfer when both touch a cell.
      if (cell != '#') cell = mark;
    }
  }
  std::ostringstream os;
  os << "trace: " << num_ranks << " ranks, makespan " << makespan
     << " s ('#' compute, '~' receive, '.' idle)\n";
  for (int r = 0; r < num_ranks; ++r) {
    os << std::setw(8) << ("rank " + std::to_string(r)) << " |"
       << lines[static_cast<std::size_t>(r)] << "|\n";
  }
  return os.str();
}

std::string trace_csv(const sim::SimResult& result) {
  std::ostringstream os;
  os << "kind,rank,peer,start,end,bytes\n";
  for (const sim::TraceEvent& e : result.trace) {
    os << (e.kind == sim::TraceEvent::Kind::Compute ? "compute" : "transfer")
       << ',' << e.rank << ',' << e.peer << ',' << e.start << ',' << e.end
       << ',' << e.bytes << '\n';
  }
  return os.str();
}

}  // namespace ptask::viz
