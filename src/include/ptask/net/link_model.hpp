#pragma once
/// \file link_model.hpp
/// Analytic pricing of message schedules for a concrete rank-to-core
/// placement (the fast path used inside the scheduler and the mapping-aware
/// cost model; the discrete-event simulator in ptask::sim is the high-fidelity
/// path).
///
/// Model per round: every message pays `latency + bytes/bandwidth` of the
/// interconnect level its endpoints share.  Inter-node messages additionally
/// contend for the network interface of their node: all bytes leaving
/// (entering) one node within a round are serialized through that node's NIC.
/// The round time is the maximum over both effects; rounds execute one after
/// another.  This captures the first-order behaviour that drives the paper's
/// mapping results: a scattered mapping multiplies NIC pressure by the number
/// of cores per node.

#include <cstddef>
#include <span>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/net/collectives.hpp"

namespace ptask::net {

/// Byte-volume statistics of one priced schedule, by interconnect level.
struct TrafficStats {
  std::size_t bytes_same_processor = 0;
  std::size_t bytes_same_node = 0;
  std::size_t bytes_inter_node = 0;
  std::size_t messages = 0;

  std::size_t total_bytes() const {
    return bytes_same_processor + bytes_same_node + bytes_inter_node;
  }
};

/// Prices message schedules against an `arch::Machine` and a placement.
class LinkModel {
 public:
  explicit LinkModel(const arch::Machine& machine) : machine_(&machine) {}

  /// Time of one round.  `placement[rank]` is the flat core index executing
  /// that rank.
  double round_time(const Round& round, std::span<const int> placement,
                    TrafficStats* stats = nullptr) const;

  /// Time of a whole schedule (sum of its round times).
  double schedule_time(const MessageSchedule& schedule,
                       std::span<const int> placement,
                       TrafficStats* stats = nullptr) const;

  /// Time of several schedules executing *concurrently* (e.g. the
  /// Multi-Allgather benchmark: one allgather per group).  Round i of every
  /// schedule is merged into one common round; each schedule's ranks are
  /// translated by its own placement.  Returns the makespan.
  double concurrent_schedule_time(
      std::span<const MessageSchedule> schedules,
      std::span<const std::vector<int>> placements,
      TrafficStats* stats = nullptr) const;

  const arch::Machine& machine() const { return *machine_; }

 private:
  const arch::Machine* machine_;
};

/// Closed-form collective costs on `q` symbolic cores whose interconnect is
/// uniformly `link` (paper Section 3.2: the scheduler prices M-tasks with a
/// *default mapping pattern* where all communication uses the slowest
/// network, yielding an upper bound that is mapping-independent).
double bcast_time_uniform(int q, std::size_t bytes,
                          const arch::LinkParams& link);
double allgather_time_uniform(int q, std::size_t bytes_per_rank,
                              const arch::LinkParams& link);
double allreduce_time_uniform(int q, std::size_t bytes,
                              const arch::LinkParams& link);
double barrier_time_uniform(int q, const arch::LinkParams& link);
double exchange_time_uniform(int q, std::size_t bytes,
                             const arch::LinkParams& link);

}  // namespace ptask::net
