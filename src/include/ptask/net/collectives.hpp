#pragma once
/// \file collectives.hpp
/// Collective communication algorithms, expressed as round-based message
/// schedules over logical ranks.
///
/// The paper attributes the mapping effects on MPI_Allgather (Fig. 14) to the
/// concrete algorithm the MPI library runs -- a ring for large messages,
/// where communication happens between *neighbouring ranks*, so a consecutive
/// mapping keeps it inside cluster nodes.  We therefore model collectives as
/// the actual message patterns, not as closed-form formulas: an algorithm
/// yields a `MessageSchedule` (a sequence of rounds, each a set of
/// point-to-point messages between ranks), which the analytic link model or
/// the discrete-event simulator then prices for a concrete rank-to-core
/// placement.

#include <cstddef>
#include <vector>

namespace ptask::net {

/// One logical message: `src` sends `bytes` to `dst` (group-local ranks).
struct Message {
  int src = 0;
  int dst = 0;
  std::size_t bytes = 0;
};

/// Messages of one round happen concurrently; rounds are separated by a
/// logical synchronization (each rank waits for its round-i traffic before
/// participating in round i+1).
struct Round {
  std::vector<Message> messages;
};

using MessageSchedule = std::vector<Round>;

/// Broadcast of `bytes` from `root` to all `nranks` ranks via a binomial
/// tree: ceil(log2 n) rounds, round k doubles the number of holders.
MessageSchedule binomial_bcast(int nranks, int root, std::size_t bytes);

/// Allgather via the ring algorithm (used by MPI libraries for large
/// messages): n-1 rounds; in round k every rank sends the block it received
/// in round k-1 to its right neighbour.  `bytes_per_rank` is each rank's
/// contribution.
MessageSchedule ring_allgather(int nranks, std::size_t bytes_per_rank);

/// Allgather via recursive doubling (used for small messages); requires and
/// checks a power-of-two rank count.  In round k each rank exchanges its
/// current 2^k blocks with its partner at distance 2^k.
MessageSchedule recursive_doubling_allgather(int nranks,
                                             std::size_t bytes_per_rank);

/// Library-style algorithm selection: recursive doubling when the total
/// gathered volume is below `rd_threshold_bytes` and the rank count is a
/// power of two, the ring otherwise.  The default threshold mirrors common
/// MPI implementations (switch to ring at 32 KiB total).
MessageSchedule allgather(int nranks, std::size_t bytes_per_rank,
                          std::size_t rd_threshold_bytes = 32 * 1024);

/// Reduction of `bytes` to `root` via a binomial tree (mirror of the bcast).
MessageSchedule binomial_reduce(int nranks, int root, std::size_t bytes);

/// Allreduce via recursive doubling/halving; non-power-of-two rank counts
/// fall back to reduce + bcast.
MessageSchedule allreduce(int nranks, std::size_t bytes);

/// Barrier, lowered to a zero-payload allreduce (messages still pay latency).
MessageSchedule barrier(int nranks);

/// Nearest-neighbour exchange on the rank ring: two rounds, every rank sends
/// `bytes` to its right neighbour in round 1 and to its left neighbour in
/// round 2 (the border-exchange pattern of multi-zone solvers).
MessageSchedule ring_exchange(int nranks, std::size_t bytes);

/// Point-to-point exchange pattern of a re-distribution: all transfers in one
/// round per distinct source rank "wave" such that no rank sends two messages
/// in the same round (a simple greedy edge colouring).  `transfers` uses
/// group-local src/dst ranks like dist::Transfer, passed as Messages.
MessageSchedule redistribution_rounds(const std::vector<Message>& transfers);

/// Total byte volume of a schedule.
std::size_t schedule_bytes(const MessageSchedule& schedule);

}  // namespace ptask::net
