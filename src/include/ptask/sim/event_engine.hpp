#pragma once
/// \file event_engine.hpp
/// Deterministic event queue used by the network simulator.
///
/// A thin wrapper around a binary heap that orders events by time and breaks
/// ties by insertion sequence, so simulations replay identically regardless
/// of container iteration order elsewhere.

#include <cstdint>
#include <queue>
#include <vector>

namespace ptask::sim {

template <typename Payload>
class EventQueue {
 public:
  void push(double time, Payload payload) {
    heap_.push(Entry{time, seq_++, std::move(payload)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Events ever pushed (observability hook: the simulator reports this as
  /// its processed-event count).
  std::uint64_t total_pushed() const { return seq_; }

  double top_time() const { return heap_.top().time; }
  const Payload& top() const { return heap_.top().payload; }

  Payload pop() {
    Payload p = std::move(heap_.top().payload);
    heap_.pop();
    return p;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    mutable Payload payload;  // moved out on pop; heap never reorders after top
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace ptask::sim
