#pragma once
/// \file network_sim.hpp
/// Discrete-event simulation of a rank program set on a hierarchical
/// multi-core machine.
///
/// Semantics:
///  - every rank executes its op list sequentially on its own core;
///  - Compute advances the rank's clock;
///  - Send posts the message and charges the sender a small CPU overhead
///    (the link latency, playing the role of LogP's `o`), then continues;
///  - Recv blocks until the matching send has been posted *and* the transfer
///    has finished; transfer time is `latency + bytes/bandwidth` of the
///    interconnect level shared by the two cores;
///  - inter-node transfers serialize through the network interfaces of the
///    two nodes involved (one NIC per node, full duplex: independent egress
///    and ingress availability).
///
/// The engine is deterministic: ready transfers complete in order of their
/// earliest possible start time, ties broken by posting order.

#include <cstddef>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/net/link_model.hpp"
#include "ptask/sim/program.hpp"

namespace ptask::sim {

/// One recorded event of a simulated execution (trace mode).
struct TraceEvent {
  enum class Kind { Compute, Transfer };
  Kind kind = Kind::Compute;
  int rank = 0;        ///< executing rank (Compute) / receiving rank (Transfer)
  int peer = -1;       ///< sending rank for transfers, -1 for compute
  double start = 0.0;
  double end = 0.0;
  std::size_t bytes = 0;
};

struct SimResult {
  double makespan = 0.0;                ///< max rank finish time
  std::vector<double> finish_times;     ///< per-rank finish time
  net::TrafficStats traffic;            ///< byte volumes by level
  std::size_t transfers = 0;            ///< completed point-to-point messages
  double total_compute_seconds = 0.0;   ///< sum of compute op time
  /// Per-event trace, populated when the simulation runs in trace mode.
  std::vector<TraceEvent> trace;
};

class NetworkSim {
 public:
  /// `placement[r]` is the flat core index (on `machine`) running rank r.
  /// The placement must be injective: two ranks cannot share a core.
  NetworkSim(const arch::Machine& machine, std::vector<int> placement);

  /// Runs the programs to completion.  Throws std::runtime_error on a
  /// communication deadlock (some rank blocks on a receive whose send is
  /// never posted).  With `record_trace`, every compute interval and every
  /// completed transfer is appended to SimResult::trace (events are emitted
  /// in completion order; sort by start for timeline rendering).
  SimResult run(const ProgramSet& programs, bool record_trace = false) const;

  const arch::Machine& machine() const { return *machine_; }
  const std::vector<int>& placement() const { return placement_; }

 private:
  const arch::Machine* machine_;
  std::vector<int> placement_;
};

}  // namespace ptask::sim
