#pragma once
/// \file program.hpp
/// Rank programs for the discrete-event cluster simulator.
///
/// A simulated execution is described SPMD-style: every rank runs a sequence
/// of operations -- local computation, message sends (non-blocking, like an
/// eager MPI_Isend with a small CPU overhead on the sender) and receives
/// (blocking).  Collectives are *lowered* onto this op set from the
/// round-based message schedules in ptask::net, so the simulator core only
/// ever deals with point-to-point traffic, exactly like a real interconnect.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ptask/net/collectives.hpp"

namespace ptask::sim {

enum class OpKind { Compute, Send, Recv };

struct Op {
  OpKind kind = OpKind::Compute;
  double seconds = 0.0;    ///< Compute: CPU time
  int peer = -1;           ///< Send: destination rank; Recv: source rank
  std::uint64_t tag = 0;   ///< message matching tag (Send/Recv)
  std::size_t bytes = 0;   ///< Send: payload size
};

/// The op list of one rank.
class RankProgram {
 public:
  void add_compute(double seconds) {
    if (seconds > 0.0) ops_.push_back({OpKind::Compute, seconds, -1, 0, 0});
  }
  void add_send(int dst, std::uint64_t tag, std::size_t bytes) {
    ops_.push_back({OpKind::Send, 0.0, dst, tag, bytes});
  }
  void add_recv(int src, std::uint64_t tag) {
    ops_.push_back({OpKind::Recv, 0.0, src, tag, 0});
  }
  const std::vector<Op>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

 private:
  std::vector<Op> ops_;
};

/// A full simulated job: one program per rank plus a tag allocator so that
/// independent collectives can never cross-match.
class ProgramSet {
 public:
  explicit ProgramSet(int nranks);

  int num_ranks() const { return static_cast<int>(programs_.size()); }
  RankProgram& rank(int r) { return programs_.at(static_cast<std::size_t>(r)); }
  const RankProgram& rank(int r) const {
    return programs_.at(static_cast<std::size_t>(r));
  }

  /// Appends `seconds` of computation to every rank in `ranks`.
  void add_compute(std::span<const int> ranks, double seconds);

  /// Lowers a collective message schedule onto the ranks in `ranks`
  /// (`ranks[i]` is the global rank playing schedule-local rank i).  Each
  /// round gets a fresh tag; within a round a rank posts all its sends before
  /// its receives, and the blocking receives enforce the round ordering.
  void add_collective(const net::MessageSchedule& schedule,
                      std::span<const int> ranks);

  /// Lowers a single point-to-point transfer (send on `src`, recv on `dst`).
  void add_transfer(int src, int dst, std::size_t bytes);

  /// Reserves and returns a fresh, never-before-used tag.
  std::uint64_t fresh_tag() { return next_tag_++; }

 private:
  std::vector<RankProgram> programs_;
  std::uint64_t next_tag_ = 1;
};

}  // namespace ptask::sim
