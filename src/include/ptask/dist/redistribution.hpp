#pragma once
/// \file redistribution.hpp
/// Re-distribution plans between cooperating M-tasks (paper Sections 2.1 and
/// 3.1).
///
/// If M-task M1 produces a parameter in distribution d1 over group G1 and
/// M-task M2 consumes it in distribution d2 over group G2, a re-distribution
/// operation moves every element from its owner under (d1, G1) to its
/// owner(s) under (d2, G2).  The plan records the communication volume of
/// every (source rank, destination rank) pair; the cost model and the
/// simulator turn the plan into time, given the physical placement of the two
/// groups.

#include <cstddef>
#include <vector>

#include "ptask/dist/distribution.hpp"

namespace ptask::dist {

/// One point-to-point transfer of a re-distribution.
/// Ranks are group-local: `src_rank` indexes into the source group,
/// `dst_rank` into the destination group.
struct Transfer {
  std::size_t src_rank = 0;
  std::size_t dst_rank = 0;
  std::size_t bytes = 0;
};

/// A complete re-distribution plan.
class RedistributionPlan {
 public:
  /// Computes the plan for an `n`-element vector of `elem_size`-byte elements
  /// moving from (src over q1 cores) to (dst over q2 cores).
  ///
  /// `same_groups` declares that source rank i and destination rank i are the
  /// *same physical core* for all i (only meaningful when q1 == q2); element
  /// moves between identical ranks are then free and omitted from the plan.
  /// A replicated destination receives every element on every rank; a
  /// replicated source sends each element from its canonical owner (rank 0)
  /// unless the destination rank coincides.
  static RedistributionPlan compute(std::size_t n, std::size_t elem_size,
                                    const Distribution& src, std::size_t q1,
                                    const Distribution& dst, std::size_t q2,
                                    bool same_groups = false);

  const std::vector<Transfer>& transfers() const { return transfers_; }

  /// Sum of all transferred bytes.
  std::size_t total_bytes() const { return total_bytes_; }

  /// Largest single pairwise transfer (lower-bounds the plan's time).
  std::size_t max_pair_bytes() const { return max_pair_bytes_; }

  bool empty() const { return transfers_.empty(); }

 private:
  std::vector<Transfer> transfers_;
  std::size_t total_bytes_ = 0;
  std::size_t max_pair_bytes_ = 0;
};

}  // namespace ptask::dist
