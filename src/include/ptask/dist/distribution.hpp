#pragma once
/// \file distribution.hpp
/// Data distribution types for M-task parameters (paper Section 2.1).
///
/// The distribution of an input/output parameter of an M-task defines how the
/// elements of the data structure are spread over the group of cores
/// executing the task.  The CM-task compiler supports arbitrary block-cyclic
/// distributions; we model the one-dimensional family (replicated, block,
/// cyclic, block-cyclic), which covers all distributions used by the ODE and
/// multi-zone benchmarks.

#include <cstddef>
#include <string>

namespace ptask::dist {

enum class Kind {
  Replicated,   ///< every core of the group holds all elements
  Block,        ///< contiguous balanced blocks (first n%q ranks get one extra)
  Cyclic,       ///< element i owned by rank i mod q
  BlockCyclic,  ///< blocks of size b dealt round-robin
};

const char* to_string(Kind kind);

/// One-dimensional data distribution over a group of `q` cores.
///
/// The class is a value type; equality means "same ownership function".
class Distribution {
 public:
  /// Block-cyclic block size is ignored for the other kinds.
  explicit Distribution(Kind kind, std::size_t block_size = 1);

  static Distribution replicated() { return Distribution(Kind::Replicated); }
  static Distribution block() { return Distribution(Kind::Block); }
  static Distribution cyclic() { return Distribution(Kind::Cyclic); }
  static Distribution block_cyclic(std::size_t b) {
    return Distribution(Kind::BlockCyclic, b);
  }

  Kind kind() const { return kind_; }
  std::size_t block_size() const { return block_; }

  /// Rank (in [0, q)) owning element `i` of an `n`-element vector distributed
  /// over `q` cores.  For Replicated the canonical owner is rank 0 (every
  /// rank holds the element; the canonical owner is who must *send* it when
  /// re-distributing away from a replicated layout).
  std::size_t owner(std::size_t i, std::size_t n, std::size_t q) const;

  /// Number of elements stored by `rank` for an n-element vector over q
  /// cores.  For Replicated this is n for every rank.
  std::size_t local_count(std::size_t rank, std::size_t n,
                          std::size_t q) const;

  /// True if every rank of the group holds every element.
  bool is_replicated() const { return kind_ == Kind::Replicated; }

  bool operator==(const Distribution& other) const;
  bool operator!=(const Distribution& other) const { return !(*this == other); }

  std::string to_string() const;

 private:
  Kind kind_;
  std::size_t block_;
};

}  // namespace ptask::dist
