#pragma once
/// \file cached_model.hpp
/// Memoizing wrapper around CostModel::symbolic_task_time.
///
/// The scheduler passes evaluate symbolic task times repeatedly over the
/// same (task, group size, group count) tuples: AdjustGroups re-prices the
/// partition the group search chose, canonical() prices the Gantt
/// lowering, and the portfolio auto-scheduler can repeat all of that per
/// strategy.  CachedCostModel memoizes `symbolic_task_time` so each
/// distinct evaluation is computed exactly once and every later call
/// returns the identical double -- the wrapper is bit-transparent by
/// contract (see docs/SCHEDULING.md).  The group search's candidate sweep
/// deliberately does NOT price through this cache: its dense per-layer
/// time rows already deduplicate every repeated key, so it fills them via
/// the base model directly instead of paying a hash insert per
/// never-repeating key.
///
/// Key structure.  An entry is keyed on the task's address *and* a content
/// fingerprint (work, max_cores, collectives), so a lookup can never return
/// a stale value for a different task that happens to reuse a freed task's
/// address.  Tasks without Orthogonal-scope collectives are priced
/// independently of the concurrent group count (`num_groups` only sizes
/// orthogonal collectives), so their entries ignore `num_groups`.
///
/// Content-keyed mode (`KeyMode::Content`).  The serving layer batches
/// requests whose graphs are distinct objects, so address-based keys never
/// hit across batch members.  In content mode the key is an *injective*
/// fixed-width encoding of the pricing-relevant content (work bits,
/// max_cores, every collective) -- exact equality, no hash-collision risk,
/// so identical tasks in different graphs share one entry and the wrapper
/// stays bit-transparent by construction (symbolic_task_time is a pure
/// function of that content plus the machine).
///
/// Thread safety.  The table is sharded (mutex per shard); concurrent
/// lookups from PortfolioScheduler strategy threads and parallel AssignLPT
/// layer workers are safe.  Hits/misses are counted per instance and in the
/// global obs metrics registry (`sched.cache.hit` / `sched.cache.miss`).

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "ptask/cost/cost_model.hpp"

namespace ptask::cost {

class CachedCostModel final : public CostModel {
 public:
  enum class KeyMode {
    PerTask,  ///< address + fingerprint: entries are private to one graph
    Content,  ///< exact content encoding: entries shared across graphs
  };

  /// Wraps a fresh copy of `base`'s machine; computed values are
  /// bit-identical to `base`'s (same spec, same link parameters).
  explicit CachedCostModel(const CostModel& base,
                           KeyMode mode = KeyMode::PerTask);

  /// Memoized Tsymb(M, q); computes through CostModel::symbolic_task_time
  /// on the first evaluation of a key and returns the stored double on
  /// every later call.
  double symbolic_task_time(const core::MTask& task, int q, int num_groups,
                            int total_cores) const override;

  /// True when `task` carries an Orthogonal-scope collective, i.e. its
  /// symbolic time depends on the concurrent group count.
  static bool depends_on_num_groups(const core::MTask& task);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Drops every entry (counters are kept).
  void clear();

 private:
  struct Key {
    const core::MTask* task = nullptr;
    std::uint64_t fingerprint = 0;  ///< content hash guarding address reuse
    int q = 0;
    int num_groups = 0;  ///< 0 for tasks without orthogonal collectives
    int total_cores = 0;

    bool operator==(const Key& other) const {
      return task == other.task && fingerprint == other.fingerprint &&
             q == other.q && num_groups == other.num_groups &&
             total_cores == other.total_cores;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, double, KeyHash> entries;
  };
  /// Content-mode shard: keyed on the injective content encoding (a
  /// fixed-width byte string), so equality is exact content equality.
  struct ContentShard {
    std::mutex mutex;
    std::unordered_map<std::string, double> entries;
  };

  static constexpr std::size_t kShards = 16;

  KeyMode mode_ = KeyMode::PerTask;
  mutable std::array<Shard, kShards> shards_;
  mutable std::array<ContentShard, kShards> content_shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ptask::cost
