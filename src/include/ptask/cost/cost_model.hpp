#pragma once
/// \file cost_model.hpp
/// Execution-time cost model for M-tasks (paper Section 3.1):
///
///     T(M, q, mp) = Tcomp(M)/q + Tcomm(M, q, mp)
///
/// Two pricing modes are provided.
///
/// *Symbolic* costs are what the scheduler uses: the mapping is not yet
/// known, so communication is priced with the *default mapping pattern* dmp
/// (all traffic over the slowest interconnect of the machine), making
/// Tsymb(M, p) an upper bound that is independent of the later mapping step.
///
/// *Mapped* costs price the same operations for a concrete assignment of
/// symbolic cores to physical cores, using the round-based collective
/// algorithms of ptask::net and charging NIC contention between concurrently
/// executing groups.  This is the quantity the mapping strategies of
/// Section 3.4 differ in.

#include <span>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/core/mtask.hpp"
#include "ptask/dist/redistribution.hpp"
#include "ptask/net/link_model.hpp"

namespace ptask::cost {

/// Physical cores of one scheduled group, in symbolic-core order (the i-th
/// entry executes symbolic core i of the group).
struct GroupLayout {
  std::vector<int> cores;
  int size() const { return static_cast<int>(cores.size()); }
};

/// Physical layout of one scheduling layer: one entry per concurrent group.
struct LayerLayout {
  std::vector<GroupLayout> groups;

  int total_cores() const {
    int total = 0;
    for (const GroupLayout& g : groups) total += g.size();
    return total;
  }
  /// Concatenation of all groups' cores, in group order (this is the global
  /// rank order of the layer).
  std::vector<int> all_cores() const;
};

class CostModel {
 public:
  explicit CostModel(arch::Machine machine);
  virtual ~CostModel() = default;

  const arch::Machine& machine() const { return machine_; }

  // ---- symbolic costs (default mapping pattern) ----

  /// Tcomp(M)/q at the machine's sustained flop rate; respects max_cores.
  double symbolic_compute_time(const core::MTask& task, int q) const;

  /// Internal communication of the task under the default mapping pattern.
  /// `num_groups` is the number of concurrent groups in the task's layer
  /// (needed to size orthogonal collectives); `total_cores` the program-wide
  /// core count (for global collectives).
  double symbolic_comm_time(const core::MTask& task, int q, int num_groups,
                            int total_cores) const;

  /// Tsymb(M, q) = compute + comm (paper Section 3.2).  Virtual so that
  /// memoizing wrappers (cost::CachedCostModel) can substitute for the
  /// plain model on scheduler hot paths; any override must return the
  /// bit-identical value this implementation computes.
  virtual double symbolic_task_time(const core::MTask& task, int q,
                                    int num_groups, int total_cores) const;

  // ---- mapped costs (placement-aware) ----

  /// Time of one collective for the task running on `layout.groups[gi]`.
  /// Group-scope and orthogonal-scope collectives are priced assuming all
  /// groups of the layer execute the same operation concurrently (lockstep),
  /// so cross-group NIC contention is charged; global collectives span all
  /// cores of the layer.
  double mapped_collective_time(const core::CollectiveOp& op,
                                const LayerLayout& layout,
                                std::size_t group_index) const;

  /// T(M, q, mp) for the mapped group: compute + all internal collectives.
  double mapped_task_time(const core::MTask& task, const LayerLayout& layout,
                          std::size_t group_index) const;

  /// Time of a re-distribution plan between two physically mapped groups.
  double redistribution_time(const dist::RedistributionPlan& plan,
                             std::span<const int> src_cores,
                             std::span<const int> dst_cores) const;

  /// Builds the message schedule of one collective for `q` ranks with the
  /// task-level payload convention (see core::CollectiveOp).
  static net::MessageSchedule collective_schedule(const core::CollectiveOp& op,
                                                  int q);

 private:
  arch::Machine machine_;
  net::LinkModel link_;
};

}  // namespace ptask::cost
