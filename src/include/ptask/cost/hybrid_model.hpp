#pragma once
/// \file hybrid_model.hpp
/// Hybrid MPI+OpenMP execution model (paper Section 4.7).
///
/// In a hybrid M-task execution, a group of q physical cores is driven by
/// q/t MPI ranks with t OpenMP threads each (one rank per t *consecutive*
/// physical cores, which is why the consecutive mapping is a prerequisite).
/// Two first-order effects follow, and both are modelled here:
///
///  * collectives involve only the ranks, so per-round NIC traffic shrinks
///    by roughly a factor of t (this is why hybrid wins for
///    communication-dominated solvers);
///  * every collective implies a fork/join of the OpenMP team, so each
///    communication phase additionally pays a team synchronization whose
///    cost grows with the thread count and with the interconnect level the
///    team spans (this is why hybrid loses for synchronization-heavy
///    data-parallel DIIRK, and why spanning OpenMP teams across nodes of the
///    Altix DSM is only worthwhile when it removes large collectives).

#include <vector>

#include "ptask/cost/cost_model.hpp"

namespace ptask::cost {

struct HybridConfig {
  /// OpenMP threads per MPI rank (1 = pure MPI).
  int threads_per_rank = 1;
  /// Compute efficiency of a team confined to one processor / one node /
  /// spanning nodes (DSM machines only).
  double eff_same_processor = 0.98;
  double eff_same_node = 0.95;
  double eff_inter_node = 0.80;
};

class HybridCostModel {
 public:
  HybridCostModel(arch::Machine machine, HybridConfig config);

  const HybridConfig& config() const { return config_; }
  const CostModel& base() const { return base_; }

  /// Rank sub-layout: every t-th physical core of each group carries a rank.
  /// Group sizes must be divisible by threads_per_rank.
  LayerLayout rank_layout(const LayerLayout& physical) const;

  /// Interconnect level spanned by the team of the rank anchored at
  /// `group.cores[rank_pos * t]`.
  arch::CommLevel team_span(const GroupLayout& group, int rank_pos) const;

  /// T(M, q, mp) under hybrid execution for group `gi` of the layer:
  /// compute on all physical cores (with team efficiency), collectives on
  /// ranks only, one team synchronization per collective round-trip.
  double mapped_task_time(const core::MTask& task,
                          const LayerLayout& physical,
                          std::size_t group_index) const;

  /// Team fork/join cost for a team of `t` threads spanning `level`.
  double team_sync_time(int t, arch::CommLevel level) const;

 private:
  CostModel base_;
  HybridConfig config_;
};

}  // namespace ptask::cost
