#pragma once
/// \file dynamic_scheduler.hpp
/// Dynamic M-task scheduling (paper Section 2.2.2): core groups are
/// assigned to M-tasks *at runtime*, depending on the availability of free
/// cores -- the execution style of the Tlib library the paper references
/// for adaptive computations and divide-and-conquer algorithms with
/// dynamic or recursive task creation.
///
/// Tasks are submitted with moldability bounds [min_cores, max_cores] and a
/// work hint.  Whenever cores are free, the dispatcher hands the oldest
/// pending task a group sized by an equal split of the free cores among the
/// pending tasks (clamped to the task's bounds), and the group executes the
/// SPMD body with a GroupComm, exactly like the static executor's tasks.
/// Bodies may submit further tasks (recursion); submission never blocks.
///
/// The scheduler is work-conserving: it never idles cores while a pending
/// task's min_cores would fit.

#include <climits>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ptask/rt/executor.hpp"
#include "ptask/rt/group_comm.hpp"

namespace ptask::rt {

/// A dynamically created M-task.
struct DynamicTask {
  std::string name;
  int min_cores = 1;
  int max_cores = INT_MAX;
  /// Relative computational work; a heavier pending task receives a larger
  /// share of the free cores.
  double work_hint = 1.0;
  /// SPMD body; runs once per group member.  May call
  /// DynamicScheduler::submit (fire-and-forget; do not block on children).
  TaskFn body;
};

/// Aggregate statistics of one scheduler lifetime.
struct DynamicSchedulerStats {
  std::uint64_t tasks_completed = 0;
  int max_concurrent_tasks = 0;
  int largest_group = 0;
  int smallest_group = INT_MAX;
};

class DynamicScheduler {
 public:
  /// Spawns `num_cores` persistent workers (the virtual cores).
  explicit DynamicScheduler(int num_cores);
  ~DynamicScheduler();

  DynamicScheduler(const DynamicScheduler&) = delete;
  DynamicScheduler& operator=(const DynamicScheduler&) = delete;

  int num_cores() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task.  Thread-safe; callable from inside running tasks.
  /// Throws std::invalid_argument if min_cores exceeds the machine.
  void submit(DynamicTask task);

  /// Blocks until every submitted task -- including recursively spawned
  /// ones -- has completed.  The scheduler is reusable afterwards.
  void wait();

  /// Statistics (racy while tasks are running; call after wait()).
  DynamicSchedulerStats stats() const;

 private:
  struct Running {
    DynamicTask task;
    std::unique_ptr<GroupComm> comm;
    std::vector<int> workers;  ///< worker ids of the group
    int group_size = 0;
    int remaining = 0;
  };
  struct Assignment {
    std::shared_ptr<Running> run;
    int rank = 0;
  };

  void worker_loop(int index);
  /// Dispatches pending tasks onto free cores; callers hold `mutex_`.
  void dispatch_locked();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable worker_cv_;
  std::condition_variable idle_cv_;

  std::deque<DynamicTask> pending_;
  std::vector<int> free_cores_;                 ///< worker ids, LIFO
  std::vector<std::deque<Assignment>> inbox_;   ///< per-worker assignments
  int active_tasks_ = 0;
  bool shutdown_ = false;
  DynamicSchedulerStats stats_;
};

}  // namespace ptask::rt
