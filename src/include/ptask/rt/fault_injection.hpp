#pragma once
/// \file fault_injection.hpp
/// Deterministic schedule perturbation for the shared-memory runtime.
///
/// The executor's correctness claim -- numerical results are independent of
/// the schedule, group structure, and mapping -- only holds if the runtime
/// synchronizes correctly; a latent ordering bug can hide behind the OS
/// scheduler happening to interleave threads benignly.  The fault injector
/// widens the explored interleavings: seeded pseudo-random per-task delays
/// and yield storms are inserted at runtime synchronization points, which
/// shakes out races under the fuzz harness and the ThreadSanitizer CI job.
///
/// All perturbation is derived from (seed, perturbation point), so a failing
/// interleaving is at least statistically reproducible from the seed.
///
/// Environment toggles (read by FaultOptions::from_env, which the Executor
/// uses by default):
///   PTASK_FAULT_INJECT        "delays", "yield", or "all" (comma list)
///   PTASK_FAULT_SEED          base seed (decimal or 0x hex; default 0)
///   PTASK_FAULT_MAX_DELAY_US  per-delay cap in microseconds (default 100)

#include <cstdint>

namespace ptask::obs {
class Counter;
}  // namespace ptask::obs

namespace ptask::rt {

struct FaultOptions {
  bool task_delays = false;  ///< random sleeps around task invocations
  bool yield_storm = false;  ///< bursts of std::this_thread::yield()
  std::uint64_t seed = 0;
  int max_delay_us = 100;

  bool any() const { return task_delays || yield_storm; }

  /// Parses the PTASK_FAULT_* environment variables (see file comment).
  static FaultOptions from_env();
};

/// Injects perturbations at named points.  Disabled by default; all methods
/// are safe to call concurrently from many workers.
///
/// Every injected perturbation is accounted for in the metrics registry
/// (rt.fault.injections / rt.fault.delay_us / rt.fault.yields) and -- when
/// tracing is on -- sleeps appear as explicit Fault spans, so injected
/// delays never show up as mystery gaps in a trace.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultOptions options);

  bool enabled() const { return options_.any(); }
  const FaultOptions& options() const { return options_; }

  /// Perturbs the calling thread at perturbation point `point` (hash the
  /// worker index, task id, and phase into it).  Deterministically keyed:
  /// the same (seed, point) always produces the same delay decision.
  void perturb(std::uint64_t point) const;

  /// Convenience key builder for (worker, task, phase) points.
  static std::uint64_t point(int worker, std::int64_t task, int phase);

 private:
  FaultOptions options_;
  // Metrics handles, resolved once at construction when injection is on
  // (registry references stay valid for the process lifetime).
  obs::Counter* injections_ = nullptr;
  obs::Counter* delay_us_ = nullptr;
  obs::Counter* yields_ = nullptr;
};

}  // namespace ptask::rt
