#pragma once
/// \file executor.hpp
/// Shared-memory executor for scheduled M-task programs.
///
/// Takes a LayeredSchedule (the output of any of the schedulers) and real
/// SPMD task functions, and executes the program: layer by layer, each group
/// of virtual cores (worker threads) runs its assigned tasks back-to-back,
/// concurrently with the other groups, each task invoked SPMD-style by all
/// members of its group with a GroupComm for internal collectives.
///
/// Because the task functions compute real values in shared memory, the
/// executor lets tests assert the paper's key functional property: the
/// numerical result of an M-task program is independent of the schedule,
/// the group structure, and the mapping.

#include <functional>
#include <vector>

#include "ptask/rt/fault_injection.hpp"
#include "ptask/rt/group_comm.hpp"
#include "ptask/rt/thread_team.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::rt {

/// Execution context handed to a task function on each group member.
struct ExecContext {
  int group_rank = 0;   ///< this member's rank within the group
  int group_size = 1;   ///< number of cores executing the task
  int group_index = 0;  ///< which group of the layer this is
  int num_groups = 1;   ///< concurrent groups in the layer
  GroupComm* comm = nullptr;  ///< collectives over the task's group

  /// Orthogonal communicator: binds this member to the same-position
  /// members of all *other* groups of the layer (paper Section 4.2,
  /// "orthogonal communication").  Rank within it == group_index; size ==
  /// num_groups.  Null when the layer has a single group or this member's
  /// position exceeds the smallest group (orthogonal operations are only
  /// defined across equal positions).  All groups must reach orthogonal
  /// collectives in lockstep -- the layer's tasks have to be structurally
  /// identical across groups, as they are for the stage-vector solvers.
  GroupComm* orth = nullptr;
};

/// SPMD body of one (original, uncontracted) M-task.
using TaskFn = std::function<void(ExecContext&)>;

class Executor {
 public:
  /// `num_virtual_cores` worker threads play the symbolic cores; it must
  /// equal the schedule's total_cores at run().  Fault injection defaults to
  /// the PTASK_FAULT_* environment toggles (disabled when unset); tests pass
  /// explicit FaultOptions to perturb interleavings deterministically.
  explicit Executor(int num_virtual_cores,
                    FaultOptions faults = FaultOptions::from_env());

  /// Executes the schedule.  `functions[id]` is the body of original task
  /// `id`; contracted chains run their members in chain order on the same
  /// group.  Marker tasks and tasks whose function is empty are skipped.
  void run(const sched::LayeredSchedule& schedule,
           const std::vector<TaskFn>& functions);

  /// Canonical-schedule convenience: executes `schedule.layered`.  Throws
  /// std::invalid_argument for allocation-only schedules (the executor
  /// needs the group structure).
  void run(const sched::Schedule& schedule,
           const std::vector<TaskFn>& functions);

  int num_virtual_cores() const { return team_.size(); }

  const FaultInjector& fault_injector() const { return injector_; }

 private:
  ThreadTeam team_;
  FaultInjector injector_;
};

}  // namespace ptask::rt
