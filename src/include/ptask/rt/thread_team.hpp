#pragma once
/// \file thread_team.hpp
/// A persistent team of worker threads acting as the "virtual cores" of the
/// shared-memory M-task runtime.
///
/// The simulator (ptask::sim) predicts cluster behaviour; this runtime
/// *actually executes* M-task programs, with every symbolic core realized as
/// one worker thread.  Group collectives (ptask::rt::GroupComm) then behave
/// like their MPI counterparts, but over shared memory, so the numerical
/// results of a scheduled M-task program can be validated for any schedule
/// and group structure.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptask::rt {

class ThreadTeam {
 public:
  /// Spawns `size` persistent workers.
  explicit ThreadTeam(int size);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(worker_index)` on every worker and blocks until all return.
  /// Exceptions thrown by workers are captured and the first one is
  /// rethrown on the caller.
  void run(const std::function<void(int)>& fn);

  /// Installs a hook every worker invokes immediately before each job (fault
  /// injection uses this to perturb the dispatch order; see
  /// rt/fault_injection.hpp).  Pass an empty function to remove it.  Must
  /// not be called while a job is running.
  void set_job_prologue(std::function<void(int)> hook);

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::function<void(int)> job_prologue_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ptask::rt
