#pragma once
/// \file group_comm.hpp
/// Shared-memory group communication: the collectives an SPMD M-task uses
/// internally (barrier, broadcast, allgather, allreduce), implemented over a
/// group of runtime threads.
///
/// Semantics mirror the MPI operations of the same name; every member of the
/// group must call the operation (with its group-local rank) exactly once
/// per use, in the same order.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

namespace ptask::rt {

/// Reusable sense-reversing barrier for a fixed-size group.
class Barrier {
 public:
  explicit Barrier(int size);

  /// Blocks until all `size` members arrived.
  void arrive_and_wait();

  int size() const { return size_; }

 private:
  const int size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int waiting_ = 0;
  bool sense_ = false;
};

/// Collectives over a group of `size` threads identified by group-local
/// ranks [0, size).
class GroupComm {
 public:
  explicit GroupComm(int size);

  int size() const { return barrier_.size(); }

  void barrier(int rank);

  /// Broadcast: after the call, every member's `data` holds root's values.
  void bcast(int rank, int root, std::span<double> data);

  /// Allgather: member `rank` contributes `contribution`; after the call,
  /// every member's `out` contains the concatenation of all contributions
  /// in rank order.  Contributions may differ in length; the caller's `out`
  /// must be large enough for their sum.
  void allgather(int rank, std::span<const double> contribution,
                 std::span<double> out);

  /// Allreduce (sum): returns the sum of every member's `value`.
  double allreduce_sum(int rank, double value);

  /// Allreduce (max): returns the maximum of every member's `value`.
  double allreduce_max(int rank, double value);

 private:
  Barrier barrier_;
  // Staging areas published by rank, consumed after a barrier.
  std::vector<std::span<const double>> stage_in_;
  std::vector<double> stage_scalar_;
  std::span<double> root_data_;
};

}  // namespace ptask::rt
