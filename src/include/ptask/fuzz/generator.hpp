#pragma once
/// \file generator.hpp
/// Seeded random M-task-program instance generator for the fuzz harness.
///
/// An instance is a task graph plus a machine shape plus a symbolic core
/// count -- everything a scheduler run needs.  Five structural families are
/// generated, chosen per instance:
///
///  * Layered   -- width x depth grids of independent tasks with forward
///                 edges between adjacent layers (the shape the layer-based
///                 algorithm is built for);
///  * SeriesParallel -- recursive series/parallel compositions (the shape
///                 CPA/CPR's critical-path reasoning is built for);
///  * RandomDag -- unconstrained forward-edge DAGs with tunable chain
///                 density (stress for chain contraction);
///  * OdeSolver -- the paper's solver graph generators (EPOL/IRK/DIIRK/
///                 PAB/PABM via ode::SolverGraphSpec), optionally repeated
///                 over several time steps;
///  * NpbMultiZone -- SP-MZ / BT-MZ zone graphs (npb::step_graph).
///
/// All randomness flows from the instance seed through fuzz::Rng, so an
/// instance is reproduced exactly by its seed on any platform.

#include <cstdint>
#include <string>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/sched/incremental.hpp"

namespace ptask::fuzz {

enum class GraphFamily {
  Layered,
  SeriesParallel,
  RandomDag,
  OdeSolver,
  NpbMultiZone,
};

const char* to_string(GraphFamily family);

/// Structural knobs of the synthetic families (ODE/NPB instances are shaped
/// by their own generators instead).
struct GeneratorParams {
  int max_width = 8;            ///< max independent tasks per layer
  int max_depth = 6;            ///< max layers / recursion depth
  double chain_density = 0.35;  ///< probability of growing linear chains
  double edge_density = 0.5;    ///< inter-layer / random edge probability
  double comm_probability = 0.5;  ///< chance a task carries a collective
  /// Cost heterogeneity: task work is log-uniform in this span.
  double min_work_flop = 1.0e6;
  double max_work_flop = 5.0e9;
};

/// One complete fuzz instance.
struct Instance {
  std::uint64_t seed = 0;   ///< reproduces the instance exactly
  std::string name;         ///< family + shape summary for failure messages
  GraphFamily family = GraphFamily::RandomDag;
  core::TaskGraph graph;
  arch::MachineSpec machine;  ///< machine shape (hierarchy + link speeds)
  int total_cores = 1;        ///< symbolic cores handed to the schedulers
};

/// Generates the instance of `seed`: picks a family, a machine shape, and a
/// core count, then builds the graph.  Deterministic in `seed`.
Instance random_instance(std::uint64_t seed);

/// An online-arrival replay of a fuzz instance: the instance's graph
/// relabeled into arrival order (ids follow a topological order, so every
/// edge points from an earlier arrival to a later one) and split into k
/// prefix-closed timed batches -- batch 0 as an initial graph, batches
/// 1..k-1 as `sched::GraphDelta`s with monotonically increasing release
/// times and random task priorities.  Feeding `initial` to
/// IncrementalScheduler::reset and the deltas to `extend` accumulates
/// exactly `instance.graph` (see materialize), which is what the
/// differential oracle schedules in one shot for the bit-identity check.
struct ArrivalStream {
  /// The full accumulated instance (relabeled graph, original machine /
  /// core count / family / name), e.g. for certification of the result.
  Instance instance;
  core::TaskGraph initial;    ///< batch 0
  double initial_release = 0.0;
  std::vector<sched::GraphDelta> deltas;  ///< batches 1..k-1, in order

  int batches() const { return 1 + static_cast<int>(deltas.size()); }
};

/// Splits the instance of `seed` into (up to) `batches` timed arrival
/// batches.  Deterministic in (`seed`, `batches`); the batch count is
/// clamped to the task count so every batch is non-empty.
ArrivalStream arrival_stream(std::uint64_t seed, int batches);

/// Replays the whole stream without scheduling: `initial` plus every delta,
/// applied exactly like IncrementalScheduler::extend applies them.  Equals
/// `stream.instance.graph`; exposed so oracles can rebuild the accumulated
/// graph after feeding a prefix of the stream elsewhere.
core::TaskGraph materialize(const ArrivalStream& stream);

/// Family-specific generators (used by random_instance; exposed so tests can
/// target one family).
core::TaskGraph layered_graph(Rng& rng, const GeneratorParams& params);
core::TaskGraph series_parallel_graph(Rng& rng, const GeneratorParams& params);
core::TaskGraph random_dag(Rng& rng, const GeneratorParams& params);
core::TaskGraph ode_solver_graph(Rng& rng, std::string* name = nullptr);
core::TaskGraph npb_multizone_graph(Rng& rng, std::string* name = nullptr);

}  // namespace ptask::fuzz
