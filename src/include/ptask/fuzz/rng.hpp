#pragma once
/// \file rng.hpp
/// Deterministic random-number plumbing for the fuzz harness and the
/// randomized tests.
///
/// Everything randomized in the test suite derives from one base seed so a
/// failure reproduces from a single number.  The base seed comes from the
/// PTASK_FUZZ_SEED environment variable when set (decimal or 0x-prefixed
/// hex), otherwise from a fixed default, and every independent stream is
/// derived with `substream` so that adding a new consumer never perturbs the
/// instances an existing consumer sees.

#include <cstdint>
#include <cstdlib>
#include <string>

namespace ptask::fuzz {

/// SplitMix64: tiny, statistically solid, and identical on every platform
/// (unlike std::mt19937 distributions, which libstdc++ and libc++ disagree
/// on), so a seed reproduces the same instance everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive bounds).
  int uniform(int lo, int hi) {
    return lo + static_cast<int>(
                    next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * static_cast<double>(next() >> 11) /
                    static_cast<double>(1ull << 53);
  }

  bool chance(double p) { return uniform_real(0.0, 1.0) < p; }

 private:
  std::uint64_t state_;
};

/// Derives an independent stream seed from a base seed (one SplitMix64 step
/// keyed by the stream index, so substreams of nearby indices are unrelated).
inline std::uint64_t substream(std::uint64_t base, std::uint64_t stream) {
  Rng rng(base ^ (stream * 0xD1B54A32D192ED03ull + 0x8BB84B93962EEFC9ull));
  return rng.next();
}

/// Base seed of the randomized tests: PTASK_FUZZ_SEED if set and parseable,
/// else `fallback`.  Tests print the value they used so failures reproduce
/// with `PTASK_FUZZ_SEED=<seed> ctest ...`.
inline std::uint64_t seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("PTASK_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 0);
  if (end == env) return fallback;
  return static_cast<std::uint64_t>(value);
}

/// Default base seed of the fuzz harness (arbitrary, fixed).
inline constexpr std::uint64_t kDefaultFuzzSeed = 0x5EEDC0FFEE15D00Dull;

}  // namespace ptask::fuzz
