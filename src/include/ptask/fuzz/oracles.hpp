#pragma once
/// \file oracles.hpp
/// Differential oracles for randomized scheduler/runtime instances.
///
/// For one fuzz instance, `check_instance` sweeps every strategy in the
/// `sched::SchedulerRegistry` (plus the non-default layer-scheduler pass
/// configurations) through one uniform oracle set, and cross-checks the
/// canonical schedules against independent code paths:
///
///  1. structural validity -- both `sched::validate` overloads (layered
///     schedules are additionally lowered with `to_gantt` and re-validated
///     under the Gantt invariants), plus allocation/slot-width agreement;
///  2. makespan agreement -- the layer scheduler's accumulated
///     `predicted_makespan` against the independently computed `to_gantt`
///     group clocks; a Gantt schedule's `makespan` against the maximum slot
///     finish time;
///  3. symbolic dominance -- the layer-based schedule never predicts a
///     longer makespan than pure data parallelism (the g = 1 column of its
///     own search space), the paper's baseline comparison in miniature; and
///     the portfolio auto-scheduler's winner never has a worse symbolic
///     makespan than the best individual strategy of the sweep;
///  4. simulator replay -- the mapped schedule is priced analytically and
///     replayed through the discrete-event engine; the simulated makespan
///     must be finite, no better than the perfect-speedup bound, within a
///     slack factor of the analytic prediction, and identical when replayed
///     twice (event-engine determinism);
///  5. executor independence -- real SPMD task functions run through
///     rt::Executor under several structurally distinct schedules (searched
///     groups, forced groups, no chain contraction, data parallel); the
///     numerical results must be bit-identical to a sequential reference,
///     optionally with fault injection perturbing the interleavings;
///  6. static-analysis differential -- every generated graph must pass
///     ptask::analysis error-free (the generators build consistent graphs
///     by construction), and seeded mutations must be flagged: corrupting a
///     matched parameter's byte size must raise PTA010, and removing (or
///     omitting) an ordering edge between conflicting tasks must raise
///     PTA001/PTA002;
///  7. independent certification -- every candidate schedule of the sweep
///     (registry strategies, layer variants, the portfolio winner) must
///     pass `analysis::certify`, the minimal-trust checker that shares no
///     code with the schedulers or the validator; and seeded schedule
///     corruptions must each be caught by the matching PTC code: a
///     precedence swap by PTC001, a core-occupancy overlap by PTC002, an
///     oversubscribed layer group by PTC003, a makespan edit by PTC004,
///     and a lower-bound violation by PTC005.
///
/// A failed oracle appends a message (with the instance seed and name) to
/// the report instead of asserting, so one harness run reports every
/// violation it finds.

#include <cstdint>
#include <string>
#include <vector>

#include "ptask/fuzz/generator.hpp"
#include "ptask/rt/fault_injection.hpp"

namespace ptask::fuzz {

struct OracleOptions {
  /// Relative tolerance for makespans computed twice by different code
  /// paths from the same symbolic costs (they differ only in floating-point
  /// association order).
  double rel_tol = 1e-9;
  /// Simulated makespan must not exceed `sim_slack` x the analytic one.
  double sim_slack = 10.0;
  /// The proportional group-size adjustment is a heuristic post-pass: it can
  /// lengthen the predicted makespan (strict dominance over data parallelism
  /// is only guaranteed for the unadjusted search, whose g = 1 column *is*
  /// the data-parallel execution).  Fuzzing found degradations up to ~1.6x
  /// on latency-dominated instances (tiny EPOL layers, where resizing by
  /// compute work ignores the dominant communication term); bound the
  /// degradation with headroom over that observation.
  double adjust_slack = 4.0;
  /// Replay the simulation twice and require identical makespans.
  bool check_sim_determinism = false;
  /// Execute the instance through rt::Executor under several schedules.
  bool check_executor = true;
  /// Executor runs are capped at this many worker threads (the instance is
  /// re-scheduled at the cap when its core count exceeds it).
  int executor_max_cores = 8;
  /// Extra executor run with these perturbations when any() is set.
  rt::FaultOptions executor_faults{};
  /// Run the static analyzer as oracle 6 (lint-clean + seeded mutations).
  bool check_lint = true;
  /// Run the independent certifier as oracle 7 (every candidate schedule
  /// certifies clean + seeded schedule corruptions are caught).
  bool check_certifier = true;
};

struct OracleReport {
  std::vector<std::string> errors;
  int schedules_checked = 0;  ///< scheduler outputs that went through 1-4
  int executor_runs = 0;      ///< distinct schedules executed for real
  int lints_checked = 0;      ///< graphs analyzed by the lint-clean oracle
  int lint_mutations = 0;     ///< seeded mutations checked for detection
  int certificates_checked = 0;  ///< schedules put through analysis::certify
  int certifier_mutations = 0;   ///< seeded schedule corruptions checked
  bool ok() const { return errors.empty(); }
  /// All error messages joined, for test failure output.
  std::string summary() const;
};

/// Runs every oracle on one instance.
OracleReport check_instance(const Instance& instance,
                            const OracleOptions& options = {});

}  // namespace ptask::fuzz
