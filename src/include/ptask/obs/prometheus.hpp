#pragma once
/// \file prometheus.hpp
/// Prometheus text-exposition (format 0.0.4) over the metrics registry,
/// plus the parsing side tools need to read percentiles back out of a
/// scraped exposition.
///
/// Mapping: every registry metric becomes `ptask_<sanitized name>`
/// (characters outside [a-zA-Z0-9_:] turn into '_').  Counters get the
/// conventional `_total` suffix.  Log-scale histograms are rendered as
/// native Prometheus histograms with cumulative `_bucket{le="..."}`
/// series: bucket i's inclusive upper bound is 2^i - 1 (bucket 0 holds
/// exactly the zeros), ending with `le="+Inf"`, then `_sum` and `_count`.
/// Buckets above the highest non-empty one are elided -- the cumulative
/// encoding keeps that lossless.
///
/// The parser (`parse_prometheus_histogram`) and bucket-percentile
/// estimator are shared by ptask_top, ptask_loadgen's --slo-p99-us gate,
/// and the tests that cross-check exposition percentiles against
/// Histogram::percentile.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ptask/obs/metrics.hpp"

namespace ptask::obs {

/// Sanitized exposition name for a registry metric ("serve.latency_us"
/// -> "ptask_serve_latency_us").  Pass the registry name WITHOUT any
/// counter `_total` suffix; the renderer appends that itself.
std::string prometheus_name(std::string_view name);

/// Renders every counter and histogram in the registry as one
/// text-exposition document (HELP + TYPE + samples per metric).
std::string render_prometheus(const MetricsRegistry& registry);

/// One histogram read back out of an exposition document.
struct PromHistogram {
  bool found = false;
  /// Cumulative buckets in exposition order: (inclusive upper bound,
  /// cumulative count).  The final entry is the +Inf bucket, stored with
  /// an infinite bound.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Extracts the histogram named `metric` (the full exposition name, e.g.
/// "ptask_serve_latency_us") from a text exposition.  Returns
/// found == false when no `_count` sample for the metric exists.
PromHistogram parse_prometheus_histogram(std::string_view text,
                                         std::string_view metric);

/// q-quantile estimate from cumulative buckets: locates the bucket that
/// holds the nearest-rank sample and interpolates linearly between the
/// previous and current upper bounds.  Carries the same factor-of-two
/// log-bucket error bound as Histogram::percentile.  When the rank lands
/// in the +Inf bucket the last finite bound is returned (a lower bound).
double prometheus_percentile(const PromHistogram& hist, double q);

}  // namespace ptask::obs
