#pragma once
/// \file export.hpp
/// Trace and metrics exporters.
///
/// `render_chrome_trace` writes the Chrome trace-event JSON format
/// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
/// understood by Perfetto (ui.perfetto.dev) and chrome://tracing.  Each
/// span becomes a complete ("X") event -- or an instant ("i") event when
/// its duration is zero -- on the track of its worker: pid 1 hosts
/// real-clock spans, pid 2 simulated-clock spans, tid is the worker /
/// virtual core / sim rank (host-side spans with no worker use a reserved
/// tid).  Metadata events name the processes and threads so Perfetto shows
/// "core 3" tracks.  Timestamps are microseconds.
///
/// `render_summary` is the human-readable side: span counts/total time by
/// kind, per-layer timing, and a dump of the metrics registry.

#include <string>
#include <vector>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::obs {

/// tid used for host-side spans that carry no worker id (scheduler phases,
/// whole-run envelopes recorded on the calling thread).
inline constexpr int kHostTid = 9999;

/// Renders spans as a Chrome trace-event JSON document (self-contained
/// object with a "traceEvents" array).  Events are sorted by begin time.
std::string render_chrome_trace(const std::vector<Span>& spans);

/// Renders a plain-text report: span statistics by kind and layer, then
/// every counter and histogram in the registry.
std::string render_summary(const std::vector<Span>& spans,
                           const MetricsRegistry& registry);

}  // namespace ptask::obs
