#pragma once
/// \file calibration.hpp
/// Cost-model calibration: joins measured spans against the symbolic cost
/// model's predictions, per contracted task and per layer, reporting signed
/// relative error so the model's machine constants can be fitted from real
/// runs.
///
/// "Measured" time for a task is the per-invocation mean of its Task spans,
/// taken as the maximum over the executing workers (a group's task is as
/// slow as its slowest member).  Running the same report on spans derived
/// from the scheduler's own symbolic timeline (`spans_from_gantt` with
/// `CostModel::symbolic_task_time`) must produce ~0 error -- the
/// differential oracle the obs tests pin down.

#include <string>
#include <vector>

#include "ptask/cost/cost_model.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/sched/schedule.hpp"
#include "ptask/sim/network_sim.hpp"

namespace ptask::obs {

/// Predicted-vs-measured row for one contracted task.
struct TaskCalibration {
  core::TaskId contracted = core::kInvalidTask;
  std::string name;
  int layer = -1;
  int group = -1;
  int group_size = 0;
  std::size_t invocations = 0;  ///< Task spans of the slowest worker
  double predicted_s = 0.0;     ///< CostModel::symbolic_task_time
  double measured_s = 0.0;      ///< mean span duration, max over workers
  double rel_error = 0.0;       ///< (measured - predicted) / predicted
};

/// Predicted-vs-measured row for one layer.
struct LayerCalibration {
  int layer = -1;
  double predicted_s = 0.0;  ///< ScheduledLayer::predicted_time
  double measured_s = 0.0;   ///< mean Layer-span duration
  double rel_error = 0.0;
};

struct CalibrationReport {
  std::vector<TaskCalibration> tasks;
  std::vector<LayerCalibration> layers;
  double mean_rel_error = 0.0;      ///< signed, over task rows
  double mean_abs_rel_error = 0.0;  ///< magnitude, over task rows
  /// Least-squares scale s minimizing sum (measured - s * predicted)^2 --
  /// the single-constant correction a fitted flop rate would apply.
  double fitted_scale = 1.0;
};

/// Joins Task/Layer spans against the schedule's cost-model predictions.
/// Tasks with a non-positive prediction (markers) are skipped.
CalibrationReport calibrate(const std::vector<Span>& spans,
                            const sched::LayeredSchedule& schedule,
                            const cost::CostModel& cost);

/// Fixed-width text rendering of the report.
std::string render_calibration(const CalibrationReport& report);

/// Synthesizes Task + Layer spans (Simulated clock) from a layered
/// schedule's Gantt lowering -- timestamps come straight from the symbolic
/// timeline, so `calibrate` on the result is the zero-error oracle.
std::vector<Span> spans_from_gantt(const sched::LayeredSchedule& schedule,
                                   const sched::GanttSchedule& gantt);

/// Converts a discrete-event simulation trace (SimResult::trace, recorded
/// with record_trace) into spans: Compute events become Task spans,
/// Transfer events Collective spans, both on the Simulated clock with
/// worker = rank.
std::vector<Span> spans_from_sim(const sim::SimResult& result);

}  // namespace ptask::obs
