#pragma once
/// \file json.hpp
/// Minimal JSON reader used to validate emitted traces (tools/ptask_trace
/// --selfcheck, obs tests).  Full RFC 8259 value grammar, no streaming, no
/// writing -- the exporters format JSON directly.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ptask::obs::json {

/// One parsed JSON value (tagged union kept simple: all alternatives are
/// members; only the one matching `type` is meaningful).
struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::Null; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_array() const { return type == Type::Array; }
  bool is_object() const { return type == Type::Object; }

  /// First member with the given key, or nullptr (objects only).
  const Value* find(std::string_view key) const;
};

/// Parses one complete JSON document.  Throws std::runtime_error (with a
/// byte offset) on malformed input or trailing garbage.
Value parse(std::string_view text);

}  // namespace ptask::obs::json
