#pragma once
/// \file metrics.hpp
/// Runtime metrics: named counters and log-scale histograms.
///
/// Counters and histograms are plain relaxed atomics, safe to update from
/// any number of threads; updating one costs a single fetch_add.  The
/// registry hands out stable references -- instrumentation sites look a
/// metric up once (behind a function-local static) and keep the pointer,
/// so the mutex-protected name lookup stays off hot paths.  reset() zeroes
/// every value but never invalidates a handed-out reference.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ptask::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log-scale (powers-of-two) histogram of non-negative integer samples.
/// Bucket i counts samples v with bit_width(v) == i, i.e. bucket 0 holds
/// zeros and bucket i >= 1 holds v in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]);
  /// 0 when the histogram is empty.  Log-scale resolution: the true
  /// quantile lies within a factor of two below the returned bound.
  std::uint64_t quantile_upper_bound(double q) const;

  /// Point estimate of the q-quantile (q in [0, 1]); 0 when empty.
  /// Finds the bucket holding the nearest-rank sample and interpolates
  /// linearly inside its range.  Error bound (inherent to the log-scale
  /// buckets): the estimate lies in the same power-of-two bucket as the
  /// true quantile, so for a true quantile v >= 1 the returned value e
  /// satisfies v/2 < e < 2v -- within a factor of two, and exact for
  /// v == 0.  Estimates are monotone non-decreasing in q.
  double percentile(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Snapshot rows for rendering/export.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double p50 = 0.0;  ///< percentile(0.5)
  double p90 = 0.0;  ///< percentile(0.9)
  double p99 = 0.0;  ///< percentile(0.99)
  /// Non-empty buckets as (index, count); bucket 0 holds zeros, bucket
  /// i >= 1 holds v in [2^(i-1), 2^i) -- upper bound 2^i - 1 inclusive.
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

/// Named registry.  Lookup is mutex-protected; returned references stay
/// valid for the registry's lifetime (reset() only zeroes values).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::vector<CounterSample> counters() const;
  std::vector<HistogramSample> histograms() const;

  /// Zeroes every metric; registrations (and references) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry all built-in instrumentation reports to.
MetricsRegistry& metrics();

/// Exact nearest-rank percentile (q in [0, 1]) of a raw sample vector;
/// 0 when empty.  This is the reference the log-scale Histogram::percentile
/// approximates, and the one place bench/tool sample statistics compute it.
double percentile_nearest_rank(std::vector<double> values, double q);

}  // namespace ptask::obs
