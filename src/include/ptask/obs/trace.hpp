#pragma once
/// \file trace.hpp
/// Low-overhead runtime tracing: typed spans in per-thread append-only
/// buffers.
///
/// Hot-path contract: recording a span never contends with other
/// recording threads.  Every thread appends to its own buffer, which
/// registers itself with the owning Tracer once (under the tracer mutex)
/// on first use; after that, recording is a thread-local pointer check
/// plus a push_back under the buffer's *own* mutex -- uncontended except
/// for the brief moment a concurrent drain moves that buffer out.  That
/// per-buffer lock is what makes draining safe at *any* time, not just
/// quiescent points: the serve daemon dumps live traces from its trace
/// endpoint while worker threads keep recording.  (A drain can only race
/// with spans still being recorded, which land in the next drain; closed
/// spans are never torn.)  The runtime still drains at Executor::run exit
/// and DynamicScheduler::wait, which synchronize with their workers
/// before returning.
///
/// Disabled cost: every instrumentation site first checks obs::enabled(),
/// a single relaxed atomic load.  Compiling with PTASK_OBS_DISABLED (CMake
/// -DPTASK_OBS=OFF) turns the check into a compile-time `false`, so all
/// instrumentation is dead code.
///
/// Environment toggles (read once, when the global tracer is first used):
///   PTASK_TRACE               non-empty and not "0": start the global
///                             tracer enabled
///   PTASK_TRACE_BUFFER_SPANS  per-thread span cap between drains
///                             (default 1<<20; overflow counts as dropped)
///
/// Spans from the discrete-event simulator use the same schema with
/// clock == ClockDomain::Simulated (see obs/calibration.hpp for the
/// adapters), so simulated and real runs are diffable in one trace UI.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ptask/obs/metrics.hpp"

namespace ptask::obs {

#if defined(PTASK_OBS_DISABLED)
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// What a span measures.
enum class SpanKind {
  Run,             ///< one Executor::run invocation
  Layer,           ///< one scheduling layer's execution
  Task,            ///< one task body invocation on one group member
  Redistribution,  ///< re-distribution traffic between groups
  Collective,      ///< one group/orthogonal collective on one member
  BarrierWait,     ///< explicit barrier wait
  Scheduler,       ///< a scheduling phase (static scheduler, simulator)
  Dispatch,        ///< runtime dispatch (team job, dynamic assignment)
  Fault,           ///< injected fault delay (so delays are not mystery gaps)
  Serve,           ///< one serve-daemon request phase (recv, parse, ...)
};

const char* to_string(SpanKind kind);

/// Which clock produced the timestamps.
enum class ClockDomain { Real, Simulated };

const char* to_string(ClockDomain clock);

/// One closed interval of work.  Timestamps are seconds since the tracer's
/// epoch (real clock) or simulation start (simulated clock).
struct Span {
  SpanKind kind = SpanKind::Task;
  ClockDomain clock = ClockDomain::Real;
  std::string name;
  std::int64_t task = -1;        ///< original task id, -1 when n/a
  std::int64_t contracted = -1;  ///< contracted task id, -1 when n/a
  int worker = -1;               ///< virtual core / worker thread / sim rank
  int group = -1;                ///< group index within the layer
  int group_size = 0;
  int layer = -1;
  std::uint64_t bytes = 0;  ///< payload size for comm spans
  double begin_s = 0.0;
  double end_s = 0.0;

  double duration_s() const { return end_s - begin_s; }
};

/// Span sink: per-thread append-only buffers plus a drain/collect side.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Seconds since this tracer's construction (the real-clock time base of
  /// every recorded span).
  double now() const;

  /// Appends to the calling thread's buffer; takes only that buffer's own
  /// (normally uncontended) mutex after the thread's first record.  Spans
  /// beyond the per-thread cap are counted as dropped.
  void record(Span span);

  /// Moves every thread buffer's spans into the collected store.  Safe to
  /// call concurrently with record(): each buffer is moved under its own
  /// mutex, so a live service can drain while requests are in flight
  /// (spans still open at drain time simply land in the next drain).
  void drain();

  /// drain() + returns (and removes) everything collected so far.
  std::vector<Span> take();

  /// Discards all buffered and collected spans and the dropped count.
  void clear();

  /// Spans discarded because a thread buffer hit the cap (updated by
  /// drain/take).
  std::uint64_t dropped() const;

  void set_max_spans_per_thread(std::size_t cap);

 private:
  struct ThreadBuffer {
    std::mutex mutex;  ///< guards spans/dropped against a concurrent drain
    std::vector<Span> spans;
    std::uint64_t dropped = 0;
  };

  ThreadBuffer* register_thread_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t instance_id_;  ///< globally unique, for thread-cache keying
  std::atomic<std::size_t> max_spans_per_thread_{std::size_t{1} << 20};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<Span> collected_;
  std::uint64_t dropped_ = 0;
};

/// The process-wide tracer all built-in instrumentation records to.
/// Starts enabled when PTASK_TRACE is set (see file comment).
Tracer& tracer();

/// True when tracing is compiled in AND the global tracer is enabled --
/// the one check every instrumentation site performs.
inline bool enabled() {
  if constexpr (!kTracingCompiledIn) {
    return false;
  } else {
    return tracer().enabled();
  }
}

/// Ambient attribution for spans recorded on this thread: the executor
/// sets worker/group/task around a task invocation so that nested spans
/// (collectives, barrier waits, faults) inherit it.
struct ThreadContext {
  int worker = -1;
  int group = -1;
  int group_size = 0;
  int layer = -1;
  std::int64_t task = -1;
  std::int64_t contracted = -1;
};

ThreadContext& thread_context();

/// RAII set/restore of the calling thread's context.
class ContextScope {
 public:
  explicit ContextScope(const ThreadContext& ctx) : saved_(thread_context()) {
    thread_context() = ctx;
  }
  ~ContextScope() { thread_context() = saved_; }
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  ThreadContext saved_;
};

/// RAII span: captures the thread context and a begin timestamp when the
/// global tracer is enabled, records the closed span on destruction.
/// When tracing is disabled (runtime or compile time) construction and
/// destruction are a single branch.
class ScopedSpan {
 public:
  ScopedSpan(SpanKind kind, const char* name) {
    if constexpr (kTracingCompiledIn) {
      if (tracer().enabled()) start(kind, name);
    }
  }
  ScopedSpan(SpanKind kind, const std::string& name) {
    if constexpr (kTracingCompiledIn) {
      if (tracer().enabled()) start(kind, name.c_str());
    }
  }
  ~ScopedSpan() {
    if constexpr (kTracingCompiledIn) {
      if (active_) finish();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  void set_bytes(std::uint64_t bytes) {
    if (active_) span_.bytes = bytes;
  }
  void set_layer(int layer) {
    if (active_) span_.layer = layer;
  }
  void set_worker(int worker) {
    if (active_) span_.worker = worker;
  }
  void set_group(int group, int group_size) {
    if (active_) {
      span_.group = group;
      span_.group_size = group_size;
    }
  }
  /// Additionally adds the span's duration (in nanoseconds) to `ns_counter`
  /// when the span closes.
  void count_duration_into(Counter& ns_counter) {
    if (active_) duration_counter_ = &ns_counter;
  }

 private:
  void start(SpanKind kind, const char* name);
  void finish();

  Span span_;
  Counter* duration_counter_ = nullptr;
  bool active_ = false;
};

}  // namespace ptask::obs
