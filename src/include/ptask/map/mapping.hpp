#pragma once
/// \file mapping.hpp
/// The mapping function F_W (paper Section 3.4): assigns the symbolic cores
/// of a scheduled layer to physical cores.
///
/// The symbolic cores are ordered group by group (sc_{1,1}, ..., sc_{1,|G1|},
/// sc_{2,1}, ..., sc_{g,|Gg|}); F_W maps the i-th symbolic core of that
/// sequence to the i-th physical core of the strategy's core sequence, so
/// group G_i receives the contiguous slice of the physical sequence starting
/// at offset |G_1| + ... + |G_{i-1}|.  Distinct groups always receive
/// disjoint physical cores.

#include <span>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/map/core_sequence.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::map {

/// Applies F_W to one layer: slices `sequence` by `group_sizes`.
/// The sum of the group sizes must not exceed the sequence length.
cost::LayerLayout map_layer(std::span<const int> group_sizes,
                            std::span<const int> sequence);

/// Maps every layer of a layered schedule with one strategy, yielding the
/// per-layer physical layouts in layer order.
std::vector<cost::LayerLayout> map_schedule(
    const sched::LayeredSchedule& schedule, const arch::Machine& machine,
    Strategy strategy, int d = 1);

/// Canonical-schedule convenience: maps `schedule.layered`.  Throws
/// std::invalid_argument for allocation-only schedules (no group structure
/// to map).
std::vector<cost::LayerLayout> map_schedule(const sched::Schedule& schedule,
                                            const arch::Machine& machine,
                                            Strategy strategy, int d = 1);

/// Mapping as a pipeline pass (F_W as the sixth stage of Algorithm 1):
/// fills PassContext::layouts from the scheduled layers using the machine
/// embedded in the pass context's cost model, so `Pipeline::run` returns a
/// Schedule whose `layouts` are ready for the timeline evaluator.
class MapCoresPass final : public sched::Pass {
 public:
  explicit MapCoresPass(Strategy strategy = Strategy::Consecutive, int d = 1)
      : strategy_(strategy), d_(d) {}
  std::string_view name() const override { return "map-cores"; }
  void run(sched::PassContext& ctx) const override;

 private:
  Strategy strategy_;
  int d_;
};

}  // namespace ptask::map
