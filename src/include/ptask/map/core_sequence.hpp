#pragma once
/// \file core_sequence.hpp
/// Physical core sequences for the three mapping strategies (paper
/// Section 3.4).
///
/// A mapping strategy is fully described by an ordering of the machine's
/// physical cores; the mapping function F_W then assigns the i-th symbolic
/// core (in group order) to the i-th physical core of the sequence.
///
///  * consecutive : 1.1.1, 1.1.2, ..., 1.p.c, 2.1.1, ...   (node-major)
///  * scattered   : 1.1.1, 2.1.1, ..., n.1.1, 1.1.2, ...   (round-robin)
///  * mixed(d)    : first d cores of node 1, first d cores of node 2, ...,
///                  then the next d cores of every node, and so on.
///
/// scattered == mixed(1); consecutive == mixed(cores_per_node).

#include <vector>

#include "ptask/arch/machine.hpp"

namespace ptask::map {

enum class Strategy {
  Consecutive,
  Scattered,
  Mixed,
};

const char* to_string(Strategy strategy);

/// Human-readable label including the mixed block size, e.g. "mixed(d=2)".
std::string strategy_label(Strategy strategy, int d);

/// Builds the physical core sequence (flat core indices on `machine`) for a
/// strategy.  `d` is only used for Strategy::Mixed and must divide the
/// machine's cores per node.
std::vector<int> physical_sequence(const arch::Machine& machine,
                                   Strategy strategy, int d = 1);

/// The mixed-mapping sequence for an explicit block size d (1 <= d <=
/// cores_per_node, d | cores_per_node).
std::vector<int> mixed_sequence(const arch::Machine& machine, int d);

}  // namespace ptask::map
