#pragma once
/// \file validation.hpp
/// Structural validity checks for schedules -- the invariants the paper's
/// scheduling constraints impose (Section 2.2.2): tasks with input-output
/// relations execute one after another; concurrently executing tasks occupy
/// disjoint core subsets; group sizes never exceed the machine.

#include <string>
#include <vector>

#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

struct ValidationReport {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
};

/// Checks a layered schedule against the *original* (uncontracted) graph:
///  - every non-marker contracted task appears in exactly one layer;
///  - tasks sharing a layer are pairwise independent;
///  - every layer's group sizes are positive and sum to total_cores;
///  - every task is assigned to an existing group;
///  - layer order respects all contracted-graph edges.
ValidationReport validate(const LayeredSchedule& schedule,
                          const core::TaskGraph& original);

/// Checks a Gantt schedule against the graph it was computed for:
///  - every non-marker task has a slot with >= 1 cores within [0, P);
///  - no core executes two tasks at overlapping times;
///  - task start times respect predecessor finish times.
ValidationReport validate(const GanttSchedule& schedule,
                          const core::TaskGraph& graph);

}  // namespace ptask::sched
