#pragma once
/// \file registry.hpp
/// Name-based discovery and construction of scheduling strategies.
///
/// Every strategy registers a factory under a stable name; consumers (the
/// portfolio auto-scheduler, the fuzz differential oracles, the
/// `--scheduler` flag of ptask_trace / ptask_lint) iterate the registry
/// instead of hard-coding the strategy list, so adding a scheduler is one
/// `register_strategy` call away from full tool / oracle / portfolio
/// coverage.
///
/// Built-in strategies (registered on first use, in this order):
///   layer      -- Pipeline::algorithm1, the paper's layer-based scheduler
///   cpa        -- CpaScheduler (Radulescu & van Gemund)
///   mcpa       -- McpaScheduler (Bansal et al.)
///   cpr        -- CprScheduler (Radulescu et al.)
///   dp         -- DataParallelScheduler (one task after another, all cores)
///   portfolio  -- PortfolioScheduler over all of the above
///   incremental -- IncrementalScheduler (re-entrant Algorithm-1 pipeline;
///                 identical to `layer` for one-shot runs, and the engine
///                 behind online sessions in the scheduling service)

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/pipeline.hpp"

namespace ptask::sched {

/// Builds a strategy instance bound to a cost model.
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const cost::CostModel&)>;

class SchedulerRegistry {
 public:
  /// The process-wide registry (built-ins are registered on construction).
  static SchedulerRegistry& instance();

  /// Registers (or replaces) a strategy factory under `name`.
  void register_strategy(std::string name, SchedulerFactory factory);

  bool contains(std::string_view name) const;

  /// Registered names in registration order.
  std::vector<std::string> names() const;

  /// Instantiates the named strategy; throws std::invalid_argument listing
  /// the known names when `name` is not registered.
  std::unique_ptr<Scheduler> make(std::string_view name,
                                  const cost::CostModel& cost) const;

 private:
  SchedulerRegistry();
  std::vector<std::pair<std::string, SchedulerFactory>> entries_;
};

}  // namespace ptask::sched
