#pragma once
/// \file batch.hpp
/// Shared-pricing scheduler for batches of compatible requests.
///
/// The serving layer coalesces schedule requests that dequeue together and
/// agree on (strategy, machine, total_cores, certify) but differ in graph.
/// Running them through one `BatchScheduler` prices every member over a
/// single content-keyed `CachedCostModel`: a task that appears in several
/// graphs of the batch (identical work/max_cores/collectives) is priced
/// exactly once, and every later evaluation -- in any member -- returns the
/// stored double.  Because the cache is bit-transparent (the memoized value
/// IS the base model's value), each member's schedule is byte-identical to
/// an unbatched run of the same strategy over a plain CostModel; the serve
/// tests and the loadgen oracle enforce that equivalence end to end.
///
/// Thread safety: `run` is safe to call concurrently (the underlying cache
/// is sharded and schedulers are stateless per run), but the serving layer
/// runs batch members sequentially on one worker -- the win is amortized
/// pricing, not intra-batch parallelism (the portfolio already parallelizes
/// across strategies internally).

#include <memory>
#include <string>

#include "ptask/cost/cached_model.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

class BatchScheduler {
 public:
  /// Builds the shared pricing cache over `base`'s machine and resolves
  /// `strategy` from the SchedulerRegistry (throws std::invalid_argument
  /// for unknown names, like SchedulerRegistry::make).
  BatchScheduler(const std::string& strategy, const cost::CostModel& base);

  /// Schedules one batch member.  Bit-identical to an unbatched run of the
  /// same strategy; repeated task content across calls hits the shared
  /// pricing cache.
  Schedule run(const core::TaskGraph& graph, int total_cores) const;

  const std::string& strategy() const { return strategy_; }

  /// Shared pricing-cache accounting (across every run so far).
  std::uint64_t pricing_hits() const { return cached_.hits(); }
  std::uint64_t pricing_misses() const { return cached_.misses(); }

 private:
  std::string strategy_;
  /// Declared before scheduler_: the scheduler keeps a reference to the
  /// cache for its whole lifetime.
  cost::CachedCostModel cached_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace ptask::sched
