#pragma once
/// \file timeline.hpp
/// End-to-end evaluation of a mapped layered schedule.
///
/// Two evaluation paths share the same inputs (a LayeredSchedule plus the
/// per-layer physical layouts produced by the mapping step):
///
///  * `evaluate` prices the execution analytically with the mapped cost
///    model (optionally the hybrid MPI+OpenMP variant): per layer, each
///    group runs its assigned tasks back-to-back, concurrent groups are
///    charged lockstep NIC contention, and re-distribution operations
///    implied by cross-layer input-output relations are added;
///
///  * `simulate` lowers the same execution onto rank programs (compute +
///    collective message schedules + re-distribution transfers + inter-layer
///    barriers) and runs the discrete-event network simulator, yielding a
///    "measured" makespan with full asynchrony and contention.

#include <span>
#include <vector>

#include "ptask/cost/cost_model.hpp"
#include "ptask/cost/hybrid_model.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/sched/schedule.hpp"
#include "ptask/sim/network_sim.hpp"

namespace ptask::sched {

struct TimelineOptions {
  /// Include re-distribution traffic for cross-layer input-output relations.
  bool include_redistribution = true;
  /// OpenMP threads per MPI rank; 1 = pure MPI.  With t > 1, collectives run
  /// over the rank sub-layout and every collective pays a team fork/join
  /// (see cost::HybridCostModel).
  int threads_per_rank = 1;
  /// In the simulation path, collectives repeated more often than this are
  /// lowered explicitly this many times and the remaining repetitions are
  /// charged as (analytically priced) busy time -- keeps event counts sane
  /// for operations like DIIRK's O(n) broadcasts without losing mapping
  /// sensitivity.
  int max_explicit_repeats = 4;
  /// Insert a global barrier between layers in the simulation (the group
  /// structure changes between layers, which synchronizes all cores).
  bool barrier_between_layers = true;
  /// In the simulation path, record every compute interval and transfer into
  /// SimResult::trace (see obs::spans_from_sim for turning the trace into
  /// exportable spans).
  bool record_trace = false;
};

struct TimelineResult {
  double makespan = 0.0;
  std::vector<double> layer_times;   ///< analytic per-layer times
  double redistribution_time = 0.0;  ///< analytic total re-distribution time
};

class TimelineEvaluator {
 public:
  explicit TimelineEvaluator(const cost::CostModel& cost) : cost_(&cost) {}

  /// Analytic evaluation.
  TimelineResult evaluate(const LayeredSchedule& schedule,
                          std::span<const cost::LayerLayout> layouts,
                          const TimelineOptions& options = {}) const;

  /// Canonical-schedule overloads: evaluate `schedule.layered` with explicit
  /// layouts, or with the layouts embedded by a mapping pass (throws
  /// std::invalid_argument when the schedule has neither layers nor
  /// embedded layouts).
  TimelineResult evaluate(const Schedule& schedule,
                          std::span<const cost::LayerLayout> layouts,
                          const TimelineOptions& options = {}) const;
  TimelineResult evaluate(const Schedule& schedule,
                          const TimelineOptions& options = {}) const;

  /// Discrete-event simulation of the mapped schedule.  Rank r of the
  /// simulation runs on physical core `rank_cores[r]`; rank_cores must cover
  /// every core any layout uses.  Convenience overload derives rank_cores
  /// from the first layer's layout.
  sim::SimResult simulate(const LayeredSchedule& schedule,
                          std::span<const cost::LayerLayout> layouts,
                          const TimelineOptions& options = {}) const;

  /// Canonical-schedule overloads, mirroring `evaluate`.
  sim::SimResult simulate(const Schedule& schedule,
                          std::span<const cost::LayerLayout> layouts,
                          const TimelineOptions& options = {}) const;
  sim::SimResult simulate(const Schedule& schedule,
                          const TimelineOptions& options = {}) const;

 private:
  const cost::CostModel* cost_;
};

/// Cross-layer re-distribution requirement derived from an input-output
/// relation: producer task's output parameter feeding a consumer's input.
struct RedistributionEdge {
  core::TaskId producer = core::kInvalidTask;
  core::TaskId consumer = core::kInvalidTask;
  std::size_t producer_layer = 0;
  std::size_t consumer_layer = 0;
  int producer_group = 0;
  int consumer_group = 0;
  std::string param_name;
  std::size_t bytes = 0;
  dist::Distribution src_dist = dist::Distribution::replicated();
  dist::Distribution dst_dist = dist::Distribution::replicated();
};

/// Enumerates the re-distribution edges of a layered schedule (edges of the
/// contracted graph between tasks in different layers whose parameter names
/// match as output -> input).
std::vector<RedistributionEdge> redistribution_edges(
    const LayeredSchedule& schedule);

/// Total re-distribution penalty of a Gantt schedule (CPA/CPR output or a
/// lowered layered schedule): for every graph edge whose endpoints occupy
/// different core sets, the matched parameters are re-distributed.  Priced
/// on the machine's slowest interconnect (the same default mapping pattern
/// the schedulers' symbolic costs use); replicated -> replicated moves are
/// priced as a binomial broadcast to the cores that lack the data.
///
/// This is the cost component the baseline schedulers do not see in their
/// objective -- the paper attributes CPR's losses on EPOL exactly to these
/// operations (Section 4.3).
double gantt_redistribution_time(const core::TaskGraph& graph,
                                 const GanttSchedule& schedule,
                                 const cost::CostModel& cost);

}  // namespace ptask::sched
