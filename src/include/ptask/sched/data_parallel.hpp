#pragma once
/// \file data_parallel.hpp
/// The pure data-parallel execution scheme (paper Section 4.2): no task
/// parallelism is exploited; every M-task runs on *all* available cores, one
/// after another, in a topological order.  Expressed as a LayeredSchedule
/// whose every layer uses g = 1 groups, so the same mapping and evaluation
/// machinery applies.

#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

class DataParallelScheduler {
 public:
  explicit DataParallelScheduler(const cost::CostModel& cost) : cost_(&cost) {}

  /// Chains are still contracted (it does not change the dp execution) so
  /// results stay comparable with the layer scheduler's.
  LayeredSchedule schedule(const core::TaskGraph& graph, int total_cores) const;

 private:
  const cost::CostModel* cost_;
};

}  // namespace ptask::sched
