#pragma once
/// \file incremental.hpp
/// Online scheduling with local repair: graph deltas + a re-entrant pipeline.
///
/// `IncrementalScheduler` keeps the settled schedule of an accumulated task
/// graph plus the per-layer memo state of the last pipeline invocation
/// (`LayerMemoEntry`, pipeline.hpp).  On a `GraphDelta` -- a batch of newly
/// arriving tasks and edges with release times and priorities -- it re-runs
/// the Algorithm-1 passes over the grown graph, but AssignLPT replays every
/// layer whose content signature still matches the memo and (re)schedules
/// only the layers the delta actually perturbed; the repaired suffix is
/// spliced onto the untouched settled prefix inside the same result.
///
/// The contract is *bit-identity*: `extend` produces exactly the schedule a
/// full from-scratch run over the accumulated graph would produce -- same
/// bytes under serve::serialize_schedule -- the repair only avoids
/// re-deriving the layers whose inputs did not change.  Release times and
/// priorities are arrival-ordering metadata (validated for monotonicity and
/// surfaced to callers); placement itself stays the paper's pure Algorithm 1,
/// which is what keeps the differential oracle exact.
///
/// The stateless `run` override makes the class a drop-in registry strategy
/// ("incremental"): a one-shot run is simply an extend from an empty memo,
/// so its output is the layer scheduler's modulo the strategy name.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ptask/core/mtask.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/sched/pipeline.hpp"

namespace ptask::sched {

/// One newly arriving task of a delta.
struct ArrivingTask {
  core::MTask task;
  double release_time = 0.0;  ///< arrival instant; >= the batch release
  int priority = 0;           ///< caller ordering hint (annotation only)
};

/// One online arrival batch: tasks are appended to the accumulated graph in
/// order (the i-th new task gets id `old_num_tasks + i`), then `edges` are
/// inserted atomically.  Edge endpoints refer to the *accumulated* graph, so
/// deltas may wire new tasks below any already-settled task.
struct GraphDelta {
  double release_time = 0.0;  ///< batch arrival instant (monotonic per session)
  std::vector<ArrivingTask> tasks;
  std::vector<std::pair<core::TaskId, core::TaskId>> edges;
};

/// An invalid delta: unknown edge endpoints, self edges, cycles, or a
/// non-monotonic release time.  The scheduler state is unchanged when this
/// is thrown (strong exception safety).
class DeltaError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// What the last repair reused vs. recomputed.
struct RepairStats {
  std::size_t total_layers = 0;
  std::size_t layers_reused = 0;     ///< replayed bit-identically from memo
  std::size_t layers_scheduled = 0;  ///< (re)scheduled this invocation
  std::size_t settled_prefix = 0;    ///< leading layers replayed unchanged
  std::size_t delta_tasks = 0;
  std::size_t delta_edges = 0;
};

/// Stateful online scheduler over a growing task graph.
///
/// Not thread-safe: concurrent sessions each own an instance (the serve
/// layer holds one per session behind a per-session lock).
class IncrementalScheduler final : public Scheduler {
 public:
  explicit IncrementalScheduler(const cost::CostModel& cost,
                                LayerSchedulerOptions options = {});

  std::string_view name() const override { return "incremental"; }

  /// Stateless one-shot schedule of `graph` (the registry path).  Exactly
  /// the layer scheduler's result modulo the strategy name; does not touch
  /// session state.
  Schedule run(const core::TaskGraph& graph, int total_cores) const override;

  /// Starts (or restarts) a session: schedules `graph` from scratch and
  /// settles the memo for subsequent `extend` calls.
  const Schedule& reset(core::TaskGraph graph, int total_cores,
                        double release_time = 0.0);

  /// Applies one arrival batch and repairs the schedule locally.  Returns
  /// the spliced schedule -- bit-identical (serve::serialize_schedule) to a
  /// full re-schedule of the accumulated graph.  Throws DeltaError and
  /// leaves all state untouched when the delta is invalid.
  const Schedule& extend(const GraphDelta& delta);

  bool has_schedule() const { return has_schedule_; }
  /// The settled schedule of the accumulated graph (requires has_schedule()).
  const Schedule& current() const;
  /// The accumulated graph the settled schedule covers.
  const core::TaskGraph& graph() const { return graph_; }
  int total_cores() const { return total_cores_; }
  /// Release instant of the last accepted batch (monotonicity floor).
  double last_release_time() const { return last_release_; }
  /// Reuse/repair counters of the last reset/extend.
  const RepairStats& last_stats() const { return stats_; }

 private:
  Pipeline pipeline_;
  core::TaskGraph graph_;
  int total_cores_ = 0;
  bool has_schedule_ = false;
  Schedule current_;
  std::vector<LayerMemoEntry> memo_;
  RepairStats stats_;
  double last_release_ = 0.0;
};

}  // namespace ptask::sched
