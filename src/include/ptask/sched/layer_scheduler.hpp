#pragma once
/// \file layer_scheduler.hpp
/// The combined layer-based scheduling algorithm (paper Section 3.2,
/// Algorithm 1).
///
/// Steps per invocation:
///  1. contract maximal linear chains of the M-task graph;
///  2. partition the contracted graph into layers of independent tasks
///     (greedy breadth-first);
///  3. for every layer, try every group count g in {1, ..., P}: split the P
///     symbolic cores into g equal groups, assign the layer's tasks to
///     groups with the modified greedy algorithm for independent tasks
///     (largest task first onto the least-loaded group; Sahni's 4/3-bound
///     algorithm for the uniprocessor case), and keep the g with the
///     smallest layer makespan under symbolic costs;
///  4. adjust the group sizes of the chosen partition proportionally to the
///     accumulated sequential work of each group (largest-remainder
///     rounding, every group keeps at least one core).
///
/// Since the pass-based refactor, LayerScheduler is a thin facade over
/// `Pipeline::algorithm1` (pipeline.hpp); each step above is a reusable
/// `Pass` and the facade merely preserves the historical LayeredSchedule
/// return type.

#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

struct LayerSchedulerOptions {
  /// Upper bound on the group counts tried per layer; 0 means "up to P".
  /// (Group counts beyond the layer's task count are never useful and are
  /// always skipped.)
  int max_groups = 0;
  /// Force exactly this many groups per layer instead of searching (clamped
  /// to the layer's task count); 0 means "search" (Algorithm 1, line 5).
  /// Used by the NPB experiments that compare fixed group counts (Fig. 17).
  int fixed_groups = 0;
  /// Apply the proportional group-size adjustment step.
  bool adjust_group_sizes = true;
  /// Contract linear chains before layering.
  bool contract_chains = true;

  // ---- performance knobs ----
  // All four are bit-transparent by contract: enabling any combination
  // must produce the byte-identical schedule of the all-disabled path
  // (docs/SCHEDULING.md, "Scheduler hot-path performance").  They exist so
  // the differential property tests can pin each optimization against the
  // naive reference, and default to on.

  /// Memoize symbolic task times through a per-invocation
  /// cost::CachedCostModel shared by every pass and the canonical Gantt
  /// lowering (and reuse a caller-provided cache, e.g. the portfolio's).
  bool cost_cache = true;
  /// Assign tasks via an index min-heap over group loads (O(n log g))
  /// instead of a least-loaded linear scan (O(n g)); ties break towards
  /// the lowest group index exactly like the scan.
  bool heap_lpt = true;
  /// Skip group-count candidates whose compute-only lower bound already
  /// meets the incumbent layer time.
  bool prune_group_search = true;
  /// Schedule independent layers on up to this many threads (<= 1 runs
  /// serially; layers are independent and tie-breaking is per-layer, so
  /// the parallel path is bit-identical to the serial one).
  int parallel_layers = 1;
};

class LayerScheduler {
 public:
  LayerScheduler(const cost::CostModel& cost, LayerSchedulerOptions options = {})
      : cost_(&cost), options_(options) {}

  /// Schedules `graph` onto `total_cores` symbolic cores.
  LayeredSchedule schedule(const core::TaskGraph& graph, int total_cores) const;

  const LayerSchedulerOptions& options() const { return options_; }

 private:
  const cost::CostModel* cost_;
  LayerSchedulerOptions options_;
};

/// Equal split of `total` cores into `g` groups (sizes differ by at most 1;
/// earlier groups get the extra cores).
std::vector<int> equal_group_sizes(int total, int g);

/// Largest-remainder proportional rounding of `total` cores to `weights`
/// (every entry gets at least 1; the result sums to `total`).
std::vector<int> proportional_group_sizes(int total,
                                          const std::vector<double>& weights);

}  // namespace ptask::sched
