#pragma once
/// \file schedule.hpp
/// Schedule representations.
///
/// The layer-based scheduler (paper Algorithm 1) produces a
/// `LayeredSchedule`: per layer, a partition of the P *symbolic* cores into
/// groups and an assignment of the layer's tasks to groups.  Symbolic cores
/// (paper Section 3.2, assumption (b)) abstract from the physical machine;
/// the mapping step later binds them to physical cores.
///
/// CPA and CPR produce a general `GanttSchedule` (start/finish/core-range
/// per task), which does not exhibit a layered structure; a LayeredSchedule
/// can be lowered to a Gantt view for uniform validation and comparison.
///
/// `Schedule` is the *canonical* result type every registered scheduling
/// strategy produces (see pipeline.hpp / registry.hpp): it always carries a
/// Gantt view plus a per-task core allocation, and additionally the layered
/// structure when the producing strategy has one.  Consumers (validation,
/// timeline, simulator, executor, linter, fuzz oracles, tools) operate on
/// this one type instead of special-casing per-scheduler result structs.

#include <span>
#include <string>
#include <vector>

#include "ptask/core/graph_algorithms.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/cost/cost_model.hpp"

namespace ptask::sched {

/// Group structure and task assignment of one layer.
struct ScheduledLayer {
  std::vector<core::TaskId> tasks;   ///< tasks of this layer (contracted ids)
  std::vector<int> group_sizes;      ///< symbolic cores per group; sums to P
  std::vector<int> task_group;       ///< task_group[i]: group executing tasks[i]
  double predicted_time = 0.0;       ///< symbolic-cost makespan of the layer

  int num_groups() const { return static_cast<int>(group_sizes.size()); }
};

/// Complete output of the layer-based scheduling step.
struct LayeredSchedule {
  int total_cores = 0;
  /// Linear-chain contraction the schedule was computed on; `layers` refer
  /// to tasks of `contraction.contracted`.
  core::ChainContraction contraction;
  std::vector<ScheduledLayer> layers;
  /// Sum of predicted layer times (symbolic costs, no re-distribution).
  double predicted_makespan = 0.0;
};

/// One task's slot in a Gantt-style schedule over symbolic cores [0, P).
/// The core set need not be contiguous (CPA/CPR pick whichever cores free up
/// first); for layered schedules it always is.
struct TaskSlot {
  std::vector<int> cores;
  double start = 0.0;
  double finish = 0.0;

  int num_cores() const { return static_cast<int>(cores.size()); }
};

/// General M-task schedule (CPA/CPR output; lowered LayeredSchedules).
struct GanttSchedule {
  int total_cores = 0;
  std::vector<TaskSlot> slots;  ///< indexed by TaskId of the scheduled graph
  double makespan = 0.0;
};

/// Lowers a layered schedule to the Gantt view: layers execute one after
/// another; inside a layer, each group occupies a contiguous symbolic core
/// range and runs its tasks back-to-back in assignment order.  Task times
/// are taken from `task_time(task_id, q, num_groups)`.
template <typename TimeFn>
GanttSchedule to_gantt(const LayeredSchedule& schedule, TimeFn&& task_time) {
  GanttSchedule gantt;
  gantt.total_cores = schedule.total_cores;
  gantt.slots.resize(
      static_cast<std::size_t>(schedule.contraction.contracted.num_tasks()));
  double layer_start = 0.0;
  for (const ScheduledLayer& layer : schedule.layers) {
    // Every task of group g occupies the same contiguous core range, so the
    // range is materialized once per group and copied per task (one memcpy
    // per slot instead of a zero-fill plus an element-wise rewrite).
    std::vector<std::vector<int>> group_cores(layer.group_sizes.size());
    int next_core = 0;
    for (std::size_t g = 0; g < layer.group_sizes.size(); ++g) {
      group_cores[g].reserve(static_cast<std::size_t>(layer.group_sizes[g]));
      for (int c = 0; c < layer.group_sizes[g]; ++c) {
        group_cores[g].push_back(next_core + c);
      }
      next_core += layer.group_sizes[g];
    }
    std::vector<double> group_clock(layer.group_sizes.size(), layer_start);
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      const core::TaskId id = layer.tasks[i];
      const std::size_t g = static_cast<std::size_t>(layer.task_group[i]);
      const int q = layer.group_sizes[g];
      const double t = task_time(id, q, layer.num_groups());
      TaskSlot& slot = gantt.slots[static_cast<std::size_t>(id)];
      slot.cores = group_cores[g];
      slot.start = group_clock[g];
      slot.finish = slot.start + t;
      group_clock[g] = slot.finish;
    }
    double layer_end = layer_start;
    for (double c : group_clock) layer_end = std::max(layer_end, c);
    layer_start = layer_end;
  }
  gantt.makespan = layer_start;
  return gantt;
}

/// Canonical output of any scheduling strategy.
///
/// Indices are uniform: `gantt.slots`, `allocation`, and the task ids inside
/// `layered` all refer to tasks of `layered.contraction.contracted`.  For
/// strategies without a layered structure (CPA/CPR) the contraction is the
/// identity and `layered.layers` is empty.
struct Schedule {
  std::string strategy;       ///< registry name of the producing strategy
  LayeredSchedule layered;    ///< contraction always valid; layers optional
  GanttSchedule gantt;        ///< uniform Gantt view (always populated)
  std::vector<int> allocation;  ///< symbolic cores per (contracted) task
  /// Physical per-layer layouts when a mapping pass ran (layered schedules
  /// only); empty otherwise.
  std::vector<cost::LayerLayout> layouts;
  /// Free-form diagnostics accumulated by passes / the portfolio scoreboard.
  std::vector<std::string> notes;
  /// Incremental repair annotation: the number of leading layers replayed
  /// unchanged from the previous settled schedule (the stable prefix of a
  /// spliced schedule).  0 for offline strategies and full re-schedules.
  /// Pure annotation like `notes`: excluded from serve::serialize_schedule,
  /// so spliced and monolithic schedules of the same graph stay
  /// byte-identical on the wire.
  std::size_t settled_prefix_layers = 0;

  int total_cores() const { return gantt.total_cores; }
  double makespan() const { return gantt.makespan; }
  bool has_layers() const { return !layered.layers.empty(); }
  std::size_t num_layers() const { return layered.layers.size(); }

  /// The graph the slot/allocation indices refer to.
  const core::TaskGraph& scheduled_graph() const {
    return layered.contraction.contracted;
  }
  int num_tasks() const { return scheduled_graph().num_tasks(); }

  /// Symbolic cores executing `id` (empty for markers).
  std::span<const int> task_cores(core::TaskId id) const {
    return gantt.slots[static_cast<std::size_t>(id)].cores;
  }
  /// Number of cores allocated to `id`.
  int task_width(core::TaskId id) const {
    return allocation[static_cast<std::size_t>(id)];
  }
  /// Group sizes of one layer (empty span when the strategy is not layered).
  std::span<const int> group_sizes(std::size_t layer) const {
    return layered.layers[layer].group_sizes;
  }
  /// Tasks executed by symbolic core `core`, ordered by start time -- the
  /// core-sequence view CPA/CPR results historically lacked.
  std::vector<core::TaskId> core_sequence(int core) const;
};

/// The number of leading layers on which two schedules agree exactly
/// (same tasks, group sizes, assignment, and predicted time) -- the splice
/// invariant check: an incremental schedule and the full re-schedule of the
/// same graph share at least the settled prefix.
std::size_t common_layer_prefix(const Schedule& a, const Schedule& b);

/// Human-readable rendering of a layered schedule (groups per layer and the
/// task-to-group assignment).
std::string describe(const LayeredSchedule& schedule);

/// Human-readable rendering of a canonical schedule: strategy, makespan,
/// the layered structure when present, and any notes.
std::string describe(const Schedule& schedule);

}  // namespace ptask::sched
