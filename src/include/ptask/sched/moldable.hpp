#pragma once
/// \file moldable.hpp
/// Shared machinery for allocation-based moldable-task schedulers (CPA and
/// CPR, paper Section 4.3): a precomputed T(t, p) table and a bottom-level
/// list scheduler that turns an allocation into a Gantt schedule.

#include <limits>
#include <span>
#include <vector>

#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

/// Internal cost model a moldable scheduler optimizes.
///
/// `CommAware` prices computation plus the task's group/global collectives
/// under the default mapping pattern -- the same information the layer
/// scheduler uses.  Orthogonal collectives are inter-task exchanges whose
/// cost depends on the (unknown) group structure of a layer; they are not
/// part of T(t, p) for any of the schedulers.
///
/// `ComputeOnly` prices Tcomp/p only -- the near-linear speedup functions
/// the original CPA/CPR publications evaluate with.  A scheduler driven by
/// this model is blind to the communication penalty of very wide tasks,
/// which is precisely the failure mode the paper demonstrates for CPR on
/// the extrapolation method (Fig. 13 right).
enum class MoldableCostMode { CommAware, ComputeOnly };

/// Common result of the allocation-based schedulers (CPA/MCPA/CPR): cores
/// per task plus the list-scheduled Gantt view.  Convert to the canonical
/// `Schedule` with `canonical()` (pipeline.hpp) for the group/core-sequence
/// accessors and uniform downstream consumption.
struct MoldableResult {
  std::vector<int> allocation;  ///< cores per task
  GanttSchedule schedule;
};

/// Precomputed execution times T(t, p) for p in [1, P].
class TaskTimeTable {
 public:
  TaskTimeTable(const core::TaskGraph& graph, const cost::CostModel& cost,
                int total_cores,
                MoldableCostMode mode = MoldableCostMode::CommAware);

  double time(core::TaskId id, int p) const;
  int total_cores() const { return total_cores_; }

 private:
  int total_cores_;
  std::vector<std::vector<double>> times_;  // [task][p-1]
};

/// List-schedules `graph` with the fixed per-task core counts `allocation`
/// onto `P = table.total_cores()` symbolic cores.  Tasks are prioritized by
/// decreasing bottom level; a ready task starts as soon as its allocation of
/// cores is free (the cores that become available earliest are picked, with
/// ties broken towards the cores of the task's predecessors).
///
/// `abort_above` is a search-pruning cutoff for iterative callers (CPR): the
/// partial makespan only ever grows as tasks are placed, so once it exceeds
/// the cutoff the final makespan is guaranteed to as well and the caller
/// will reject the trial whatever the rest looks like.  When the cutoff
/// trips, the returned schedule is *partial* -- its makespan already
/// exceeds `abort_above`, which is all a reject decision needs -- so pass
/// the default (+inf) whenever the schedule itself is wanted.
GanttSchedule list_schedule(
    const core::TaskGraph& graph, std::span<const int> allocation,
    const TaskTimeTable& table,
    double abort_above = std::numeric_limits<double>::infinity());

}  // namespace ptask::sched
