#pragma once
/// \file portfolio.hpp
/// Portfolio auto-scheduler: runs every registered strategy on the input,
/// scores the candidate schedules, and returns the winner.
///
/// The paper's experiments show no single strategy dominates: the layer
/// scheduler wins when layers hold several similar tasks, pure data
/// parallelism wins for long chains, and CPA/CPR occupy niches in between.
/// A portfolio sidesteps the choice: scheduling is cheap relative to
/// execution, so running all strategies and keeping the best predicted
/// schedule is the practical auto-tuning answer.
///
/// With the default SymbolicMakespan metric the portfolio's winner is, by
/// construction, never worse (under the scoring metric) than any individual
/// strategy -- the dominance property the fuzz oracle checks.

#include <string>
#include <vector>

#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/pipeline.hpp"

namespace ptask::sched {

/// How candidate schedules are compared.
enum class PortfolioMetric {
  /// Gantt makespan under each strategy's own symbolic costs (default).
  SymbolicMakespan,
  /// SymbolicMakespan plus the re-distribution penalty the strategies do
  /// not price into their objective (gantt_redistribution_time) -- punishes
  /// CPR-style wide allocations on chain graphs.
  CommAware,
  /// Discrete-event simulated makespan of the mapped schedule (layered
  /// candidates; allocation-only candidates fall back to CommAware).
  Simulated,
};

const char* to_string(PortfolioMetric metric);

struct PortfolioOptions {
  /// Strategy names to run; empty = every registered strategy except the
  /// portfolio itself.
  std::vector<std::string> strategies;
  PortfolioMetric metric = PortfolioMetric::SymbolicMakespan;
  /// Run the strategies in concurrent threads (the schedulers are const and
  /// thread-safe; tracing is per-thread).
  bool parallel = false;
  /// Price every strategy through one shared cost::CachedCostModel.  The
  /// cache keys on task *content* fingerprints, so it pays off when the
  /// graph repeats tasks (ODE/NPB step graphs: ~78% hit rate measured on
  /// pabm) and the strategies re-price the same (task, group size) pairs.
  /// On large graphs of all-distinct tasks it is a measured pessimization
  /// (0.2% hit rate and ~4x slower mcpa on a 6k-task fuzz instance --
  /// millions of never-repeating keys pay the insert overhead for
  /// nothing), hence off by default.  Bit-transparent either way: cached
  /// times are the same doubles the plain model computes.
  bool shared_cost_cache = false;
};

/// One row of the portfolio scoreboard.
struct StrategyScore {
  std::string strategy;
  double makespan = 0.0;        ///< candidate's symbolic Gantt makespan
  double redistribution = 0.0;  ///< unpriced re-distribution penalty
  double score = 0.0;           ///< metric value the decision used
  double millis = 0.0;          ///< wall time to schedule + score
  bool failed = false;          ///< strategy threw; score is +inf
  std::string error;
};

struct PortfolioReport {
  std::vector<StrategyScore> scores;  ///< in strategy order
  std::string winner;
};

class PortfolioScheduler final : public Scheduler {
 public:
  explicit PortfolioScheduler(const cost::CostModel& cost,
                              PortfolioOptions options = {})
      : cost_(&cost), options_(std::move(options)) {}

  std::string_view name() const override { return "portfolio"; }

  /// Runs all strategies and returns the winner's schedule.  The winner
  /// keeps its own strategy name in Schedule::strategy; the scoreboard is
  /// appended to Schedule::notes (one line per strategy).  Ties break
  /// towards the earlier strategy in the option order.  Throws
  /// std::runtime_error if every strategy fails.
  Schedule run(const core::TaskGraph& graph, int total_cores) const override;

  /// As above, additionally filling `report` with the scoreboard.
  Schedule run(const core::TaskGraph& graph, int total_cores,
               PortfolioReport& report) const;

  const PortfolioOptions& options() const { return options_; }

 private:
  const cost::CostModel* cost_;
  PortfolioOptions options_;
};

}  // namespace ptask::sched
