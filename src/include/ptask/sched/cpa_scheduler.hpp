#pragma once
/// \file cpa_scheduler.hpp
/// CPA: Critical Path and Area-based scheduling (Radulescu & van Gemund,
/// ICPP'01), one of the two baselines the paper compares against
/// (Section 4.3).
///
/// CPA decouples allocation from scheduling.  The allocation phase starts
/// every task at one core and repeatedly grants one more core to the
/// critical-path task that benefits most, until the critical path length
/// TCP no longer exceeds the average area TA = sum(T(t,p_t) * p_t) / P.
/// The scheduling phase list-schedules the allocated tasks by bottom level.
///
/// The characteristic failure mode the paper observes (PABM, Fig. 13 left)
/// emerges naturally: the allocation phase hands the K independent stage
/// tasks more cores in total than the machine has, so the scheduling phase
/// cannot run them concurrently and large idle gaps appear.

#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/moldable.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

/// Deprecated: CPA/MCPA return the shared MoldableResult (moldable.hpp);
/// prefer the canonical `Schedule` via the scheduler registry.  The alias
/// keeps existing call sites compiling.
using CpaResult = MoldableResult;

class CpaScheduler {
 public:
  /// The default communication-aware cost mode lets the over-allocation
  /// emerge: the benefit criterion keeps granting cores past the point
  /// where a task's own execution time stops improving.
  explicit CpaScheduler(const cost::CostModel& cost,
                        MoldableCostMode mode = MoldableCostMode::CommAware)
      : cost_(&cost), mode_(mode) {}

  MoldableResult schedule(const core::TaskGraph& graph, int total_cores) const;

 private:
  const cost::CostModel* cost_;
  MoldableCostMode mode_;
};

/// MCPA: the modified CPA of Bansal et al. (Parallel Computing 32, 2006),
/// included as an additional baseline.  The allocation phase is CPA's, but
/// a task's allocation is bounded by P divided by the width of the task's
/// precedence level, so a layer of w independent tasks can never be granted
/// more than P cores in total -- directly removing CPA's over-allocation
/// pathology on wide stage layers.
class McpaScheduler {
 public:
  explicit McpaScheduler(const cost::CostModel& cost,
                         MoldableCostMode mode = MoldableCostMode::CommAware)
      : cost_(&cost), mode_(mode) {}

  MoldableResult schedule(const core::TaskGraph& graph, int total_cores) const;

 private:
  const cost::CostModel* cost_;
  MoldableCostMode mode_;
};

}  // namespace ptask::sched
