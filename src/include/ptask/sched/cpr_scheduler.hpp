#pragma once
/// \file cpr_scheduler.hpp
/// CPR: Critical Path Reduction scheduling (Radulescu et al., IPDPS'01),
/// the second baseline of the paper (Section 4.3).
///
/// CPR interleaves allocation and scheduling: starting from one core per
/// task it repeatedly tries to grant one more core to a critical-path task,
/// re-runs the list scheduler, and keeps the enlargement only if the
/// makespan actually improves; it stops when no critical-path task improves
/// the makespan.
///
/// Characteristic behaviour reproduced from the paper: for graphs dominated
/// by one long linear chain (EPOL, Fig. 13 right), CPR inflates the chain
/// tasks towards a data-parallel execution whose internal communication and
/// re-distribution overhead makes it *slower* than pure data parallelism.

#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/moldable.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

/// Deprecated: CPR returns the shared MoldableResult (moldable.hpp); prefer
/// the canonical `Schedule` via the scheduler registry.  The alias keeps
/// existing call sites compiling.
using CprResult = MoldableResult;

class CprScheduler {
 public:
  /// The default compute-only cost mode follows the near-linear speedup
  /// functions of the original CPR evaluation; it is what lets CPR talk
  /// itself into the very wide chain allocations the paper observes.  Pass
  /// MoldableCostMode::CommAware to let CPR optimize the full model instead.
  explicit CprScheduler(const cost::CostModel& cost,
                        MoldableCostMode mode = MoldableCostMode::ComputeOnly)
      : cost_(&cost), mode_(mode) {}

  MoldableResult schedule(const core::TaskGraph& graph, int total_cores) const;

 private:
  const cost::CostModel* cost_;
  MoldableCostMode mode_;
};

}  // namespace ptask::sched
