#pragma once
/// \file pipeline.hpp
/// Pass-based scheduling pipeline and the common `Scheduler` interface.
///
/// The paper's Algorithm 1 is a pipeline: chain contraction -> layer
/// partitioning -> group-count search -> LPT assignment -> proportional
/// group adjustment.  Each stage is a `Pass` over a shared `PassContext`
/// (graph, cost model, core budget, working state, diagnostics), and
/// `Pipeline` composes passes into a `Scheduler` producing the canonical
/// `Schedule`.  `Pipeline::algorithm1` builds the exact five-pass chain of
/// the paper; custom pipelines can reorder, drop, or insert passes (e.g.
/// map::MapCoresPass binds physical cores as a sixth stage).
///
/// Every strategy in the repository -- the layer scheduler, CPA/MCPA/CPR,
/// pure data parallelism, and the portfolio -- implements `Scheduler`, so
/// consumers depend on one interface and one result type.  Discovery and
/// construction by name goes through `SchedulerRegistry` (registry.hpp).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/moldable.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::sched {

/// Common interface of all scheduling strategies: one canonical result.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Stable strategy name (registry key; also stamped into the result).
  virtual std::string_view name() const = 0;
  /// Schedules `graph` onto `total_cores` symbolic cores.
  virtual Schedule run(const core::TaskGraph& graph, int total_cores) const = 0;
};

/// Memoized result of one settled layer, carried between pipeline
/// invocations by the incremental scheduler.
///
/// The key is the layer's *content signature*: the ordered list of
/// original-task member sets of its contracted nodes (plus the candidate
/// group counts GroupSearch derived for it).  Old tasks are immutable in
/// the online-arrival model and chain contraction merges members
/// deterministically, so an identical signature implies identical merged
/// task contents -- and `schedule_layer` is a pure function of (contents in
/// layer order, candidates, P, cost model, options), so the memoized
/// post-adjust layer can be replayed bit-identically under remapped
/// contracted ids.  `task_times` stores the exact Gantt-lowering doubles of
/// the settled run: replaying them through `to_gantt` (instead of deriving
/// durations from slot differences, which is not FP-exact) keeps the
/// spliced schedule byte-identical to a full re-schedule.
struct LayerMemoEntry {
  /// Per contracted task of the layer, in layer order: the original-task
  /// ids merged into it (contraction.members[task]).
  std::vector<std::vector<core::TaskId>> members;
  /// Candidate group counts GroupSearch produced for the layer.
  std::vector<int> candidates;
  /// The settled post-AdjustGroups layer (contracted ids of its own run;
  /// remapped positionally on reuse).
  ScheduledLayer layer;
  /// Symbolic task time per layer task (layer.tasks order) used by the
  /// Gantt lowering.
  std::vector<double> task_times;
};

/// Shared state the passes of one pipeline invocation read and write.
struct PassContext {
  // ---- inputs (set by Pipeline::run, constant across passes) ----
  const core::TaskGraph* graph = nullptr;  ///< original (uncontracted) graph
  const cost::CostModel* cost = nullptr;
  int total_cores = 0;
  LayerSchedulerOptions options;

  /// The model passes should price through: the invocation's shared
  /// cost::CachedCostModel when options.cost_cache is on (owned below, or
  /// a caller-provided cache such as the portfolio's), otherwise `cost`.
  /// Null in hand-built contexts; passes fall back to `cost`.
  const cost::CostModel* pricing = nullptr;
  /// Keeps a pipeline-created cache alive for the invocation.
  std::shared_ptr<const cost::CostModel> owned_cache;

  /// Settled per-layer memo from a previous invocation (empty on the first
  /// run).  AssignLPT reuses every layer whose content signature matches an
  /// entry and schedules only the rest; AdjustGroups skips reused layers.
  /// Pipeline::run_with_context rewrites it from the new result, so the
  /// context can be re-run after each graph delta.
  std::vector<LayerMemoEntry> memo;

  // ---- working state (produced/consumed along the pass chain) ----
  core::ChainContraction contraction;                 ///< ContractChains
  std::vector<std::vector<core::TaskId>> layer_tasks; ///< Layerize
  std::vector<std::vector<int>> group_candidates;     ///< GroupSearch
  std::vector<ScheduledLayer> layers;                 ///< AssignLPT / Adjust
  /// Per-layer dirty flags (AssignLPT): 1 = scheduled this run, 0 = replayed
  /// from the memo.  Sized like `layers`; all-dirty when the memo is empty.
  std::vector<std::uint8_t> layer_dirty;
  /// Per-layer index into `memo` of the entry a clean layer was replayed
  /// from (-1 for dirty layers) -- the Gantt lowering reads the settled
  /// task times through it.
  std::vector<std::int32_t> layer_memo;
  std::vector<cost::LayerLayout> layouts;             ///< map::MapCoresPass

  // ---- incremental-repair accounting (filled by AssignLPT) ----
  std::size_t settled_prefix = 0;   ///< leading layers replayed unchanged
  std::size_t layers_reused = 0;    ///< layers replayed from the memo
  std::size_t layers_scheduled = 0; ///< layers (re)scheduled this run

  /// Free-form diagnostics; copied into Schedule::notes.
  std::vector<std::string> notes;
};

/// One composable stage of a scheduling pipeline.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  virtual void run(PassContext& ctx) const = 0;
};

/// Step 1: contract maximal linear chains (or install the identity
/// contraction when options.contract_chains is off).
class ContractChains final : public Pass {
 public:
  std::string_view name() const override { return "contract-chains"; }
  void run(PassContext& ctx) const override;
};

/// Step 2: greedy breadth-first partition of the contracted graph into
/// layers of pairwise independent tasks.
class Layerize final : public Pass {
 public:
  std::string_view name() const override { return "layerize"; }
  void run(PassContext& ctx) const override;
};

/// Step 3: enumerate the candidate group counts of every layer (Algorithm 1,
/// line 5): {1, ..., min(P, |layer|)}, clipped by options.max_groups, or the
/// single forced options.fixed_groups value.
class GroupSearch final : public Pass {
 public:
  std::string_view name() const override { return "group-search"; }
  void run(PassContext& ctx) const override;
};

/// Step 4: for every layer, evaluate each candidate group count with an
/// equal core split and the modified greedy assignment for independent
/// tasks (largest task first onto the least-loaded group; Sahni's 4/3-bound
/// algorithm for the uniprocessor case) and keep the candidate with the
/// smallest layer makespan under symbolic costs.
class AssignLPT final : public Pass {
 public:
  std::string_view name() const override { return "assign-lpt"; }
  void run(PassContext& ctx) const override;
};

/// Step 5: adjust the chosen group sizes proportionally to the accumulated
/// sequential work of each group (largest-remainder rounding, every group
/// keeps at least one core) and re-price the layers.  No-op when
/// options.adjust_group_sizes is off or a layer has a single group.
class AdjustGroups final : public Pass {
 public:
  std::string_view name() const override { return "adjust-groups"; }
  void run(PassContext& ctx) const override;
};

/// A `Scheduler` that runs an ordered pass chain over one PassContext.
class Pipeline final : public Scheduler {
 public:
  Pipeline(const cost::CostModel& cost, std::string name = "pipeline",
           LayerSchedulerOptions options = {})
      : cost_(&cost), name_(std::move(name)), options_(options) {}

  /// Appends a pass; returns *this for chaining.
  Pipeline& append(std::unique_ptr<Pass> pass);

  /// The paper's Algorithm 1 as the canonical five-pass chain.
  static Pipeline algorithm1(const cost::CostModel& cost,
                             LayerSchedulerOptions options = {});

  std::string_view name() const override { return name_; }
  Schedule run(const core::TaskGraph& graph, int total_cores) const override;

  /// Runs the pass chain and assembles only the layered result -- the
  /// compatibility path LayerScheduler::schedule delegates to.
  LayeredSchedule run_layered(const core::TaskGraph& graph,
                              int total_cores) const;

  /// Builds a fresh context for `graph` (installs the invocation's pricing
  /// cache per the options).  Public so re-entrant callers (the incremental
  /// scheduler, tests) can thread memo state between invocations.
  PassContext make_context(const core::TaskGraph& graph,
                           int total_cores) const;

  /// Re-entrant entry point: runs the pass chain over a caller-owned
  /// context and assembles the canonical result.  Layers whose content
  /// signature matches `ctx.memo` are replayed (bit-identically) instead of
  /// re-scheduled; on return `ctx.memo` holds the new settled state and the
  /// repair counters (`settled_prefix`, `layers_reused`,
  /// `layers_scheduled`) describe what the run reused.  With an empty memo
  /// this is exactly `run` (every layer dirty).
  Schedule run_with_context(PassContext& ctx) const;

  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }
  const LayerSchedulerOptions& options() const { return options_; }

 private:
  const cost::CostModel* cost_;
  std::string name_;
  LayerSchedulerOptions options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Canonicalizes a layered schedule: lowers it to the Gantt view with the
/// scheduler's own symbolic costs and derives the per-task allocation.
Schedule canonical(LayeredSchedule layered, const cost::CostModel& cost,
                   std::string strategy);

/// Canonicalizes an allocation-based (CPA/MCPA/CPR) result: the contraction
/// is the identity, the Gantt view is the list schedule itself.
Schedule canonical(const core::TaskGraph& graph, MoldableResult result,
                   std::string strategy);

}  // namespace ptask::sched
