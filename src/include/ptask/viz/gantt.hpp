#pragma once
/// \file gantt.hpp
/// Schedule and trace visualization: ASCII timelines for terminals and SVG
/// for documentation.  Renders the Gantt view of any schedule (the layer
/// scheduler's output lowered via sched::to_gantt, or CPA/CPR output
/// directly) and per-rank utilization timelines from simulator traces.

#include <string>

#include "ptask/core/task_graph.hpp"
#include "ptask/sched/schedule.hpp"
#include "ptask/sim/network_sim.hpp"

namespace ptask::viz {

struct RenderOptions {
  int width = 72;          ///< character columns (ASCII) of the time axis
  int svg_width_px = 900;  ///< pixel width of the SVG time axis
  int svg_row_px = 18;     ///< pixel height per core row
  /// Collapse consecutive cores with identical slot sequences into one row
  /// (groups render as a single band).
  bool collapse_identical_rows = true;
};

/// ASCII Gantt chart of a schedule: one row per (collapsed) core range,
/// one letter per task (a, b, c, ... in task-id order), '.' for idle.
std::string ascii_gantt(const core::TaskGraph& graph,
                        const sched::GanttSchedule& schedule,
                        const RenderOptions& options = {});

/// SVG rendering of the same chart with task names and a time axis.
std::string svg_gantt(const core::TaskGraph& graph,
                      const sched::GanttSchedule& schedule,
                      const RenderOptions& options = {});

/// ASCII utilization timeline from a simulation trace: one row per rank,
/// '#' where the rank computes, '~' where it receives data, '.' idle.
std::string ascii_trace(const sim::SimResult& result, int num_ranks,
                        const RenderOptions& options = {});

/// CSV export of a simulation trace (kind,rank,peer,start,end,bytes) for
/// external analysis.
std::string trace_csv(const sim::SimResult& result);

}  // namespace ptask::viz
