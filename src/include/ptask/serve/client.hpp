#pragma once
/// \file client.hpp
/// Blocking client for the ptask_served wire protocol -- used by
/// `tools/ptask_loadgen`, the serve tests, and anything else that wants a
/// schedule from a running daemon.
///
/// One `Client` owns one persistent connection and issues framed
/// request/response round trips.  It also exposes the raw byte interface
/// (`send_raw` + `read_response`) so the fault-injecting load generator can
/// deliberately send malformed, oversized, or truncated frames and assert
/// the daemon's structured error behavior.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ptask/serve/protocol.hpp"

namespace ptask::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to the daemon on `host:port` (throws std::runtime_error).
  void connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One framed round trip: sends `payload`, returns the response payload.
  /// Throws std::runtime_error when the connection breaks.
  std::string call(std::string_view payload);

  /// Convenience: serialize + send a schedule request, return the raw
  /// response payload (JSON text; parse with obs::json or check_ok).
  std::string schedule(const ScheduleRequest& request);

  /// {"type":"stats"} round trip.
  std::string stats();

  /// {"type":"metrics"} round trip (raw response payload; use
  /// response_metrics_text to unwrap the exposition string).
  std::string metrics();

  /// {"type":"trace"} round trip (raw response payload; use
  /// response_trace_json to unwrap the Chrome trace object).
  std::string trace();

  /// Sends raw bytes without framing (for protocol fault injection).
  void send_raw(std::string_view bytes);

  /// Reads one framed response; std::nullopt on EOF (server closed the
  /// connection, e.g. after an oversized frame).
  std::optional<std::string> read_response();

 private:
  int fd_ = -1;
};

/// True when a response payload parses and carries {"ok":true}.
bool response_ok(std::string_view payload);

/// The "PTS00x" code of an error response, or "" for success/unparseable.
std::string response_error_code(std::string_view payload);

/// The serialized schedule body of a success response ("" when absent).
/// Byte-exact extraction: the returned text is the exact sub-range the
/// server produced with serialize_schedule, so it can be compared against a
/// local run byte for byte.  A trailing "certificate_hash" member (certified
/// responses) is sliced off along with the envelope.
std::string response_schedule_json(std::string_view payload);

/// The "certificate_hash" of a certified success response ("" when absent).
std::string response_certificate_hash(std::string_view payload);

/// The "request_id" member of any response ("" when absent/unparseable).
std::string response_request_id(std::string_view payload);

/// The Prometheus exposition text of a "metrics" response ("" when absent).
std::string response_metrics_text(std::string_view payload);

/// The Chrome trace object of a "trace" response as raw JSON text (the
/// exact sub-range of the payload; "" when absent).
std::string response_trace_json(std::string_view payload);

}  // namespace ptask::serve
