#pragma once
/// \file schedule_cache.hpp
/// Sharded whole-schedule memo of the scheduling service.
///
/// The cache generalizes `cost::CachedCostModel`'s content-fingerprint idea
/// from single task times to whole schedules: the key is the request's
/// *canonical serialization* (scheduler name, core count, machine spec, and
/// the full graph including every task weight -- see
/// `serve::canonical_key`), so two requests share an entry iff their
/// content is identical.  The full key string is compared on lookup (the
/// hash only picks the shard and bucket), so near-collision requests --
/// same shape, one weight different -- can never alias.
///
/// Entries are *single-flight*: when N threads ask for the same absent key
/// concurrently, exactly one runs the compute function while the others
/// block on a shared future and then return the identical bytes.  That
/// bounds a burst of identical requests to at most one cache miss, the
/// property the concurrent-correctness test (and the TSan CI preset) pins.
/// A compute function that throws propagates the exception to every waiter
/// and removes the entry, so a later request retries instead of caching a
/// failure.
///
/// Values are immutable shared strings (the serialized schedule body), so a
/// hit hands out the exact bytes the miss computed -- cached responses are
/// bit-identical to uncached ones by construction.  Hits and misses are
/// counted per instance and in the global metrics registry
/// (`serve.cache.hit` / `serve.cache.miss`).

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ptask::serve {

class ScheduleCache {
 public:
  static constexpr std::size_t kShards = 16;

  using Entry = std::shared_ptr<const std::string>;

  /// Returns the cached value for `key`, computing it via `compute` when
  /// absent.  Concurrent callers with the same key block until the single
  /// in-flight computation finishes.  Exceptions from `compute` propagate
  /// to all waiters and evict the placeholder entry.
  Entry get_or_compute(const std::string& key,
                       const std::function<std::string()>& compute);

  /// Hit/miss accounting (a miss is counted once per computed entry).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Number of completed entries (in-flight placeholders excluded).
  std::size_t entries() const;
  /// Total bytes of completed cached values.
  std::size_t value_bytes() const;

  /// Drops every completed entry (in-flight computations finish and insert
  /// normally; counters are kept).
  void clear();

 private:
  struct Slot {
    std::shared_future<Entry> future;
    bool ready = false;  ///< set once the computing thread stored the value
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Slot> entries;
  };

  Shard& shard_for(const std::string& key);

  std::vector<Shard> shards_{kShards};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ptask::serve
