#pragma once
/// \file schedule_cache.hpp
/// Sharded whole-schedule memo of the scheduling service.
///
/// The cache generalizes `cost::CachedCostModel`'s content-fingerprint idea
/// from single task times to whole schedules: the key is the request's
/// *canonical serialization* (scheduler name, core count, machine spec, and
/// the full graph including every task weight -- see
/// `serve::canonical_key`), so two requests share an entry iff their
/// content is identical.  The full key string is compared on lookup (the
/// hash only picks the shard and bucket), so near-collision requests --
/// same shape, one weight different -- can never alias.
///
/// Entries are *single-flight*: when N threads ask for the same absent key
/// concurrently, exactly one runs the compute function while the others
/// block on a shared future and then return the identical bytes.  That
/// bounds a burst of identical requests to at most one cache miss, the
/// property the concurrent-correctness test (and the TSan CI preset) pins.
/// A compute function that throws propagates the exception to every waiter
/// and removes the entry, so a later request retries instead of caching a
/// failure.
///
/// Values are immutable shared strings (the serialized schedule body), so a
/// hit hands out the exact bytes the miss computed -- cached responses are
/// bit-identical to uncached ones by construction.  Hits and misses are
/// counted per instance and in the global metrics registry
/// (`serve.cache.hit` / `serve.cache.miss`).
///
/// The cache is optionally *bounded*: with `max_entries > 0`, completed
/// entries past the cap are evicted least-recently-used (every publish and
/// every ready hit refreshes recency).  Only READY entries live on the LRU
/// list, so an in-flight single-flight placeholder can never be evicted --
/// a burst of identical requests still costs exactly one compute even while
/// eviction is churning the rest of the cache.  Evictions are counted per
/// instance and as `serve.cache.evictions`.  Handed-out values are shared
/// pointers, so evicting an entry never invalidates bytes a response is
/// still writing.

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ptask::serve {

class ScheduleCache {
 public:
  static constexpr std::size_t kShards = 16;

  using Entry = std::shared_ptr<const std::string>;

  /// `max_entries` == 0 means unbounded (no LRU bookkeeping at all).
  explicit ScheduleCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// Returns the cached value for `key`, computing it via `compute` when
  /// absent.  Concurrent callers with the same key block until the single
  /// in-flight computation finishes.  Exceptions from `compute` propagate
  /// to all waiters and evict the placeholder entry.
  Entry get_or_compute(const std::string& key,
                       const std::function<std::string()>& compute);

  /// Hit/miss accounting (a miss is counted once per computed entry).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Completed entries dropped by the LRU cap (0 when unbounded).
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// The configured cap (0 = unbounded).
  std::size_t max_entries() const { return max_entries_; }

  /// Number of completed entries (in-flight placeholders excluded).
  std::size_t entries() const;
  /// Total bytes of completed cached values.
  std::size_t value_bytes() const;

  /// Drops every completed entry (in-flight computations finish and insert
  /// normally; counters are kept).
  void clear();

 private:
  struct Slot {
    std::shared_future<Entry> future;
    bool ready = false;  ///< set once the computing thread stored the value
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Slot> entries;
  };

  Shard& shard_for(const std::string& key);

  /// Moves `key` to the most-recently-used position (inserting it if new).
  /// Called only while holding no locks; takes the LRU mutex alone.
  void touch(const std::string& key);
  /// Evicts least-recently-used ready entries until the cap is met.  Takes
  /// the LRU mutex and a shard mutex strictly in sequence, never nested.
  void enforce_cap();

  std::size_t max_entries_ = 0;
  std::vector<Shard> shards_{kShards};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};

  /// LRU bookkeeping (only used when bounded): `lru_` front is most recent,
  /// `lru_pos_` maps a key to its list node.  Only READY entries appear.
  mutable std::mutex lru_mutex_;
  std::list<std::string> lru_;
  std::unordered_map<std::string, std::list<std::string>::iterator> lru_pos_;
};

}  // namespace ptask::serve
