#pragma once
/// \file server.hpp
/// The scheduling-as-a-service daemon core (`tools/ptask_served` is a thin
/// main() around this class).
///
/// A `Server` listens on a loopback TCP port and answers the length-prefixed
/// JSON protocol of protocol.hpp.  The data path is event-driven: one
/// reactor thread (see reactor.hpp) multiplexes every connection with epoll,
/// assembles complete frames nonblockingly, and hands them to a bounded
/// admission queue; a pool of compute workers drains the queue, so
/// `num_workers` sizes *compute* and a thousand idle keep-alive connections
/// cost no threads.  When the queue is full a request is rejected
/// immediately with the stable PTS008 overload error (carrying a
/// `retry_after_ms` backoff hint) instead of growing memory without bound.
///
/// "schedule" requests are keyed by their canonical serialization and
/// answered from a single-flight `ScheduleCache`, so a repeated
/// graph/machine/scheduler request costs one scheduler run process-wide and
/// every response carries byte-identical schedule bytes.  Requests that
/// dequeue together and agree on (scheduler, machine, total_cores, certify)
/// but differ in graph are *batched*: they run through one
/// `sched::BatchScheduler` whose content-keyed pricing cache is shared
/// across the members, amortizing cost-model evaluations -- with responses
/// byte-identical to unbatched execution (the cache is bit-transparent).
///
/// Shutdown is graceful and prompt (eventfd wakeups, no poll timeouts):
/// `stop()` closes the listener, lets the workers drain every admitted
/// request, flushes the pending responses, and joins all threads --
/// in-flight work is drained, never aborted mid-schedule.
///
/// Observability: the server reports through the global metrics registry --
///   serve.requests          frames successfully read
///   serve.responses.ok      successful schedule/stats/ping responses
///   serve.error.PTS00x      one counter per protocol error code
///   serve.cache.hit/miss    schedule cache accounting (via ScheduleCache)
///   serve.latency_us        histogram of schedule-request service time
///   serve.connections       accepted connections
///   serve.phase.*_us        per-phase latency histograms: recv, parse,
///                           cache (lookup incl. single-flight wait),
///                           schedule/certify/serialize (cache misses
///                           only), send
///   serve.queue.enqueued    requests admitted to the bounded queue
///   serve.queue.rejected    requests rejected with PTS008 (queue full)
///   serve.queue.wait_us     histogram of time spent queued before a
///                           worker picked the request up (the queue depth
///                           is a stats/metrics gauge)
///   serve.batch.size        histogram of schedule-group sizes per worker
///                           dequeue (size 1 = unbatched)
///   serve.batch.runs        coalesced groups executed (size >= 2)
///   serve.batch.coalesced   requests served through a coalesced group
///   serve.strategy.<s>.*    per-scheduler latency_us + requests
///   serve.family.<f>.*      per-workload-family latency_us + requests
///                           (from the request's "family" annotation)
///   serve.slow_requests     requests at/over the slow-log threshold
///   serve.request_ids.minted  ids the server generated (vs client-supplied)
///   serve.incremental.submits/extends/closes  session request counts (the
///                           open-session count is a stats/metrics gauge;
///                           per-layer reuse counters live under
///                           sched.incremental.*)
/// A "stats" request renders the registry (plus in-flight/queue gauges,
/// cache gauges, and uptime) as the service dashboard; a "metrics" request
/// returns the same registry as a Prometheus text exposition
/// (render_metrics); a "trace" request drains the live tracer into a
/// Chrome/Perfetto trace.  Every request is tagged with a request id and,
/// when tracing is enabled, a span tree
/// serve.request -> queue/parse/cache.lookup[/schedule/certify/serialize]
/// on the worker's track (recv/send live on the reactor's track).
/// `rt::FaultOptions::from_env` is honored: with PTASK_FAULT_* set, workers
/// perturb themselves at request-handling synchronization points, widening
/// the interleavings the soak test explores.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ptask/rt/fault_injection.hpp"
#include "ptask/serve/reactor.hpp"
#include "ptask/serve/schedule_cache.hpp"

namespace ptask::sched {
class BatchScheduler;
}  // namespace ptask::sched

namespace ptask::serve {

struct SubmitRequest;
struct ExtendRequest;
struct CloseRequest;

struct ServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port,
  /// readable via Server::port() once started.
  int port = 0;
  /// Compute worker pool size (the reactor multiplexes connections, so
  /// this bounds concurrent scheduler runs, not concurrent clients).
  int num_workers = 8;
  /// Frames longer than this are answered with PTS005 and the connection is
  /// closed (the oversized payload is drained without buffering it).
  std::uint32_t max_request_bytes = 4u * 1024u * 1024u;
  /// LRU cap on completed schedule-cache entries; 0 = unbounded.  Evictions
  /// are reported as `serve.cache.evictions` and in the stats response.
  std::size_t cache_max_entries = 0;
  /// Admission-control bound: requests queued between the reactor and the
  /// worker pool.  A frame arriving with the queue full is answered with
  /// PTS008 immediately (never dropped silently).  0 = unbounded.
  std::size_t max_queue = 1024;
  /// Backoff hint carried in PTS008 responses.
  std::uint64_t overload_retry_after_ms = 100;
  /// Upper bound on requests one worker dequeues together (compatible
  /// schedule requests among them are coalesced into one shared-pricing
  /// batch).  1 disables batching.
  int batch_max = 8;
  /// Optional wait after the first dequeue for more requests to arrive and
  /// join the batch, in microseconds.  0 (default) batches only what is
  /// already queued -- batching then costs idle traffic zero added latency
  /// and kicks in exactly when a backlog exists.
  std::uint64_t batch_window_us = 0;
  /// Fault injection for the soak harness (default: from PTASK_FAULT_* env).
  rt::FaultOptions faults = rt::FaultOptions::from_env();
  /// Path of the slow-request log (JSON lines; see docs/OBSERVABILITY.md).
  /// Empty disables logging.  The file is truncated at start().
  std::string slow_log_path;
  /// Requests whose total service time (recv through send) is at least
  /// this many microseconds get a slow-log line and count into
  /// serve.slow_requests.  0 disables the threshold even with a log path.
  std::uint64_t slow_threshold_us = 0;
  /// Cap on concurrently open incremental sessions; a "submit" past the cap
  /// is answered with PTS007.  0 = unbounded.
  std::size_t max_sessions = 64;
};

class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the reactor + worker pool.  Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, drain every admitted request,
  /// flush responses, join all threads.  Idempotent; also run by the
  /// destructor.
  void stop();

  /// The bound port (valid after start()).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests currently being served (the "stats" in-flight gauge).
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// Requests admitted but not yet picked up by a worker (the "stats"
  /// queue-depth gauge).
  std::size_t queue_depth() const;

  const ScheduleCache& cache() const { return cache_; }

  /// Open incremental sessions (the "stats" sessions gauge).
  std::size_t num_sessions() const;

  /// Renders the stats-response JSON (also used by the daemon's shutdown
  /// summary and the loadgen artifact).  The payload parses cleanly with
  /// obs::json::parse: metric names are escaped and histograms carry their
  /// full log-bucket boundaries.
  std::string render_stats() const;

  /// Renders the Prometheus text exposition served by the "metrics"
  /// request type: the whole registry plus server gauges (in-flight,
  /// queue depth, cache entries/bytes, uptime).
  std::string render_metrics() const;

  /// Seconds since start().
  double uptime_s() const;

  /// Mints a process-unique server request id ("s-<nonce>-<seq>").
  std::string mint_request_id();

 private:
  struct RequestTrace;
  struct SessionState;
  struct RequestJob;
  struct ParsedJob;
  struct RequestQueue;

  /// Reactor-thread entry: admission control.  Full queue -> immediate
  /// PTS008; closed queue (shutdown) -> drop the connection.
  void on_frame(std::uint64_t conn_id, std::string&& payload,
                Reactor::Clock::time_point t_request, double span_begin_s,
                double recv_us);
  /// Reactor-thread entry: builds the PTS005 response for oversized frames.
  std::string on_oversize(std::uint32_t length);
  void worker_loop(int worker_index);
  /// Parses/dispatches one payload.  Returns true when `job.response` is
  /// final (non-schedule kinds, parse errors); returns false with
  /// `job.request` filled for schedule requests awaiting execution.
  bool dispatch_payload(ParsedJob& job);
  /// Cache lookup + (on miss) scheduler run for a schedule request; when
  /// `batch` is non-null the run prices through the batch's shared cache.
  void execute_schedule(ParsedJob& job, const sched::BatchScheduler* batch);
  /// Session requests (online incremental scheduling).  These bypass the
  /// whole-schedule cache entirely: session responses depend on mutable
  /// per-session state, so caching them would serve stale schedules.
  std::string handle_submit(const SubmitRequest& request, RequestTrace& trace);
  std::string handle_extend(const ExtendRequest& request, RequestTrace& trace);
  std::string handle_close(const CloseRequest& request, RequestTrace& trace);
  /// Mints a process-unique session id ("sess-<nonce>-<seq>").
  std::string mint_session_id();
  /// Request epilogue: records the root request span and, when the total
  /// time crosses the threshold, the slow-log line.
  void finish_request(const RequestTrace& trace, double span_begin_s,
                      bool tracing);

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> served_requests_{0};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::uint64_t id_nonce_ = 0;  ///< start()-time nonce in minted ids
  std::chrono::steady_clock::time_point start_time_{};
  rt::FaultInjector injector_;
  ScheduleCache cache_;
  /// Open incremental sessions, keyed by session id.  `sessions_mutex_`
  /// guards only the map; each session carries its own lock, so extends on
  /// distinct sessions run concurrently while extends on the same session
  /// serialize.  Values are shared_ptrs so a close() racing an in-flight
  /// extend just drops the map entry -- the extend keeps the state alive
  /// until it finishes.
  mutable std::mutex sessions_mutex_;
  std::unordered_map<std::string, std::shared_ptr<SessionState>> sessions_;
  std::atomic<std::uint64_t> next_session_id_{1};
  std::unique_ptr<Reactor> reactor_;
  std::unique_ptr<RequestQueue> queue_;
  std::vector<std::thread> workers_;
  std::mutex slow_log_mutex_;
  std::ofstream slow_log_;
};

}  // namespace ptask::serve
