#pragma once
/// \file protocol.hpp
/// Wire protocol of the scheduling service (`tools/ptask_served`).
///
/// Transport: length-prefixed JSON over a byte stream.  Every frame is a
/// 4-byte big-endian payload length followed by that many bytes of UTF-8
/// JSON.  A request is one frame; the matching response is one frame on the
/// same connection; connections are persistent (many request/response pairs
/// back to back).
///
/// Request kinds (the "type" member; default "schedule"):
///
///   schedule -- {"type":"schedule", "scheduler":"portfolio",
///                "total_cores":N, "machine":{...}, "graph":{...}}
///               Schedules the graph and returns {"ok":true,
///               "schedule":{...}}.  The schedule body is produced by
///               `serialize_schedule` and is *canonical*: the same request
///               content always yields byte-identical bytes, whether the
///               answer was computed or served from the daemon's cache.
///               With the opt-in member "certify":true, the schedule is
///               additionally audited by the independent certifier
///               (analysis::certify) before it is cached; the response then
///               carries "certificate_hash", the FNV-1a 64-bit hash of the
///               schedule bytes, and a failed audit is the PTS006 error
///               (never cached -- a later request recomputes).  The certify
///               flag is part of the canonical cache key, so certified and
///               uncertified answers never alias.
///   submit   -- {"type":"submit", "total_cores":N, "machine":{...},
///                "graph":{...}[, "release_time":R]}
///               Opens an online scheduling *session*: the graph is
///               scheduled by the incremental strategy and the server keeps
///               the session's accumulated graph plus the re-entrant
///               pipeline's memo state.  Returns {"ok":true,
///               "session":"sess-...", "incremental":{...},
///               "schedule":{...}} where "incremental" reports the repair
///               counters (total_layers / layers_reused / layers_scheduled
///               / settled_prefix).  Session responses are computed fresh
///               per request and are never stored in (or served from) the
///               whole-schedule cache.
///   extend   -- {"type":"extend", "session":"sess-...",
///                "delta":{"release_time":R, "tasks":[{...task fields...,
///                "release_time":r, "priority":p}, ...],
///                "edges":[[from,to], ...]}}
///               Applies one online arrival batch to the session: new tasks
///               are appended to the accumulated graph in order (the i-th
///               delta task gets id old_num_tasks + i), the edges -- which
///               may reference any accumulated task -- are inserted
///               atomically, and the schedule is repaired locally.  The
///               response has the submit shape; its schedule bytes are
///               bit-identical to a one-shot "incremental" schedule of the
///               whole accumulated graph.  An invalid delta (unknown ids,
///               self edges, cycles, non-monotonic release times) is the
///               PTS007 error and leaves the session untouched.
///   close    -- {"type":"close", "session":"sess-..."}  Ends the session
///               and frees its state; returns {"ok":true,
///               "session":"sess-...","closed":true}.
///   stats    -- {"type":"stats"}  Returns the service counters (requests,
///               cache hits/misses, per-code error counts, latency
///               quantiles with full log-bucket boundaries, in-flight
///               requests, and a dump of every registry counter/histogram).
///   metrics  -- {"type":"metrics"}  Returns {"ok":true,"metrics":"..."}
///               where the string is the Prometheus text exposition of the
///               whole metrics registry (see obs/prometheus.hpp) plus the
///               server gauges.
///   trace    -- {"type":"trace"}  Drains the live tracer and returns
///               {"ok":true,"trace":{...}} with a Chrome/Perfetto trace
///               object (empty when tracing is disabled or compiled out).
///   ping     -- {"type":"ping"}  Returns {"ok":true,"pong":true}.
///
/// Request correlation: every response (ok, error, stats, ...) carries a
/// "request_id" string member right after "ok".  Clients may supply their
/// own top-level "request_id" (echoed verbatim); otherwise the server
/// mints one.  A client id is recovered even from malformed-JSON payloads
/// on a best-effort scan, so PTS001 errors stay correlatable; the one
/// path that cannot echo a client id is PTS005 (the oversized payload is
/// never read), which carries a server-minted id.  An optional "family"
/// string tags the request's workload family for per-family metrics.
/// Both members are pure annotations: they are excluded from the cache
/// key, so responses differing only in request_id/family are served from
/// one cache entry with byte-identical schedule bytes.
///
/// Errors: {"ok":false, "error":{"code":"PTS00x", "message":"..."}}.
/// Codes are stable (match on the code, not the message), mirroring the
/// analyzer's PTA0xx convention:
///
///   PTS001  malformed JSON payload
///   PTS002  bad request (missing/ill-typed fields, bad edge ids, cycle)
///   PTS003  unknown scheduler name
///   PTS004  empty graph (zero tasks)
///   PTS005  request frame larger than the server's configured limit
///   PTS006  certification failure: a requested independent audit of the
///           computed schedule found a PTC00x violation
///   PTS007  session error: unknown/closed session id, the configured
///           session limit is reached, or an extend delta is invalid
///           (unknown edge endpoints, self edges, cycles, non-monotonic
///           release times); a rejected delta never mutates the session
///   PTS008  overloaded: the server's bounded admission queue is full.
///           The error object carries an extra "retry_after_ms" integer
///           member -- a backoff hint after which the client should retry
///           the same request.  The connection stays open (overload is a
///           transient per-request condition, not a protocol violation)
///
/// Every error increments a `serve.error.PTS00x` counter in the metrics
/// registry.  See docs/SERVICE.md for the full field tables.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "ptask/arch/machine.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/obs/json.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::serve {

// Stable protocol error codes (use the constants, not string literals).
inline constexpr std::string_view kErrMalformedJson = "PTS001";
inline constexpr std::string_view kErrBadRequest = "PTS002";
inline constexpr std::string_view kErrUnknownScheduler = "PTS003";
inline constexpr std::string_view kErrEmptyGraph = "PTS004";
inline constexpr std::string_view kErrTooLarge = "PTS005";
inline constexpr std::string_view kErrCertification = "PTS006";
inline constexpr std::string_view kErrSession = "PTS007";
inline constexpr std::string_view kErrOverloaded = "PTS008";

/// One-line description of a protocol error code; empty for unknown codes.
std::string_view describe_error(std::string_view code);

/// Thrown by request parsing; carries the stable code for the error
/// response.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string_view code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  std::string_view code() const { return code_; }

 private:
  std::string_view code_;
};

/// A parsed "schedule" request: everything one scheduler run needs.
struct ScheduleRequest {
  std::string scheduler = "portfolio";  ///< SchedulerRegistry name
  int total_cores = 1;
  arch::MachineSpec machine;
  core::TaskGraph graph;
  /// Opt-in independent audit: run analysis::certify on the computed
  /// schedule and fail the request with PTS006 when it does not certify.
  bool certify = false;
  /// Client-chosen correlation id, echoed in the response; empty lets the
  /// server mint one.  Annotation only: excluded from the cache key.
  std::string request_id;
  /// Workload-family tag for per-family service metrics
  /// (serve.family.<family>.*).  Annotation only: excluded from the
  /// cache key.
  std::string family;
};

/// A parsed "submit" request: opens an incremental scheduling session.
struct SubmitRequest {
  int total_cores = 1;
  arch::MachineSpec machine;
  core::TaskGraph graph;
  /// Arrival instant of the initial batch (floor for later extends).
  double release_time = 0.0;
  std::string request_id;  ///< annotation, as in ScheduleRequest
  std::string family;      ///< annotation, as in ScheduleRequest
};

/// A parsed "extend" request: one arrival batch for an open session.
struct ExtendRequest {
  std::string session;
  sched::GraphDelta delta;
  std::string request_id;
  std::string family;
};

/// A parsed "close" request.
struct CloseRequest {
  std::string session;
  std::string request_id;
};

// ---- framing ----

/// Maximum frame length the protocol itself allows (the server usually
/// configures a smaller limit).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

/// Prepends the 4-byte big-endian length header to `payload`.
std::string encode_frame(std::string_view payload);

/// Decodes the 4-byte big-endian length header.
std::uint32_t decode_frame_length(const unsigned char header[4]);

// ---- request serialization (client side) ----

/// Renders a "schedule" request payload (without the frame header).  The
/// rendering is canonical: field order and number formatting are fixed, and
/// doubles round-trip exactly (max_digits10), so re-serializing a parsed
/// request reproduces the same bytes.  With include_annotations == false
/// the request_id/family annotation members are omitted -- that variant is
/// the cache key, which is how two requests differing only in annotations
/// share one cache entry.
std::string serialize_request(const ScheduleRequest& request,
                              bool include_annotations = true);

std::string serialize_machine(const arch::MachineSpec& machine);
std::string serialize_graph(const core::TaskGraph& graph);

/// Renders a "submit" payload (canonical member order, like
/// serialize_request).
std::string serialize_submit(const SubmitRequest& request);

/// Renders an "extend" payload: the session id plus the delta (batch
/// release time, arriving tasks with per-task release_time/priority, and
/// the edge batch).
std::string serialize_extend(const ExtendRequest& request);

/// Renders a "close" payload.
std::string serialize_close(const CloseRequest& request);

// ---- request parsing (server side) ----

/// Parses a "schedule" request payload.  Throws ProtocolError with the
/// matching PTS00x code on malformed JSON, missing/ill-typed fields, edge
/// ids out of range or closing a cycle, unknown scheduler names, and
/// zero-task graphs.
ScheduleRequest parse_request(std::string_view payload);

/// Parses a "submit" request payload (same error codes as parse_request;
/// sessions have no scheduler member -- they always run "incremental").
SubmitRequest parse_submit(std::string_view payload);

/// Parses an "extend" request payload.  Structural problems (missing
/// members, ill-typed fields) are PTS002; delta *semantics* against the
/// session's accumulated graph (unknown ids, cycles, release monotonicity)
/// are checked by the server when the delta is applied and reported as
/// PTS007.
ExtendRequest parse_extend(std::string_view payload);

/// Parses a "close" request payload.
CloseRequest parse_close(std::string_view payload);

/// The cache key of a request: its canonical re-serialization WITHOUT the
/// request_id/family annotations.  Two requests get the same key iff they
/// have identical schedulable content (scheduler, cores, machine, graph --
/// including every task weight), so near-collision graphs that differ in
/// one weight never share an entry, while requests differing only in
/// correlation ids do.
std::string canonical_key(const ScheduleRequest& request);

/// Best-effort extraction of a top-level "request_id" string from a payload
/// that may not parse as JSON (used to keep PTS001 errors correlatable).
/// Returns "" when no id is found.
std::string extract_request_id_loose(std::string_view payload);

// ---- response serialization ----

/// Canonical JSON of a schedule: strategy, total cores, makespan, per-task
/// allocation and Gantt slots, the chain contraction (original-task
/// members per contracted node), and the layered structure when present.
/// Diagnostic notes are deliberately excluded -- they may carry wall-clock
/// timings (portfolio scoreboard) and would break byte-identity between
/// cached and uncached responses.
std::string serialize_schedule(const sched::Schedule& schedule);

/// {"ok":true,"schedule":<schedule_json>}
std::string ok_response(std::string_view schedule_json);

/// {"ok":true,"schedule":<schedule_json>,"certificate_hash":"0x..."} -- the
/// certified variant; `certificate_hash` is hash_hex(fnv1a64(bytes)) of the
/// schedule body, so any holder of the response can re-verify the binding.
std::string ok_response(std::string_view schedule_json,
                        std::string_view certificate_hash);

/// Session response: {"ok":true,"session":"<id>","incremental":{
/// "total_layers":T,"layers_reused":R,"layers_scheduled":S,
/// "settled_prefix":P},"schedule":<schedule_json>}.  The schedule is the
/// *last* member so clients can slice it with the same helper that handles
/// plain schedule responses.
std::string session_response(std::string_view session_id,
                             const sched::RepairStats& stats,
                             std::string_view schedule_json);

/// {"ok":true,"session":"<id>","closed":true}
std::string close_response(std::string_view session_id);

/// {"ok":false,"error":{"code":...,"message":...}}
std::string error_response(std::string_view code, std::string_view message);

/// {"ok":false,"error":{"code":"PTS008","message":...,
/// "retry_after_ms":N}} -- the admission-control rejection.  The backoff
/// hint is part of the error object so it survives generic error handling
/// (clients that only look at code/message ignore it safely).
std::string overload_response(std::string_view message,
                              std::uint64_t retry_after_ms);

/// The "retry_after_ms" hint of a PTS008 error response; -1 when the
/// response is not an overload rejection (or does not parse).
std::int64_t response_retry_after_ms(std::string_view payload);

/// {"ok":true,"pong":true}
std::string pong_response();

/// Inserts `,"request_id":"<id>"` right after the leading "ok" member of a
/// rendered response ({"ok":true,...} or {"ok":false,...}); responses not
/// of that shape are returned unchanged.  The fixed position keeps the rest
/// of the response -- notably the schedule bytes -- untouched, so cached
/// responses stay byte-identical modulo this one member.
std::string with_request_id(std::string_view response, std::string_view id);

/// {"ok":true,"metrics":"<exposition>"} -- the Prometheus text exposition
/// as one JSON string.
std::string metrics_response(std::string_view exposition);

/// {"ok":true,"trace":<trace_object>} -- `trace_object` must already be a
/// self-contained JSON value (a Chrome trace document).
std::string trace_response(std::string_view trace_object);

// ---- low-level JSON helpers (shared with the stats rendering) ----

/// Appends `text` as a JSON string literal (quoted, escaped).
void append_json_string(std::string& out, std::string_view text);

/// Appends a double with round-trip precision ("%.17g").
void append_json_double(std::string& out, double value);

}  // namespace ptask::serve
