#pragma once
/// \file reactor.hpp
/// Event-driven connection multiplexer for the scheduling service.
///
/// One reactor thread owns every client connection: it accepts, does
/// nonblocking framed reads into per-connection buffers, and hands each
/// *complete* request payload to the server via the frame callback -- so a
/// thousand idle keep-alive connections cost one thread and zero worker
/// capacity, and `--workers` sizes compute, not connections.  Responses
/// travel the other way through `respond()` (thread-safe; workers call it),
/// which queues the encoded frame, wakes the reactor over an eventfd, and
/// lets the reactor flush it nonblockingly.
///
/// Flow control is per connection: the wire protocol is strictly serial
/// (one request, then its response, on one connection), so while a frame is
/// in flight the reactor stops reading that connection (EPOLLIN off).  A
/// client that pipelines anyway just accumulates bytes in the kernel socket
/// buffer -- natural TCP backpressure, no unbounded user-space buffering.
/// Frames larger than the configured limit are answered through the
/// oversize callback and the connection is closed after the error frame is
/// flushed (resynchronization inside the stream is impossible; the payload
/// is never read).
///
/// Shutdown is two-phase to keep drains prompt (no poll timeouts anywhere;
/// every wake is an epoll event or the eventfd): `stop_accepting()` closes
/// the listener immediately, then -- after the caller has drained its
/// worker side -- `stop()` flushes every pending response (bounded by a
/// short deadline), closes all connections, and joins the thread.
///
/// Metrics recorded here: serve.connections (accepts), serve.truncated
/// (EOF mid-frame), serve.phase.recv_us / serve.phase.send_us (frame
/// assembly / response flush time), plus serve.recv / serve.send spans on
/// the reactor's own trace track when tracing is enabled.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ptask::serve {

class Reactor {
 public:
  using Clock = std::chrono::steady_clock;

  /// Called on the reactor thread for every complete frame.  `t_request` /
  /// `span_begin_s` mark the arrival of the frame's first bytes (steady
  /// clock / tracer clock; the latter is 0 when tracing is off), so queue
  /// wait downstream counts into the request's total.  `recv_us` is the
  /// frame assembly time.  The handler must eventually cause a `respond()`
  /// or `disconnect()` for this connection; until then the reactor reads
  /// nothing further from it.
  using FrameHandler =
      std::function<void(std::uint64_t conn_id, std::string&& payload,
                         Clock::time_point t_request, double span_begin_s,
                         double recv_us)>;

  /// Builds the (unframed) response payload for an oversized frame
  /// announcing `length` bytes.  The reactor frames it, flushes it, and
  /// closes the connection.
  using OversizeHandler = std::function<std::string(std::uint32_t length)>;

  struct Options {
    int listen_fd = -1;  ///< bound + listening; the reactor takes ownership
    std::uint32_t max_request_bytes = 4u * 1024u * 1024u;
    /// obs worker-track index for the reactor's spans (keeps reactor spans
    /// off the compute workers' tracks).
    int worker_track = 0;
    /// stop() flushes pending responses for at most this long.
    std::chrono::milliseconds drain_deadline{2000};
  };

  Reactor(const Options& options, FrameHandler on_frame,
          OversizeHandler on_oversize);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the reactor thread (throws std::runtime_error when the epoll
  /// or eventfd setup fails).
  void start();

  /// Closes the listener promptly (new connects fail); existing
  /// connections keep being served.  Thread-safe, idempotent.
  void stop_accepting();

  /// Flushes pending responses (bounded by the drain deadline), closes
  /// every connection, and joins the thread.  Thread-safe, idempotent.
  void stop();

  /// Queues one already-encoded response frame for `conn_id` and wakes the
  /// reactor.  Thread-safe; callable from any thread (including the frame
  /// handler itself).  Unknown connection ids (peer already gone) are
  /// dropped silently.  With `close_after` the connection is closed once
  /// the frame is flushed.
  void respond(std::uint64_t conn_id, std::string&& frame,
               bool close_after = false);

  /// Closes `conn_id` without a response (e.g. frames arriving during
  /// shutdown).  Thread-safe, like respond().
  void disconnect(std::uint64_t conn_id);

  /// Currently open connections (reactor-thread counter; approximate when
  /// read from other threads).
  std::size_t num_connections() const;

 private:
  struct Connection;
  struct Command;

  void run();
  void handle_accept();
  void handle_conn_event(std::uint64_t conn_id, std::uint32_t events);
  void read_input(Connection& conn);
  void parse_frames(std::uint64_t conn_id, Connection& conn);
  void flush_output(std::uint64_t conn_id, Connection& conn);
  void finish_flush(std::uint64_t conn_id, Connection& conn);
  void update_interest(Connection& conn);
  void destroy(std::uint64_t conn_id);
  void drain_commands();
  void wake();

  Options options_;
  FrameHandler on_frame_;
  OversizeHandler on_oversize_;

  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> close_listener_{false};
  std::atomic<std::size_t> open_connections_{0};

  std::mutex commands_mutex_;
  std::vector<Command> commands_;

  std::uint64_t next_conn_id_ = 2;  ///< 0 = eventfd, 1 = listener
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
};

}  // namespace ptask::serve
