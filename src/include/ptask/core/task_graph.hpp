#pragma once
/// \file task_graph.hpp
/// The M-task graph: a DAG whose nodes are M-tasks and whose directed edges
/// are input-output relations (paper Section 2.1, Fig. 1).

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ptask/core/mtask.hpp"

namespace ptask::core {

/// Directed acyclic graph of M-tasks.
///
/// Node identity is the insertion index (`TaskId`).  The class maintains
/// forward and backward adjacency and offers the queries the scheduler
/// needs: topological order, reachability/independence, and degree counts.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Adds a task and returns its id.
  TaskId add_task(MTask task);

  /// Adds the input-output edge `from -> to`.  Duplicate edges are ignored.
  /// Throws std::invalid_argument when it would close a cycle.
  void add_edge(TaskId from, TaskId to);

  /// Adds a batch of edges atomically: the whole batch is validated first
  /// (ids in range, no self edges, no cycle through existing + new edges via
  /// one Kahn pass over the overlay) and applied only when every edge is
  /// acceptable.  On std::invalid_argument the graph is unchanged -- the
  /// all-or-nothing contract incremental graph deltas rely on.  Duplicate
  /// edges (against the graph or inside the batch) are ignored.  This is
  /// also asymptotically cheaper than per-edge add_edge for large batches:
  /// one O(V + E) cycle check instead of one reachability walk per edge.
  void add_edges(const std::vector<std::pair<TaskId, TaskId>>& edges);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_edges() const { return num_edges_; }
  bool empty() const { return tasks_.empty(); }

  const MTask& task(TaskId id) const;
  MTask& task(TaskId id);

  const std::vector<TaskId>& successors(TaskId id) const;
  const std::vector<TaskId>& predecessors(TaskId id) const;
  int in_degree(TaskId id) const;
  int out_degree(TaskId id) const;

  bool has_edge(TaskId from, TaskId to) const;

  /// All task ids in one topological order (stable: ready tasks appear in id
  /// order).
  std::vector<TaskId> topological_order() const;

  /// True if `from` can reach `to` along directed edges.
  bool reaches(TaskId from, TaskId to) const;

  /// Two tasks are independent iff neither reaches the other (they may then
  /// execute concurrently on disjoint core groups).
  bool independent(TaskId a, TaskId b) const;

  /// Inserts zero-work marker start/stop tasks connected to all sources and
  /// sinks (the CM-task compiler inserts these automatically, Section 2.2.3).
  /// Returns {start_id, stop_id}.  No-op markers are excluded from layers.
  std::pair<TaskId, TaskId> add_start_stop_markers();

  /// Sum of work over all tasks (flop).
  double total_work_flop() const;

  /// GraphViz dot rendering (for documentation and debugging).
  std::string to_dot(const std::string& graph_name = "mtask_graph") const;

 private:
  void check_id(TaskId id) const;

  std::vector<MTask> tasks_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  int num_edges_ = 0;
};

}  // namespace ptask::core
