#pragma once
/// \file graph_algorithms.hpp
/// Structural algorithms on M-task graphs used by the schedulers:
/// linear-chain contraction and greedy layer partitioning (paper Section
/// 3.2, steps 1 and 2), plus critical-path machinery for CPA/CPR.

#include <span>
#include <vector>

#include "ptask/core/task_graph.hpp"

namespace ptask::core {

/// Result of replacing every maximal linear chain by a single node.
struct ChainContraction {
  TaskGraph contracted;
  /// members[c] lists the original task ids merged into contracted task c,
  /// in chain order (singleton for tasks that were not part of a chain).
  std::vector<std::vector<TaskId>> members;
  /// representative[orig] is the contracted node containing `orig`.
  std::vector<TaskId> representative;
};

/// Contracts all maximal linear chains (paper Section 3.2, step 1).
///
/// A linear chain is a path v1 -> v2 -> ... -> vk (k >= 2) where every
/// interior link satisfies out_degree(vi) == 1 and in_degree(vi+1) == 1.
/// The merged node accumulates the members' work and internal communication,
/// takes the most restrictive max_cores, and -- by construction -- forces all
/// chain members onto the same core group, avoiding re-distributions inside
/// the chain.  Marker tasks never participate in chains.
ChainContraction contract_linear_chains(const TaskGraph& graph);

/// The identity contraction: every task is its own (singleton) chain.  Used
/// by schedulers that skip chain contraction but still produce results in
/// the contracted-id index space.
ChainContraction identity_contraction(const TaskGraph& graph);

/// Greedy breadth-first partition into layers of pairwise independent tasks
/// (paper Section 3.2, step 2): repeatedly emit every task whose predecessors
/// have all been emitted.  Marker tasks are skipped (they carry no
/// computation and belong to no layer).
std::vector<std::vector<TaskId>> greedy_layers(const TaskGraph& graph);

/// Longest-path data for CPA/CPR.  `task_time[id]` is the (allocation-
/// dependent) execution time of task id.
struct CriticalPathInfo {
  double length = 0.0;
  std::vector<double> top_level;     ///< longest path ending before the task
  std::vector<double> bottom_level;  ///< longest path starting at the task
  std::vector<TaskId> path;          ///< one critical path, in order
};

CriticalPathInfo critical_path(const TaskGraph& graph,
                               std::span<const double> task_time);

/// Concatenates `repetitions` copies of a per-step graph into one program
/// graph: every (non-marker) sink of copy r feeds every (non-marker) source
/// of copy r+1, modelling the input-output relation that carries a solver's
/// state from one time step into the next.  Task names get a "#r" suffix;
/// markers are dropped (schedulers re-insert their own bookkeeping).
TaskGraph repeat_graph(const TaskGraph& step, int repetitions);

}  // namespace ptask::core
