#pragma once
/// \file spec_builder.hpp
/// Coordination-structure builder in the style of the CM-task compiler's
/// specification language (paper Section 2.2, Fig. 3).
///
/// A specification program declares variables (with size and distribution)
/// and composes M-task activations with `seq`, `parfor`, `for_loop`, and
/// `while_loop` constructs.  The builder performs the def/use analysis that
/// turns variable names into input-output relations: a task reading variable
/// v depends on the last writer(s) of v (RAW); writers are additionally
/// serialized against earlier readers and writers (WAR/WAW), which is what a
/// correct parallel execution requires.
///
/// `while_loop` produces a *hierarchical* node: the loop body becomes a
/// lower-level task graph attached to a single composite node of the upper
/// graph, exactly like the CM-task compiler's two-level graph for the
/// extrapolation method (paper Fig. 4).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ptask/core/task_graph.hpp"
#include "ptask/dist/distribution.hpp"

namespace ptask::core {

/// A declared program variable.
struct Var {
  std::string name;
  std::size_t bytes = 0;
  dist::Distribution distribution = dist::Distribution::replicated();
};

/// A task graph with hierarchically nested bodies for composite nodes.
struct HierGraph {
  TaskGraph graph;
  /// Composite node id -> body graph (e.g. a while node -> one iteration).
  std::map<TaskId, std::unique_ptr<HierGraph>> sub;

  /// Total number of basic tasks across all levels.
  int total_basic_tasks() const;
};

/// Flattens a hierarchical graph into a single-level graph by inlining
/// every composite node's body `iterations` times (the loop unrolling the
/// CM-task compiler applies before scheduling the lower level): the
/// composite node is replaced by the chained body copies, reconnected to
/// the composite's predecessors and successors.  Markers of the inlined
/// bodies are dropped.
TaskGraph flatten(const HierGraph& program, int iterations = 1);

class SpecBuilder {
 public:
  explicit SpecBuilder(std::string program_name);

  const std::string& name() const { return name_; }

  /// Declares a variable.
  Var var(std::string name, std::size_t bytes,
          dist::Distribution d = dist::Distribution::replicated());

  /// Activates a basic M-task.  `uses` and `defines` derive the graph edges;
  /// they are also recorded as the task's input/output parameters so that
  /// re-distribution costs can be computed later.  Returns the task id in
  /// the graph under construction.
  TaskId call(MTask task, const std::vector<Var>& uses,
              const std::vector<Var>& defines);

  /// Sequential composition: the callback body simply executes in program
  /// order (provided for specification readability, mirroring `seq`).
  void seq(const std::function<void()>& body) { body(); }

  /// Loop with independent iterations (`parfor`): every iteration starts
  /// from the same def/use environment; environments are merged afterwards.
  void parfor(int count, const std::function<void(int)>& body);

  /// Loop with loop-carried input-output relations (`for`): iterations run
  /// in program order, naturally chaining through the environment.
  void for_loop(int count, const std::function<void(int)>& body);

  /// Hierarchical while loop: `body` populates a nested builder; the loop
  /// appears as one composite node in this graph.  `iterations_hint` scales
  /// the composite node's accumulated work (used by upper-level scheduling).
  /// `loop_vars` are the variables read and written by the loop as a whole.
  TaskId while_loop(const std::string& loop_name,
                    const std::vector<Var>& loop_vars,
                    const std::function<void(SpecBuilder&)>& body,
                    double iterations_hint = 1.0);

  /// Finalizes the specification (inserting start/stop markers at every
  /// level) and returns the hierarchical graph.
  HierGraph build();

 private:
  struct Env {
    std::map<std::string, std::vector<TaskId>> writers;
    std::map<std::string, std::vector<TaskId>> readers;
  };

  void add_dependency_edges(TaskId id, const std::vector<Var>& uses,
                            const std::vector<Var>& defines);
  static void merge_env(Env& into, const Env& branch);

  std::string name_;
  HierGraph result_;
  Env env_;
  bool built_ = false;
};

}  // namespace ptask::core
