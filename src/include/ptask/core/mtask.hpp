#pragma once
/// \file mtask.hpp
/// The M-task (multiprocessor task) abstraction (paper Section 2).
///
/// An M-task is a piece of parallel code that can execute on an arbitrary
/// number of cores.  For scheduling it is characterized by its sequential
/// computational work, its internal communication operations (classified as
/// in the paper's Table 1: global, group-based, or orthogonal collectives),
/// and its data parameters with their distributions (which determine the
/// re-distribution traffic between cooperating M-tasks).

#include <climits>
#include <cstddef>
#include <string>
#include <vector>

#include "ptask/dist/distribution.hpp"

namespace ptask::core {

using TaskId = int;
inline constexpr TaskId kInvalidTask = -1;

/// Scope of a collective communication operation (paper Section 4.2).
enum class CommScope {
  Global,      ///< executed by all cores of the whole program
  Group,       ///< executed by the cores of the M-task's own group
  Orthogonal,  ///< executed between same-position cores of concurrent groups
};

const char* to_string(CommScope scope);

/// Kind of collective operation appearing inside the solvers.
/// `Exchange` is a nearest-neighbour exchange along the rank ring (each rank
/// swaps `data_bytes` with both neighbours) -- the border exchange pattern of
/// the multi-zone benchmarks; its cost does not grow with the rank count.
enum class CollectiveKind { Bcast, Allgather, Allreduce, Barrier, Exchange };

const char* to_string(CollectiveKind kind);

/// One (repeated) collective communication inside an M-task.
///
/// `data_bytes` is the size of the full vector involved.  For an Allgather
/// each of the q participating cores contributes `data_bytes / q`; for a
/// Bcast the root moves all `data_bytes`; Allreduce combines `data_bytes`.
struct CollectiveOp {
  CollectiveKind kind = CollectiveKind::Allgather;
  CommScope scope = CommScope::Group;
  std::size_t data_bytes = 0;
  int repeat = 1;  ///< how many times this operation executes per activation
};

/// A data parameter of an M-task (used for re-distribution analysis).
struct Param {
  std::string name;
  std::size_t bytes = 0;  ///< total size of the data structure
  dist::Distribution distribution = dist::Distribution::replicated();
  bool is_input = false;
  bool is_output = false;
};

/// Static description of one M-task.
class MTask {
 public:
  MTask() = default;
  MTask(std::string name, double work_flop)
      : name_(std::move(name)), work_flop_(work_flop) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Sequential computational work in flop (the paper's Tcomp up to the
  /// machine-dependent flop rate).
  double work_flop() const { return work_flop_; }
  void set_work_flop(double w) { work_flop_ = w; }
  void add_work_flop(double w) { work_flop_ += w; }

  /// Internal communication operations per activation.
  const std::vector<CollectiveOp>& comms() const { return comms_; }
  void add_comm(CollectiveOp op) { comms_.push_back(op); }

  /// Data parameters.
  const std::vector<Param>& params() const { return params_; }
  void add_param(Param p) { params_.push_back(std::move(p)); }
  /// Mutable access for tools that rewrite parameter annotations (the fuzz
  /// harness's lint mutations corrupt byte sizes in place).
  std::vector<Param>& mutable_params() { return params_; }

  /// Maximum useful degree of parallelism (e.g. the number of vector
  /// components); the scheduler never assigns more cores than this.
  int max_cores() const { return max_cores_; }
  void set_max_cores(int m) { max_cores_ = m; }

  /// Marker tasks (the automatically inserted start/stop nodes) carry no
  /// computation and are not assigned to scheduling layers.
  bool is_marker() const { return is_marker_; }
  void set_marker(bool m) { is_marker_ = m; }

 private:
  std::string name_;
  double work_flop_ = 0.0;
  std::vector<CollectiveOp> comms_;
  std::vector<Param> params_;
  int max_cores_ = INT_MAX;
  bool is_marker_ = false;
};

}  // namespace ptask::core
