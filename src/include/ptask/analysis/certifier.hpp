#pragma once
/// \file certifier.hpp
/// Independent schedule certifier (ptask::analysis::certify).
///
/// Every other correctness signal in the tree shares code with the
/// schedulers it audits: `sched::validate` lives next to the pipeline, the
/// fuzz oracles price schedules through the same `cost::CostModel`, and the
/// serve differential replays the same `Pipeline`.  The certifier is the
/// minimal-trust auditor that closes the loop: it re-derives feasibility of
/// a canonical `sched::Schedule` from first principles, calling *none* of
/// `sched::validate`, `sched::Pipeline`, or any cost-model pricing path.
/// Every quantity it checks is recomputed from the schedule bytes
/// themselves (slot start/finish/cores, group sizes, the contraction
/// tables) -- so a scheduler bug and a validator bug would have to agree
/// byte-for-byte to slip a bad schedule past it.
///
/// Certified invariants, each with a stable PTC00x code:
///
///   PTC001  precedence: for every contracted-graph edge u -> v between
///           scheduled tasks, v starts no earlier than u finishes
///   PTC002  occupancy: no symbolic core executes two overlapping slots
///   PTC003  allocation: slots within [0, P), no duplicate cores, the
///           per-task allocation restates the slot width, layered group
///           sizes positive and summing exactly to P (no oversubscription),
///           every layer task assigned to an existing group of its width
///   PTC004  makespan arithmetic: finish >= start >= 0 per slot, no slot
///           past the declared makespan, and the declared makespan equals
///           the last slot finish exactly (up to FP round-off)
///   PTC005  lower bounds: the certified makespan is >= both symbolic
///           lower bounds derived from the schedule's own slot durations --
///           the longest dependency chain (critical path) and
///           total core-time / P (total-work bound)
///   PTC006  structure: the chain contraction covers the original graph
///           (every original task in exactly one members list, consistent
///           representatives), slot/allocation tables sized to the
///           contracted graph, original edges preserved across the
///           contraction, layered tasks appearing in exactly one layer
///
/// `certify` returns a `Certificate`: the diagnostic report plus the
/// machine-checkable evidence -- per-layer time bounds, per-core occupancy
/// intervals, both lower bounds, and an FNV-1a 64-bit hash of the canonical
/// schedule serialization (`serve::serialize_schedule`), so a certificate
/// can be matched to the exact schedule bytes the service cached.
/// `render_json` emits the certificate as JSON for tooling and CI
/// artifacts.  See docs/ANALYSIS.md for the full code table.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ptask/analysis/diagnostics.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::analysis {

// Stable certifier codes (use the constants, not string literals).
inline constexpr std::string_view kCertPrecedence = "PTC001";
inline constexpr std::string_view kCertOverlap = "PTC002";
inline constexpr std::string_view kCertAllocation = "PTC003";
inline constexpr std::string_view kCertMakespan = "PTC004";
inline constexpr std::string_view kCertLowerBound = "PTC005";
inline constexpr std::string_view kCertStructure = "PTC006";

struct CertifierOptions {
  /// Relative tolerance for floating-point comparisons between quantities
  /// the schedulers compute with a different association order (matches the
  /// fuzz oracles' rel_tol).  Absolute slack of 1e-12 is always granted.
  double rel_tol = 1e-9;
  /// Record the per-core occupancy intervals in the certificate (the checks
  /// always run; this only controls the evidence payload size).
  bool record_intervals = true;
};

/// The certifier's output: the findings plus the re-derived evidence.
struct Certificate {
  Report report;  ///< PTC00x diagnostics; empty == certified

  bool ok() const { return report.clean(); }

  double makespan = 0.0;             ///< declared makespan under audit
  double critical_path_bound = 0.0;  ///< longest chain of slot durations
  double work_bound = 0.0;           ///< sum(duration x width) / P

  /// FNV-1a 64-bit hash of serve::serialize_schedule(schedule): ties the
  /// certificate to the exact canonical schedule bytes.
  std::uint64_t schedule_hash = 0;

  /// Time bounds of each layer (layered strategies only): earliest start
  /// and latest finish over the layer's tasks.
  struct LayerBound {
    double start = 0.0;
    double finish = 0.0;
  };
  std::vector<LayerBound> layer_bounds;

  /// One slot's occupancy of one core; `intervals` is sorted by
  /// (core, start, finish) and covers every scheduled (non-marker) task.
  struct CoreInterval {
    int core = 0;
    core::TaskId task = core::kInvalidTask;
    double start = 0.0;
    double finish = 0.0;
  };
  std::vector<CoreInterval> intervals;
};

/// FNV-1a 64-bit hash (the certificate/schedule fingerprint; no external
/// dependency, stable across platforms).
std::uint64_t fnv1a64(std::string_view bytes);

/// Lower-case hex rendering of a 64-bit hash ("0x" prefixed, 16 digits).
std::string hash_hex(std::uint64_t hash);

/// Certifies `schedule` against the *original* (pre-contraction) graph it
/// was computed from.  Never throws on a bad schedule -- every problem
/// becomes a PTC00x diagnostic in the certificate's report.
Certificate certify(const core::TaskGraph& original,
                    const sched::Schedule& schedule,
                    const CertifierOptions& options = {});

/// Machine-checkable JSON rendering of a certificate: verdict, schedule
/// hash, makespan and both lower bounds, per-layer bounds, per-core
/// intervals, and the diagnostics.
std::string render_json(const Certificate& certificate);

}  // namespace ptask::analysis
