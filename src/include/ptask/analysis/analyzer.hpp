#pragma once
/// \file analyzer.hpp
/// Static analysis of specification programs, M-task graphs, and schedules
/// (ptask::analysis).
///
/// The CM-task toolchain front-loads correctness: the def/use analysis of
/// the specification program derives the input-output relations that make
/// concurrent M-task execution safe (paper Section 2.2), and the scheduler
/// relies on those relations being complete and consistent.  The analyzer
/// checks exactly that, *before* anything is scheduled or executed:
///
///  1. shared-variable race detection -- two tasks whose parameters conflict
///     (RAW/WAR/WAW on the same Var) but that are independent in the graph
///     indicate a missing input-output relation (a hand-built graph bug or a
///     SpecBuilder serialization bug);
///  2. distribution/size consistency -- a consumer reading a Var with a
///     different byte size than its producer declared, or re-distribution
///     pairs whose payload makes the transfer plan ill-defined;
///  3. graph hygiene -- unreachable tasks, dead writes, composite nodes with
///     missing/empty bodies, chains the contraction step would clamp;
///  4. cost-model sanity -- negative or non-monotone T(M, q) over
///     q in {1..P}, zero-cost tasks that make LPT assignment arbitrary;
///  5. schedule lints (warning tier) -- idle-core layers and
///     re-distribution-dominated edges that indicate a bad group count;
///  6. ordering/deadlock (error tier, PTA05x) -- cycles in the combined
///     schedule+graph precedence order and cross-group re-distribution that
///     reverses the layer order;
///  7. allocation sanity (warning tier, PTA06x) -- makespans blowing past
///     alpha x the symbolic lower bound and group widths outside the
///     monotonic-speedup region of a task's profile.
///
/// All entry points return a `Report` of `Diagnostic`s with stable PTA0xx
/// codes (see diagnostics.hpp); none of them throws on a bad graph.

#include "ptask/analysis/diagnostics.hpp"
#include "ptask/arch/machine.hpp"
#include "ptask/core/spec_builder.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::analysis {

struct AnalyzerOptions {
  bool race_detection = true;    ///< pass 1 (PTA001, PTA002)
  bool size_consistency = true;  ///< pass 2 (PTA010, PTA011)
  bool graph_hygiene = true;     ///< pass 3 (PTA020..PTA023)
  bool cost_sanity = true;       ///< pass 4 (PTA030..PTA032)
  bool ordering_checks = true;     ///< pass 6 (PTA050, PTA051)
  bool allocation_sanity = true;   ///< pass 7 (PTA060, PTA061)

  /// Element granularity of re-distribution payloads (the re-distribution
  /// machinery moves sizeof(double)-element vectors).
  std::size_t redistribution_elem_bytes = sizeof(double);
  /// PTA023 fires when a chain member's max_cores is at least this factor
  /// below the widest member's.
  double chain_clamp_factor = 4.0;
  /// PTA041 fires when re-distribution exceeds this fraction of the consumer
  /// task's time (per edge) or of the makespan (whole schedule).
  double redistribution_dominance = 0.5;
  /// PTA060 fires when the makespan exceeds this factor times the symbolic
  /// lower bound max(total work / P, critical path at best widths).  The
  /// default is deliberately loose: only schedules that are wasteful beyond
  /// any strategy trade-off are flagged.
  double makespan_alpha = 24.0;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  const AnalyzerOptions& options() const { return options_; }

  /// Passes 1-3 plus the machine-independent part of pass 4.
  Report analyze(const core::TaskGraph& graph) const;

  /// Additionally prices every task over q in {1..total_cores} (PTA031).
  Report analyze(const core::TaskGraph& graph, const arch::Machine& machine,
                 int total_cores) const;

  /// Hierarchical program: analyzes the top-level graph and every composite
  /// body (recursively), plus composite-body hygiene (PTA022).
  Report analyze(const core::HierGraph& program) const;
  Report analyze(const core::HierGraph& program, const arch::Machine& machine,
                 int total_cores) const;

  /// Pass 5 on a layered schedule: idle groups and re-distribution-dominated
  /// cross-layer edges.  Warning tier only.
  Report lint(const sched::LayeredSchedule& schedule,
              const cost::CostModel& cost) const;

  /// Pass 5 on a Gantt schedule (CPA/CPR output or a lowered layered
  /// schedule): unused cores and whole-schedule re-distribution dominance.
  Report lint(const core::TaskGraph& graph, const sched::GanttSchedule& schedule,
              const cost::CostModel& cost) const;

  /// Passes 5-7 on a canonical schedule: lints the strategy's native
  /// representation (the layered view when the strategy produced layers,
  /// the Gantt view otherwise), then runs the ordering/deadlock tier
  /// (PTA050, PTA051) and the allocation-sanity tier (PTA060, PTA061) on
  /// the uniform Gantt view.  Scoped by the strategy name.
  Report lint(const sched::Schedule& schedule,
              const cost::CostModel& cost) const;

 private:
  AnalyzerOptions options_;
};

}  // namespace ptask::analysis
