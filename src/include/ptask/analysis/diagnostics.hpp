#pragma once
/// \file diagnostics.hpp
/// Structured diagnostics emitted by the static analyzer (ptask::analysis).
///
/// Every finding carries a *stable* code (PTA0xx) so that tests, the fuzz
/// oracle, and downstream tooling can match on the class of problem instead
/// of on message text.  The code table:
///
///   PTA001  error    WAW race: two independent tasks define the same Var
///   PTA002  error    RAW/WAR race: an unordered reader/writer pair of a Var
///   PTA010  error    size mismatch: a consumer reads a Var with a byte size
///                    different from what its producer declared
///   PTA011  error    ill-defined re-distribution: a matched producer ->
///                    consumer pair whose payload is smaller than one element
///                    or not a multiple of the element size (the plan would
///                    silently drop the fractional tail)
///   PTA020  error    unreachable task: a non-marker task not connected to
///                    the graph's start/stop marker envelope
///   PTA021  warning  dead write: an output Var no reachable task consumes
///                    and that is not a program output
///   PTA022  error    composite node with a missing or empty body
///   PTA023  warning  degenerate chain: contraction would clamp the merged
///                    node far below the widest member's parallelism
///   PTA030  error    broken task profile: negative/non-finite work,
///                    max_cores < 1, or a collective with repeat < 0
///   PTA031  error    broken cost model: T(M, q) negative/non-finite or
///                    Tcomp(M)/q increasing for some q in {1..P}
///   PTA032  warning  zero-cost task: LPT assignment is arbitrary for it
///   PTA040  warning  idle cores: a layer group with no tasks, or Gantt
///                    cores no slot ever uses
///   PTA041  warning  re-distribution-dominated: a cross-group edge (or the
///                    whole schedule) pays more re-distribution than compute,
///                    indicating a bad group count
///   PTA050  error    ordering deadlock: the combined schedule+graph
///                    precedence order (graph edges plus same-core execution
///                    order) contains a cycle
///   PTA051  error    layer-order reversal: a cross-group re-distribution
///                    edge whose consumer layer does not come after its
///                    producer layer
///   PTA060  warning  makespan blow-up: the schedule's makespan exceeds
///                    alpha x the symbolic lower bound max(work/P, longest
///                    single task)
///   PTA061  warning  non-monotonic allocation: a task's group is wider than
///                    the monotonic-speedup region of its profile (the last
///                    core(s) add no speedup)
///
/// The independent schedule certifier (certifier.hpp) emits PTC001..PTC006
/// into the same Report type; those codes are registered here as well so
/// describe()/all_codes() cover every diagnostic the tree can produce.
///
/// See docs/ANALYSIS.md for a minimal triggering example per code.

#include <string>
#include <string_view>
#include <vector>

#include "ptask/core/mtask.hpp"

namespace ptask::analysis {

enum class Severity { Warning, Error };

const char* to_string(Severity severity);

/// Diagnostic codes (use these constants instead of string literals).
inline constexpr std::string_view kRaceWaw = "PTA001";
inline constexpr std::string_view kRaceRaw = "PTA002";
inline constexpr std::string_view kSizeMismatch = "PTA010";
inline constexpr std::string_view kBadRedistribution = "PTA011";
inline constexpr std::string_view kUnreachableTask = "PTA020";
inline constexpr std::string_view kDeadWrite = "PTA021";
inline constexpr std::string_view kEmptyComposite = "PTA022";
inline constexpr std::string_view kDegenerateChain = "PTA023";
inline constexpr std::string_view kBadTaskProfile = "PTA030";
inline constexpr std::string_view kBadCostModel = "PTA031";
inline constexpr std::string_view kZeroCostTask = "PTA032";
inline constexpr std::string_view kIdleCores = "PTA040";
inline constexpr std::string_view kRedistributionDominated = "PTA041";
inline constexpr std::string_view kOrderingDeadlock = "PTA050";
inline constexpr std::string_view kLayerOrderReversal = "PTA051";
inline constexpr std::string_view kMakespanBlowup = "PTA060";
inline constexpr std::string_view kNonMonotonicAllocation = "PTA061";

/// One-line description of a diagnostic code; empty for unknown codes.
std::string_view describe(std::string_view code);

/// All known codes in ascending order (for `ptask_lint --codes` and tests).
const std::vector<std::string_view>& all_codes();

/// One analyzer finding.
struct Diagnostic {
  std::string code;                  ///< stable "PTA0xx" code
  Severity severity = Severity::Error;
  std::vector<core::TaskId> tasks;   ///< involved tasks (ids in the graph)
  std::vector<std::string> task_names;  ///< names matching `tasks`
  std::vector<std::string> vars;     ///< involved variable/parameter names
  std::string scope;                 ///< "" = top level; else composite path
  std::string message;               ///< human-readable one-liner
};

/// All findings of one analyzer run.
struct Report {
  std::vector<Diagnostic> diagnostics;

  int error_count() const;
  int warning_count() const;
  /// True when the report contains no *errors* (warnings are allowed).
  bool clean() const { return error_count() == 0; }
  bool has(std::string_view code) const;
  int count(std::string_view code) const;

  /// Appends `other`'s diagnostics, prefixing their scope with `scope`.
  void merge(Report other, const std::string& scope);
};

/// Compiler-style text rendering, one line per diagnostic:
///   error[PTA002] <scope>: message
std::string render_text(const Report& report);

/// JSON rendering: {"errors":N,"warnings":M,"diagnostics":[{...}]}.
std::string render_json(const Report& report);

}  // namespace ptask::analysis
