#pragma once
/// \file machine.hpp
/// Hierarchical multi-core machine model (paper Section 3.3).
///
/// A machine is a tree: machine (A) -> nodes (N) -> processors (P) ->
/// cores (C).  Every physical core carries a label `nid.pid.cid`.  The cost
/// of a communication operation between two cores depends on the deepest
/// component the cores share: the same processor, the same node, or only the
/// interconnection network.

#include <compare>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace ptask::arch {

/// Deepest shared level between two communicating cores.  The enumerators
/// are ordered from fastest to slowest interconnect.
enum class CommLevel : int {
  SameProcessor = 0,  ///< cores on the same multi-core processor (shared cache)
  SameNode = 1,       ///< cores on different processors of one SMP node
  InterNode = 2,      ///< cores on different nodes (cluster network)
};

/// Returns a human-readable name ("same-processor", ...).
const char* to_string(CommLevel level);

/// Physical core label `nid.pid.cid` (paper Fig. 7).  All components are
/// zero-based indices.
struct CoreId {
  int node = 0;
  int proc = 0;
  int core = 0;

  auto operator<=>(const CoreId&) const = default;

  /// Formats the label as "nid.pid.cid" with one-based components, matching
  /// the labels used in the paper's figures.
  std::string label() const;
};

std::ostream& operator<<(std::ostream& os, const CoreId& id);

/// Point-to-point parameters of one interconnect level.  A message of `b`
/// bytes over one link costs `latency_s + b / bandwidth_Bps`.
struct LinkParams {
  double latency_s = 0.0;
  double bandwidth_Bps = 0.0;

  /// Time to move `bytes` over this link once.
  double transfer_time(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

/// Static description of a homogeneous hierarchical cluster.
///
/// All nodes are identical (the paper's platforms are homogeneous per
/// partition); heterogeneity enters through the *interconnect* hierarchy,
/// which is exactly the form of heterogeneity the combined scheduling and
/// mapping approach targets.
struct MachineSpec {
  std::string name;
  int num_nodes = 1;
  int procs_per_node = 1;
  int cores_per_proc = 1;

  /// Peak floating-point rate of one core (flop/s).
  double core_flops = 1.0e9;
  /// Sustained fraction of peak achieved by the compute kernels studied here
  /// (memory-bound ODE right-hand sides do not reach peak).
  double core_efficiency = 1.0;

  LinkParams intra_processor;
  LinkParams intra_node;
  LinkParams inter_node;

  /// Overhead of entering/leaving one OpenMP parallel region or performing a
  /// team-wide synchronization (used by the hybrid MPI+OpenMP model, §4.7).
  double omp_region_overhead_s = 0.0;

  int cores_per_node() const { return procs_per_node * cores_per_proc; }
  int total_cores() const { return num_nodes * cores_per_node(); }

  /// Sustained compute rate of one core in flop/s.
  double sustained_flops() const { return core_flops * core_efficiency; }
};

/// Chemnitz High Performance Linux cluster: 530 nodes, 2x dual-core
/// Opteron 2218 @ 2.6 GHz (5.2 GFlop/s per core), SDR InfiniBand.
MachineSpec chic();

/// JuRoPA: 2208 nodes, 2x quad-core Xeon X5570 @ 2.93 GHz (11.72 GFlop/s per
/// core), QDR InfiniBand.
MachineSpec juropa();

/// One partition of the SGI Altix 4700: 128 nodes, 2x dual-core Itanium2
/// Montecito @ 1.6 GHz (6.4 GFlop/s per core), NUMAlink 4.
MachineSpec altix();

/// Looks up a preset by case-insensitive name ("chic", "juropa", "altix");
/// throws std::invalid_argument for unknown names.
MachineSpec machine_by_name(const std::string& name);

/// A machine plus index arithmetic over its cores.
///
/// `Machine` answers the questions the scheduler, mapper, cost model, and
/// simulator ask: how many cores exist, what is the label of the i-th core in
/// the canonical (consecutive) enumeration, and which interconnect level two
/// cores communicate over.
class Machine {
 public:
  explicit Machine(MachineSpec spec);

  const MachineSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  int total_cores() const { return spec_.total_cores(); }
  int cores_per_node() const { return spec_.cores_per_node(); }
  int num_nodes() const { return spec_.num_nodes; }

  /// Canonical (consecutive) enumeration: node-major, then processor, then
  /// core.  `flat` must be in [0, total_cores()).
  CoreId core_at(int flat) const;

  /// Inverse of core_at().
  int flat_index(const CoreId& id) const;

  /// Deepest shared level of two cores.
  CommLevel comm_level(const CoreId& a, const CoreId& b) const;

  /// Link parameters of one interconnect level.
  const LinkParams& link(CommLevel level) const;

  /// Convenience: point-to-point transfer time between two cores.
  double ptp_time(const CoreId& a, const CoreId& b, std::size_t bytes) const {
    return link(comm_level(a, b)).transfer_time(bytes);
  }

  /// Returns a machine consisting of the first `num_cores` cores of this one,
  /// rounded up to whole nodes (the paper's experiments always allocate whole
  /// nodes).  `num_cores` must be a positive multiple of cores_per_node().
  Machine partition(int num_cores) const;

 private:
  MachineSpec spec_;
};

}  // namespace ptask::arch
