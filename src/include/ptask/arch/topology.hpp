#pragma once
/// \file topology.hpp
/// Explicit architecture tree (paper Fig. 7).
///
/// The tree makes the hierarchy of a machine tangible: the root represents
/// the entire machine (A), its children the nodes (N), theirs the processors
/// (P), and the leaves the cores (C).  The scheduler and mapper only need the
/// index arithmetic in `Machine`; the tree is the reference structure used by
/// tests, pretty-printing, and the topology-aware collective algorithms.

#include <string>
#include <vector>

#include "ptask/arch/machine.hpp"

namespace ptask::arch {

/// Kind of a tree vertex, top-down.
enum class TreeLevel : int { Machine = 0, Node = 1, Processor = 2, Core = 3 };

const char* to_string(TreeLevel level);

/// One vertex of the architecture tree.  Children are stored by index into
/// the owning tree's vertex array, which keeps the structure trivially
/// copyable and cache-friendly.
struct TreeVertex {
  TreeLevel level = TreeLevel::Machine;
  /// Hierarchical label: "A" for the root, "A.n" for nodes, "A.n.p" for
  /// processors, "A.n.p.c" for cores (one-based components, as in Fig. 7).
  std::string label;
  int parent = -1;                ///< index of the parent, -1 for the root
  std::vector<int> children;     ///< indices of the children
  /// For leaves: the flat (consecutive) core index; -1 otherwise.
  int core_flat = -1;
};

/// Immutable architecture tree built from a MachineSpec.
class ArchitectureTree {
 public:
  explicit ArchitectureTree(const MachineSpec& spec);

  const MachineSpec& spec() const { return spec_; }
  const std::vector<TreeVertex>& vertices() const { return vertices_; }
  const TreeVertex& root() const { return vertices_.front(); }
  const TreeVertex& vertex(int index) const { return vertices_.at(index); }

  std::size_t size() const { return vertices_.size(); }
  int num_leaves() const { return num_leaves_; }

  /// Index of the leaf vertex for a flat core index.
  int leaf_of(int core_flat) const;

  /// Index of the deepest common ancestor of two leaves (by flat core index).
  int common_ancestor(int core_a, int core_b) const;

  /// Depth of a vertex (root = 0).
  int depth(int index) const;

  /// Communication level implied by the deepest common ancestor of two cores:
  /// ancestor at Processor level -> SameProcessor, Node -> SameNode,
  /// Machine -> InterNode.  Two equal cores share a Core-level "ancestor"
  /// (themselves) and also map to SameProcessor.
  CommLevel comm_level(int core_a, int core_b) const;

  /// Renders the tree as an indented outline (one vertex per line).
  std::string to_outline() const;

 private:
  MachineSpec spec_;
  std::vector<TreeVertex> vertices_;
  std::vector<int> leaf_index_;  ///< flat core index -> vertex index
  int num_leaves_ = 0;
};

}  // namespace ptask::arch
