#pragma once
/// \file multizone.hpp
/// M-task graph generation and cost annotation for the multi-zone
/// benchmarks (paper Section 4.6).
///
/// Each zone is one M-task.  Within a time step, all zones are computed
/// independently; at the end of a step, overlapping zones exchange border
/// data.  The cost annotation captures the two effects Fig. 17 hinges on:
///
///  * zone-internal communication (the ADI sweeps of the SP/BT solvers
///    transpose zone data across the executing group) -- this penalizes
///    *large* groups, because collective cost grows with the group size;
///  * border exchanges between zones assigned to different groups, modelled
///    as an orthogonal nearest-neighbour exchange -- cheap under a scattered
///    mapping, which co-locates same-position cores of different groups.
///
/// Load imbalance for BT-MZ emerges from the skewed zone sizes and the LPT
/// assignment of zones to groups.

#include "ptask/core/task_graph.hpp"
#include "ptask/npb/zones.hpp"

namespace ptask::npb {

/// Per-point, per-time-step computational work of the zone solvers
/// (approximate NPB operation counts).
double flop_per_point(MzSolver solver);

/// Task graph of one time step: one M-task per zone plus a zero-work
/// synchronization task closing the step.
core::TaskGraph step_graph(const MultiZoneProblem& problem);

/// Border-exchange volume of one zone (bytes per step): both ghost faces in
/// x and y, 5 solution variables, doubles.
std::size_t border_bytes(const ZoneGrid& zone);

}  // namespace ptask::npb
