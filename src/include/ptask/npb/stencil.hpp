#pragma once
/// \file stencil.hpp
/// A real (executable) zone kernel: scalar 3-D Jacobi relaxation with
/// Dirichlet boundaries, standing in for the SP/BT per-zone solves in the
/// runnable examples and tests.  It provides genuine computation per zone
/// (relaxation sweeps, residuals) and genuine border coupling (ghost-face
/// exchange between adjacent zones), so a multi-zone time step can be
/// executed for real by the shared-memory runtime and checked for
/// schedule-independence.

#include <cstddef>
#include <span>
#include <vector>

#include "ptask/npb/zones.hpp"

namespace ptask::npb {

/// Scalar field on one zone with one ghost layer on each x/y face.
class ZoneField {
 public:
  explicit ZoneField(const ZoneGrid& grid);

  const ZoneGrid& grid() const { return grid_; }

  /// Value access for interior coordinates (0-based, without ghosts).
  double& at(int x, int y, int z);
  double at(int x, int y, int z) const;

  /// Initializes the interior with a smooth function of the global
  /// coordinates (`x0`, `y0` are the zone's offsets in the global grid).
  void initialize(int x0, int y0, std::size_t global_nx,
                  std::size_t global_ny);

  /// One Jacobi sweep over rows [y_begin, y_end) of the interior, writing
  /// into the back buffer; ghost cells act as boundary values.  Returns the
  /// max residual of the swept rows.  Splitting by rows lets an SPMD group
  /// share one zone; after all rows of a sweep are done (and the group
  /// synchronized), exactly one member calls commit().
  double jacobi_sweep(int y_begin, int y_end);

  /// Publishes the back buffer written by jacobi_sweep as the new state.
  void commit();

  /// Copies this zone's interior face into `out` / sets a ghost face from
  /// `in`.  `face` is 0:-x, 1:+x, 2:-y, 3:+y; the face has ny*nz or nx*nz
  /// entries.
  void extract_face(int face, std::span<double> out) const;
  void set_ghost_face(int face, std::span<const double> in);

  std::size_t face_size(int face) const;

  /// Max-norm of the interior (used for schedule-independence checks).
  double interior_max() const;

 private:
  std::size_t index(int x, int y, int z) const;

  ZoneGrid grid_;
  std::vector<double> data_;      // (nx+2) x (ny+2) x nz, ghosts in x/y
  std::vector<double> next_;
};

}  // namespace ptask::npb
