#pragma once
/// \file zones.hpp
/// Zone geometry of the NAS Parallel Benchmarks, multi-zone versions
/// (NPB-MZ; van der Wijngaart & Jin, NAS-03-010), used in the paper's
/// Section 4.6.
///
/// A multi-zone problem partitions a global 3-D grid into x_zones * y_zones
/// zones (full extent in z).  SP-MZ splits the grid into *equal* zones;
/// BT-MZ sizes the zones along a geometric progression so that the largest
/// zone has roughly 20x the points of the smallest -- the load-imbalance
/// stressor of the suite.

#include <cstddef>
#include <string>
#include <vector>

namespace ptask::npb {

struct ZoneGrid {
  int nx = 1;
  int ny = 1;
  int nz = 1;
  std::size_t points() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
};

enum class MzSolver { SP, BT };

const char* to_string(MzSolver solver);

struct MultiZoneProblem {
  MzSolver solver = MzSolver::SP;
  char benchmark_class = 'S';
  int x_zones = 1;
  int y_zones = 1;
  ZoneGrid global;
  std::vector<ZoneGrid> zones;  ///< x-major: zone (ix, iy) at iy*x_zones+ix

  int num_zones() const { return x_zones * y_zones; }
  std::size_t total_points() const;
  /// Ratio of the largest to the smallest zone (1.0 for SP-MZ).
  double imbalance_ratio() const;

  std::string name() const;
};

/// Builds the zone geometry for a benchmark class.
/// Supported classes: S, W, A, B, C, D (NPB-MZ table: class C has 16x16=256
/// zones on a 480x320x28 grid, class D has 32x32=1024 zones on
/// 1632x1216x34).
MultiZoneProblem make_problem(MzSolver solver, char benchmark_class);

}  // namespace ptask::npb
