#pragma once
/// \file spmd_solvers.hpp
/// Executable SPMD realizations of the task-parallel ODE solver steps for
/// the shared-memory M-task runtime (ptask::rt).
///
/// These classes bind a solver's per-step task graph (ode::graph_gen) to
/// real task bodies operating on shared state, with the same communication
/// structure as the paper's distributed implementations: group-internal
/// multi-broadcasts realized over rt::GroupComm, and -- for the stage-vector
/// solvers -- orthogonal exchanges between the concurrently executing stage
/// groups via the runtime's orthogonal communicators.
///
/// They let tests and examples *execute* a scheduled time step and compare
/// the numerical result bit-for-bit against the sequential solvers.

#include <memory>
#include <vector>

#include "ptask/core/task_graph.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/ode/ode_system.hpp"
#include "ptask/ode/solver_base.hpp"
#include "ptask/rt/executor.hpp"

namespace ptask::ode {

/// One extrapolation (EPOL) time step as a runtime program.
///
/// Valid under *any* schedule of its step graph (the approximations only
/// communicate through the graph's input-output relations), so it is the
/// vehicle for schedule-independence tests.
class SpmdEpolStep {
 public:
  SpmdEpolStep(const OdeSystem& system, int r, double t, double h,
               std::vector<double> y0);

  /// The cost-annotated step graph (same shape as the generator's).
  core::TaskGraph build_graph() const;

  /// Task bodies matching `graph` (indexed by original task id).
  std::vector<rt::TaskFn> build_functions(const core::TaskGraph& graph);

  /// y(t + h), available after Executor::run.
  const std::vector<double>& result() const { return result_; }

 private:
  void micro_step(rt::ExecContext& ctx, int i, int j);

  const OdeSystem* system_;
  int r_;
  double t_, h_;
  std::vector<double> y_;
  std::vector<std::vector<double>> approx_;
  std::vector<double> result_;
};

/// One iterated Runge-Kutta (IRK) time step as a runtime program, in the
/// paper's task-parallel form: the K stage groups run in lockstep, reading
/// each other's previous-iteration stage vectors through double-buffered
/// shared state synchronized by orthogonal barriers, with a group-internal
/// allgather of the stage argument in every iteration -- exactly the
/// m group Tag + m orthogonal Tag pattern of Table 1.
///
/// Requires the task-parallel schedule (one stage task per group, i.e.
/// fixed_groups == K); the body throws std::logic_error otherwise, because
/// the hidden cross-stage exchange is only correct in lockstep.
class SpmdIrkStep {
 public:
  SpmdIrkStep(const OdeSystem& system, int stages, int iterations, double t,
              double h, std::vector<double> y0);

  core::TaskGraph build_graph() const;
  std::vector<rt::TaskFn> build_functions(const core::TaskGraph& graph);

  const std::vector<double>& result() const { return result_; }

 private:
  struct Block {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  Block block_of(const rt::ExecContext& ctx) const;
  void stage_body(rt::ExecContext& ctx, int stage);
  void update_body(rt::ExecContext& ctx);
  static void cross_group_sync(rt::ExecContext& ctx);

  const OdeSystem* system_;
  CollocationTableau tableau_;
  int m_;
  double t_, h_;
  std::vector<double> y_;
  /// Double-buffered stage vectors: k_[parity][stage] is one full vector.
  std::vector<std::vector<double>> k_[2];
  std::vector<double> result_;
};

}  // namespace ptask::ode
