#pragma once
/// \file bruss2d.hpp
/// BRUSS2D: spatial discretization of the 2-D Brusselator reaction-diffusion
/// equations (Hairer, Norsett & Wanner I) -- the paper's *sparse* benchmark
/// system.
///
///   u_t = B + u^2 v - (A+1) u + alpha (u_xx + u_yy)
///   v_t = A u - u^2 v       + alpha (v_xx + v_yy)
///
/// on the unit square with Neumann boundary conditions, discretized on an
/// N x N grid with central differences.  State layout: y[0 .. N^2) holds u
/// row-major, y[N^2 .. 2N^2) holds v, so n = 2 N^2.

#include "ptask/ode/ode_system.hpp"

namespace ptask::ode {

class Bruss2D final : public OdeSystem {
 public:
  /// `grid` is N; the system size is 2 N^2.
  explicit Bruss2D(std::size_t grid, double a = 3.4, double b = 1.0,
                   double alpha = 2.0e-3);

  std::size_t size() const override { return 2 * grid_ * grid_; }
  std::size_t grid() const { return grid_; }

  void eval(double t, std::span<const double> y, std::span<double> f,
            std::size_t begin, std::size_t end) const override;

  std::vector<double> initial_state() const override;

  double eval_flop_per_component() const override { return 14.0; }
  bool is_dense() const override { return false; }
  std::string name() const override { return "BRUSS2D"; }

 private:
  double laplacian(std::span<const double> field, std::size_t row,
                   std::size_t col) const;

  std::size_t grid_;
  double a_, b_, alpha_scaled_;
};

}  // namespace ptask::ode
