#pragma once
/// \file epol.hpp
/// EPOL: explicit extrapolation method (paper Section 2.2.3, Fig. 3/4).
///
/// One time step computes R approximations of y(t + h): approximation i
/// performs i explicit Euler micro steps of size h/i.  The R approximations
/// are combined by Aitken-Neville extrapolation into a final approximation
/// of order R.  The micro steps of one approximation form a linear chain;
/// different approximations are independent -- exactly the task structure
/// the layer scheduler exploits (chains contracted, one layer of R chains).

#include "ptask/ode/solver_base.hpp"

namespace ptask::ode {

class Epol final : public OneStepSolver {
 public:
  /// `r` approximations (method order r).
  explicit Epol(int r);

  std::string name() const override { return "EPOL"; }
  int order() const override { return r_; }
  int approximations() const { return r_; }

  void step(const OdeSystem& system, double t, double h,
            std::vector<double>& y) override;

  /// Computes approximation `i` (1-based): i Euler micro steps of size h/i,
  /// starting from `y`, into `out`.  Exposed so the SPMD runtime version can
  /// run approximations on separate groups.
  static void micro_steps(const OdeSystem& system, double t, double h, int i,
                          std::span<const double> y, std::vector<double>& out);

  /// Aitken-Neville combination of the R approximations (harmonic step
  /// number sequence n_i = i) into the order-R result.
  static std::vector<double> combine(
      std::vector<std::vector<double>> approximations);

 private:
  int r_;
};

}  // namespace ptask::ode
