#pragma once
/// \file pab.hpp
/// PAB / PABM: Parallel Adams-Bashforth methods (paper Section 4.2), block
/// one-step variants of the Adams methods in which the K stage values of a
/// step can be computed *concurrently* (van der Houwen-style parallel
/// Adams methods).
///
/// One macro step from t_n advances by h through K sub-points
/// t_{n,k} = t_n + (k/K) h.  The method keeps the right-hand-side values at
/// the K sub-points of the previous block as history.
///
/// PAB (predictor only, order K):
///   y_{n,k} = y_n + h * sum_j beta_kj f(history_j)
/// where beta integrates the interpolation polynomial through the history
/// nodes from 0 to c_k.  The K predictions are independent of each other.
///
/// PABM (PAB + m Moulton-style corrector iterations, order K+1):
///   y_{n,k}^(l) = y_n + h * [gamma_k0 f(t_n, y_n)
///                 + sum_j gamma_kj f(t_{n,j}, y_{n,j}^(l-1))]
/// again with the K corrections of one iteration independent.
///
/// The first macro step is bootstrapped with finely micro-stepped classical
/// RK4 so the block history exists; the bootstrap error is far below the
/// method error for the step sizes of interest.

#include "ptask/ode/solver_base.hpp"

namespace ptask::ode {

/// Shared machinery of the block Adams methods.
class BlockAdamsBase : public OneStepSolver {
 public:
  explicit BlockAdamsBase(int block_size);

  int block_size() const { return k_; }
  void reset() override { history_.clear(); }

 protected:
  /// f-history at the previous block's sub-points (index K-1 is t_n).
  bool has_history() const { return !history_.empty(); }

  /// Bootstraps the history (and advances y by one macro step) with
  /// micro-stepped RK4.
  void bootstrap(const OdeSystem& system, double t, double h,
                 std::vector<double>& y);

  /// Predictor coefficients beta (row-major K x K).
  const std::vector<double>& beta() const { return beta_; }

  int k_;
  std::vector<double> beta_;
  std::vector<std::vector<double>> history_;
};

class Pab final : public BlockAdamsBase {
 public:
  explicit Pab(int block_size);

  std::string name() const override { return "PAB"; }
  int order() const override { return k_; }

  void step(const OdeSystem& system, double t, double h,
            std::vector<double>& y) override;
};

class Pabm final : public BlockAdamsBase {
 public:
  /// `corrector_iterations` = m.
  Pabm(int block_size, int corrector_iterations);

  std::string name() const override { return "PABM"; }
  int order() const override { return k_ + 1; }
  int corrector_iterations() const { return m_; }

  void step(const OdeSystem& system, double t, double h,
            std::vector<double>& y) override;

 private:
  int m_;
  std::vector<double> gamma_;  // row-major K x (K+1)
};

/// One classical RK4 step (used by the bootstrap and available to tests).
void rk4_step(const OdeSystem& system, double t, double h,
              std::vector<double>& y);

}  // namespace ptask::ode
