#pragma once
/// \file adaptive.hpp
/// Adaptive step-size control for the ODE solvers (paper Section 2.2.3:
/// "The local error is estimated at each time step and the step size is
/// adapted accordingly such that a specified accuracy is maintained").
///
/// The controller uses step doubling (Richardson): each accepted step
/// compares one full step of size h against two half steps; the difference
/// scaled by 2^p - 1 estimates the local error of the half-step result,
/// which is also used as the (locally extrapolated) solution.  The next
/// step size follows the standard order-aware update with a safety factor
/// and growth clamps.  Step doubling is method-agnostic, so one controller
/// serves all five solvers.

#include <cstddef>
#include <vector>

#include "ptask/ode/ode_system.hpp"
#include "ptask/ode/solver_base.hpp"

namespace ptask::ode {

struct AdaptiveOptions {
  double abs_tol = 1e-8;
  double rel_tol = 1e-6;
  double safety = 0.9;
  double min_factor = 0.2;  ///< largest allowed step shrink per rejection
  double max_factor = 4.0;  ///< largest allowed step growth per acceptance
  double h_min = 1e-12;
  double h_max = 1.0;
  std::size_t max_steps = 1'000'000;
  /// Use the half-step result improved by local extrapolation.
  bool local_extrapolation = true;
};

struct AdaptiveResult {
  std::vector<double> state;
  double t_end = 0.0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double final_h = 0.0;
  double min_h_used = 0.0;
  double max_h_used = 0.0;
};

/// Integrates [t0, te] with error-controlled steps.  The solver's history
/// (PAB/PABM) is reset before every trial, so the controller is valid for
/// every method (at a bootstrap cost for the multi-step ones).
/// Throws std::runtime_error when the controller cannot meet the tolerance
/// with h >= h_min or exceeds max_steps.
AdaptiveResult integrate_adaptive(OneStepSolver& solver,
                                  const OdeSystem& system, double t0,
                                  double te, double h0,
                                  std::vector<double> y0,
                                  const AdaptiveOptions& options = {});

/// Weighted RMS error norm: sqrt(mean((e_i / (atol + rtol*|y_i|))^2));
/// a step is acceptable iff the norm is <= 1.
double error_norm(std::span<const double> error, std::span<const double> y,
                  double abs_tol, double rel_tol);

}  // namespace ptask::ode
