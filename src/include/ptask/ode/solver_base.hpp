#pragma once
/// \file solver_base.hpp
/// Common driver for the ODE time-stepping methods (paper Section 4.2) and
/// small shared numerics utilities.
///
/// All five methods of the paper are implemented as real numerical solvers:
/// EPOL (extrapolation), IRK (iterated Runge-Kutta), DIIRK (diagonal-
/// implicitly iterated Runge-Kutta), PAB and PABM (parallel Adams-Bashforth
/// without / with Moulton correction).  Their *sequential* step functions
/// here define the numerics; the SPMD variants executed by the ptask::rt
/// runtime and the cost-annotated task graphs in graph_gen.hpp mirror them.

#include <memory>
#include <string>
#include <vector>

#include "ptask/ode/ode_system.hpp"

namespace ptask::ode {

struct IntegrationResult {
  std::vector<double> state;
  double t_end = 0.0;
  std::size_t steps = 0;
};

/// Base class of the time-stepping methods.  A solver may carry history
/// (PAB/PABM); `reset()` clears it before a fresh integration.
class OneStepSolver {
 public:
  virtual ~OneStepSolver() = default;

  virtual std::string name() const = 0;

  /// Consistency order of the method (used by convergence tests).
  virtual int order() const = 0;

  /// Advances `y` in place from t to t + h.
  virtual void step(const OdeSystem& system, double t, double h,
                    std::vector<double>& y) = 0;

  virtual void reset() {}

  /// Fixed-step integration of [t0, te]; the last step is shortened to end
  /// exactly at te.
  IntegrationResult integrate(const OdeSystem& system, double t0, double te,
                              double h, std::vector<double> y0);
};

/// Solves the dense linear system A x = b (row-major A, n x n) by Gaussian
/// elimination with partial pivoting.  Intended for the small tableau /
/// coefficient systems of the solvers (n <= ~16).
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b);

/// Gauss-Legendre collocation data on [0, 1]: `c` are the s nodes, `b` the
/// quadrature weights, `a` the s x s Runge-Kutta matrix (row-major) with the
/// collocation conditions sum_j a_ij c_j^{q-1} = c_i^q / q.
struct CollocationTableau {
  std::vector<double> c;
  std::vector<double> b;
  std::vector<double> a;  // row-major s x s
  int stages() const { return static_cast<int>(c.size()); }
};

/// Builds the s-stage Gauss-Legendre tableau (order 2s).
CollocationTableau gauss_tableau(int stages);

/// Estimates the observed convergence order of a solver on `system` by
/// comparing fixed-step solutions at h and h/2 against a reference computed
/// at h/8: order ~= log2(err(h) / err(h/2)).
double estimate_order(OneStepSolver& solver, const OdeSystem& system,
                      double t0, double te, double h);

}  // namespace ptask::ode
