#pragma once
/// \file graph_gen.hpp
/// M-task graph generators for the ODE solvers.
///
/// For every method the generator produces the task graph of ONE time step,
/// annotated with computational work and with the internal collective
/// operations of the paper's Table 1.  The annotation is *version neutral*:
/// group-scope collectives are written on the tasks; whether they surface as
/// global or group-based operations is decided by the schedule (a layer with
/// g = 1 groups turns group scope into global scope, orthogonal operations
/// vanish when there is only one group).  `count_comms` applies exactly this
/// classification, so the Table 1 rows for the data-parallel and the
/// task-parallel program versions are both derived from the same graph.

#include "ptask/core/spec_builder.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/ode/ode_system.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::ode {

enum class Method { EPOL, IRK, DIIRK, PAB, PABM };

const char* to_string(Method method);

/// Parameters describing one solver instance for graph generation.
struct SolverGraphSpec {
  Method method = Method::EPOL;
  std::size_t n = 0;                   ///< ODE system size
  double eval_flop_per_component = 14; ///< teval(f)/n of the system
  int stages = 4;                      ///< R (EPOL) or K (others)
  int iterations = 1;                  ///< m: fixed-point / corrector iters
  int inner_iterations = 1;            ///< I: DIIRK inner solves
  std::size_t bcast_row_bytes = 8192;  ///< DIIRK pivot-row payload (banded GE)

  /// Task graph of one time step (no start/stop markers; schedulers add
  /// their own bookkeeping).
  core::TaskGraph step_graph() const;
};

/// Builds a spec from an actual system (size + eval cost) and parameters.
SolverGraphSpec make_spec(Method method, const OdeSystem& system, int stages,
                          int iterations = 1, int inner_iterations = 1);

/// The full hierarchical specification program of the extrapolation method
/// (paper Fig. 3), built with the SpecBuilder: init_step, a while node for
/// the time loop whose body holds the step(j, i) parfor/for nest and the
/// combine task (paper Fig. 4).
core::HierGraph epol_program_spec(std::size_t n, int r,
                                  double eval_flop_per_component,
                                  double time_steps_hint);

/// Collective operation counts of one time step under a given schedule,
/// following the paper's Table 1 conventions: group-scope operations in a
/// one-group layer count as global; orthogonal operations in a one-group
/// layer vanish; for multi-group layers, group-based and orthogonal
/// operations are counted *for one group* (the paper lists the operations of
/// one of the disjoint groups); one global broadcast is charged per time
/// step if any cross-layer re-distribution moves data (EPOL's combine).
struct CommCounts {
  int global_allgather = 0;
  int global_bcast = 0;
  int group_allgather = 0;
  int group_bcast = 0;
  int orth_allgather = 0;
};

CommCounts count_comms(const sched::LayeredSchedule& schedule);

}  // namespace ptask::ode
