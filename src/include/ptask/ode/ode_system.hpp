#pragma once
/// \file ode_system.hpp
/// ODE initial value problems y'(t) = f(t, y(t)), y(t0) = y0 (paper
/// Section 2.2.3).
///
/// The two benchmark systems of the paper are represented: a *sparse* system
/// where evaluating one component touches O(1) other components (BRUSS2D,
/// the spatially discretized 2-D Brusselator), and a *dense* system where
/// one component depends on all others (SCHROED, a Galerkin approximation of
/// a Schrödinger-Poisson system), so the evaluation time of the full
/// right-hand side scales linearly resp. quadratically with the system size.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ptask::ode {

class OdeSystem {
 public:
  virtual ~OdeSystem() = default;

  /// Dimension n of the system.
  virtual std::size_t size() const = 0;

  /// Evaluates components [begin, end) of f(t, y) into f[begin, end).
  /// `y` and `f` always span the full system; the component range enables
  /// block-distributed SPMD evaluation.
  virtual void eval(double t, std::span<const double> y, std::span<double> f,
                    std::size_t begin, std::size_t end) const = 0;

  /// Evaluates the full right-hand side.
  void eval_all(double t, std::span<const double> y,
                std::span<double> f) const {
    eval(t, y, f, 0, size());
  }

  /// Initial state y(t0).
  virtual std::vector<double> initial_state() const = 0;

  /// Approximate flop to evaluate ONE component (the cost model's
  /// teval(f) / n); for dense systems this is O(n).
  virtual double eval_flop_per_component() const = 0;

  virtual bool is_dense() const = 0;

  virtual std::string name() const = 0;
};

/// Maximum norm of the difference of two states.
double max_norm_diff(std::span<const double> a, std::span<const double> b);

}  // namespace ptask::ode
