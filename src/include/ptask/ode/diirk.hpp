#pragma once
/// \file diirk.hpp
/// DIIRK: Diagonal-Implicitly Iterated Runge-Kutta method (paper
/// Section 4.2), the implicit sibling of IRK suitable for stiff problems.
///
/// The stage iteration keeps the diagonal coupling implicit:
///
///   K_j^(l) = f(t + c_j h, y + h * sum_{k} a_jk K_k^(l-1)
///                              + h d_j (K_j^(l) - K_j^(l-1)))
///
/// so each stage update solves an n-dimensional implicit equation that
/// couples only to the stage's *own* new value (diagonal), which the
/// implementation resolves by `inner_iterations` fixed-point sweeps
/// (playing the role of the dynamically determined iteration count I of
/// the paper, typically 1 <= I <= 3).  The K stages stay independent within
/// one outer iteration, giving the same task parallelism as IRK.

#include "ptask/ode/solver_base.hpp"

namespace ptask::ode {

class Diirk final : public OneStepSolver {
 public:
  /// `stages` = K, `iterations` = m outer iterations, `inner_iterations` = I.
  Diirk(int stages, int iterations, int inner_iterations = 2);

  std::string name() const override { return "DIIRK"; }
  int order() const override;
  int stages() const { return tableau_.stages(); }
  int iterations() const { return iterations_; }
  int inner_iterations() const { return inner_; }

  void step(const OdeSystem& system, double t, double h,
            std::vector<double>& y) override;

 private:
  CollocationTableau tableau_;
  int iterations_;
  int inner_;
};

}  // namespace ptask::ode
