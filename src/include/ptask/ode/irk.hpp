#pragma once
/// \file irk.hpp
/// IRK: Iterated Runge-Kutta method (paper Section 4.2).
///
/// An s-stage implicit collocation method (Gauss-Legendre) whose stage
/// vectors are approximated by m explicit fixed-point iterations
///
///   K_j^(0)  = f(t, y)
///   K_j^(l)  = f(t + c_j h, y + h * sum_k a_jk K_k^(l-1)),   l = 1..m
///   y_{n+1}  = y + h * sum_j b_j K_j^(m)
///
/// Within one iteration the K stage vectors are *independent* -- the
/// coarse-grained task parallelism the paper exploits by computing each
/// stage vector on its own group of cores.  The achievable order is
/// min(2s, m + 1).

#include "ptask/ode/solver_base.hpp"

namespace ptask::ode {

class Irk final : public OneStepSolver {
 public:
  /// `stages` = K stage vectors, `iterations` = m fixed-point iterations.
  Irk(int stages, int iterations);

  std::string name() const override { return "IRK"; }
  int order() const override;
  int stages() const { return tableau_.stages(); }
  int iterations() const { return iterations_; }
  const CollocationTableau& tableau() const { return tableau_; }

  void step(const OdeSystem& system, double t, double h,
            std::vector<double>& y) override;

 private:
  CollocationTableau tableau_;
  int iterations_;
};

}  // namespace ptask::ode
