#pragma once
/// \file schroed.hpp
/// SCHROED: a dense ODE system modelled after the Galerkin approximation of
/// a Schrodinger-Poisson system (paper reference [41]) -- the paper's
/// *dense* benchmark system.
///
/// The physically relevant property for the scheduling/mapping study is the
/// coupling structure and cost: every component of f depends on *all*
/// components of y, so evaluating the full right-hand side costs O(n^2).
/// We use a smooth, stable dense coupling
///
///   f_i(t, y) = -y_i + (1/n) * sum_j  c_{ij} * sin(y_j),
///   c_{ij} = 1 / (1 + |i - j| / n),
///
/// whose trajectories stay bounded (the map is a contraction towards a
/// bounded attractor), which makes convergence-order measurements clean.

#include "ptask/ode/ode_system.hpp"

namespace ptask::ode {

class Schroed final : public OdeSystem {
 public:
  explicit Schroed(std::size_t n);

  std::size_t size() const override { return n_; }

  void eval(double t, std::span<const double> y, std::span<double> f,
            std::size_t begin, std::size_t end) const override;

  std::vector<double> initial_state() const override;

  /// One component costs ~4 flop per coupled term (O(n)).
  double eval_flop_per_component() const override {
    return 4.0 * static_cast<double>(n_);
  }
  bool is_dense() const override { return true; }
  std::string name() const override { return "SCHROED"; }

 private:
  std::size_t n_;
};

}  // namespace ptask::ode
