#include "ptask/rt/fault_injection.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::rt {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool list_contains(const char* list, const char* word) {
  const std::string s(list);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    const std::string item = s.substr(pos, comma - pos);
    if (item == word || item == "all") return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

FaultOptions FaultOptions::from_env() {
  FaultOptions options;
  if (const char* modes = std::getenv("PTASK_FAULT_INJECT");
      modes != nullptr && *modes != '\0') {
    options.task_delays = list_contains(modes, "delays");
    options.yield_storm = list_contains(modes, "yield");
  }
  if (const char* seed = std::getenv("PTASK_FAULT_SEED");
      seed != nullptr && *seed != '\0') {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(seed, &end, 0);
    if (end != seed) options.seed = static_cast<std::uint64_t>(value);
  }
  if (const char* cap = std::getenv("PTASK_FAULT_MAX_DELAY_US");
      cap != nullptr && *cap != '\0') {
    const long value = std::strtol(cap, nullptr, 10);
    if (value >= 0) options.max_delay_us = static_cast<int>(value);
  }
  return options;
}

FaultInjector::FaultInjector(FaultOptions options) : options_(options) {
  if (options_.any()) {
    injections_ = &obs::metrics().counter("rt.fault.injections");
    delay_us_ = &obs::metrics().counter("rt.fault.delay_us");
    yields_ = &obs::metrics().counter("rt.fault.yields");
  }
}

std::uint64_t FaultInjector::point(int worker, std::int64_t task, int phase) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(worker))
          << 40) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(phase))
          << 32) ^
         static_cast<std::uint64_t>(task);
}

void FaultInjector::perturb(std::uint64_t point) const {
  if (!enabled()) return;
  const std::uint64_t h = mix64(options_.seed ^ mix64(point));
  bool injected = false;
  if (options_.yield_storm) {
    // Burst of yields on ~half the points; length keyed by the hash.
    const int yields = static_cast<int>((h >> 8) % 64);
    if ((h & 1) != 0) {
      for (int i = 0; i < yields; ++i) std::this_thread::yield();
      if (yields_ != nullptr) yields_->add(static_cast<std::uint64_t>(yields));
      injected = yields > 0;
    }
  }
  if (options_.task_delays && options_.max_delay_us > 0) {
    // Sleep on ~one third of the points; duration keyed by the hash.
    if ((h >> 1) % 3 == 0) {
      const auto us = static_cast<long>(
          (h >> 16) % static_cast<std::uint64_t>(options_.max_delay_us + 1));
      // The span measures the actual elapsed wall time of the sleep, so an
      // injected delay shows up as an explicit Fault span, not a gap.
      obs::ScopedSpan span(obs::SpanKind::Fault, "fault.delay");
      std::this_thread::sleep_for(std::chrono::microseconds(us));
      if (delay_us_ != nullptr) {
        delay_us_->add(static_cast<std::uint64_t>(us));
      }
      injected = true;
    }
  }
  if (injected && injections_ != nullptr) injections_->add();
}

}  // namespace ptask::rt
