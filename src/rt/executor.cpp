#include "ptask/rt/executor.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::rt {

namespace {
obs::Counter& runs_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.runs");
  return c;
}
obs::Counter& layers_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.layers_executed");
  return c;
}
obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.tasks_executed");
  return c;
}
}  // namespace

Executor::Executor(int num_virtual_cores, FaultOptions faults)
    : team_(num_virtual_cores), injector_(faults) {
  if (injector_.enabled()) {
    // Perturb every worker's job entry so layers start staggered instead of
    // in the near-lockstep order the thread team's broadcast produces.
    team_.set_job_prologue([this](int worker) {
      injector_.perturb(FaultInjector::point(worker, -1, 0));
    });
  }
}

void Executor::run(const sched::LayeredSchedule& schedule,
                   const std::vector<TaskFn>& functions) {
  if (schedule.total_cores != team_.size()) {
    throw std::invalid_argument(
        "schedule core count does not match the executor's team size");
  }
  const core::TaskGraph& contracted = schedule.contraction.contracted;

  runs_counter().add();
  const bool tracing = obs::enabled();
  {
    // Scoped so the run span closes before the drain below.
    obs::ScopedSpan run_span(obs::SpanKind::Run, "executor.run");

    for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
      const sched::ScheduledLayer& layer = schedule.layers[li];
      layers_counter().add();
      obs::ScopedSpan layer_span(obs::SpanKind::Layer,
                                 "layer " + std::to_string(li));
      layer_span.set_layer(static_cast<int>(li));
      // Group partition of the virtual cores: prefix offsets.
      std::vector<int> first(layer.group_sizes.size() + 1, 0);
      for (std::size_t g = 0; g < layer.group_sizes.size(); ++g) {
        first[g + 1] = first[g] + layer.group_sizes[g];
      }
      // Fresh communicators per layer (group structure changes per layer).
      std::vector<std::unique_ptr<GroupComm>> comms;
      comms.reserve(layer.group_sizes.size());
      for (int size : layer.group_sizes) {
        comms.push_back(std::make_unique<GroupComm>(size));
      }
      // Orthogonal communicators: one per position shared by all groups,
      // up to the smallest group's size.
      const int num_groups = layer.num_groups();
      int min_size = layer.group_sizes.empty() ? 0 : layer.group_sizes.front();
      for (int size : layer.group_sizes) min_size = std::min(min_size, size);
      std::vector<std::unique_ptr<GroupComm>> orth_comms;
      if (num_groups > 1) {
        orth_comms.reserve(static_cast<std::size_t>(min_size));
        for (int j = 0; j < min_size; ++j) {
          orth_comms.push_back(std::make_unique<GroupComm>(num_groups));
        }
      }
      // Per-group task lists in assignment order.
      std::vector<std::vector<core::TaskId>> group_tasks(
          layer.group_sizes.size());
      for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
        group_tasks[static_cast<std::size_t>(layer.task_group[i])].push_back(
            layer.tasks[i]);
      }

      team_.run([&](int worker) {
        // Locate this worker's group.
        std::size_t g = 0;
        while (g + 1 < first.size() && worker >= first[g + 1]) ++g;
        if (g >= layer.group_sizes.size()) return;  // beyond last group: idle

        ExecContext ctx;
        ctx.group_rank = worker - first[g];
        ctx.group_size = layer.group_sizes[g];
        ctx.group_index = static_cast<int>(g);
        ctx.num_groups = layer.num_groups();
        ctx.comm = comms[g].get();
        if (ctx.num_groups > 1 &&
            ctx.group_rank < static_cast<int>(orth_comms.size())) {
          ctx.orth = orth_comms[static_cast<std::size_t>(ctx.group_rank)].get();
        }

        for (core::TaskId contracted_id : group_tasks[g]) {
          for (core::TaskId original :
               schedule.contraction.members[static_cast<std::size_t>(
                   contracted_id)]) {
            if (original < 0 ||
                static_cast<std::size_t>(original) >= functions.size()) {
              continue;
            }
            const TaskFn& fn = functions[static_cast<std::size_t>(original)];
            if (fn) {
              if (ctx.group_rank == 0) tasks_counter().add();
              injector_.perturb(FaultInjector::point(worker, original, 1));
              if (tracing) {
                obs::ThreadContext tctx;
                tctx.worker = worker;
                tctx.group = ctx.group_index;
                tctx.group_size = ctx.group_size;
                tctx.layer = static_cast<int>(li);
                tctx.task = original;
                tctx.contracted = contracted_id;
                obs::ContextScope scope(tctx);
                obs::ScopedSpan task_span(
                    obs::SpanKind::Task, contracted.task(contracted_id).name());
                fn(ctx);
              } else {
                fn(ctx);
              }
              injector_.perturb(FaultInjector::point(worker, original, 2));
            }
          }
        }
      });
      // team_.run returning is the inter-layer synchronization.
    }
  }
  // All workers are quiescent (team_.run synchronized), so draining the
  // per-thread span buffers here is race-free.
  if (tracing) obs::tracer().drain();
}

void Executor::run(const sched::Schedule& schedule,
                   const std::vector<TaskFn>& functions) {
  if (!schedule.has_layers()) {
    throw std::invalid_argument(
        "schedule '" + schedule.strategy +
        "' has no layer structure; the executor needs scheduled layers");
  }
  run(schedule.layered, functions);
}

}  // namespace ptask::rt
