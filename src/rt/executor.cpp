#include "ptask/rt/executor.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace ptask::rt {

Executor::Executor(int num_virtual_cores, FaultOptions faults)
    : team_(num_virtual_cores), injector_(faults) {
  if (injector_.enabled()) {
    // Perturb every worker's job entry so layers start staggered instead of
    // in the near-lockstep order the thread team's broadcast produces.
    team_.set_job_prologue([this](int worker) {
      injector_.perturb(FaultInjector::point(worker, -1, 0));
    });
  }
}

void Executor::run(const sched::LayeredSchedule& schedule,
                   const std::vector<TaskFn>& functions) {
  if (schedule.total_cores != team_.size()) {
    throw std::invalid_argument(
        "schedule core count does not match the executor's team size");
  }
  const core::TaskGraph& contracted = schedule.contraction.contracted;

  for (const sched::ScheduledLayer& layer : schedule.layers) {
    // Group partition of the virtual cores: prefix offsets.
    std::vector<int> first(layer.group_sizes.size() + 1, 0);
    for (std::size_t g = 0; g < layer.group_sizes.size(); ++g) {
      first[g + 1] = first[g] + layer.group_sizes[g];
    }
    // Fresh communicators per layer (group structure changes per layer).
    std::vector<std::unique_ptr<GroupComm>> comms;
    comms.reserve(layer.group_sizes.size());
    for (int size : layer.group_sizes) {
      comms.push_back(std::make_unique<GroupComm>(size));
    }
    // Orthogonal communicators: one per position shared by all groups,
    // up to the smallest group's size.
    const int num_groups = layer.num_groups();
    int min_size = layer.group_sizes.empty() ? 0 : layer.group_sizes.front();
    for (int size : layer.group_sizes) min_size = std::min(min_size, size);
    std::vector<std::unique_ptr<GroupComm>> orth_comms;
    if (num_groups > 1) {
      orth_comms.reserve(static_cast<std::size_t>(min_size));
      for (int j = 0; j < min_size; ++j) {
        orth_comms.push_back(std::make_unique<GroupComm>(num_groups));
      }
    }
    // Per-group task lists in assignment order.
    std::vector<std::vector<core::TaskId>> group_tasks(
        layer.group_sizes.size());
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      group_tasks[static_cast<std::size_t>(layer.task_group[i])].push_back(
          layer.tasks[i]);
    }

    team_.run([&](int worker) {
      // Locate this worker's group.
      std::size_t g = 0;
      while (g + 1 < first.size() && worker >= first[g + 1]) ++g;
      if (g >= layer.group_sizes.size()) return;  // beyond last group: idle

      ExecContext ctx;
      ctx.group_rank = worker - first[g];
      ctx.group_size = layer.group_sizes[g];
      ctx.group_index = static_cast<int>(g);
      ctx.num_groups = layer.num_groups();
      ctx.comm = comms[g].get();
      if (ctx.num_groups > 1 &&
          ctx.group_rank < static_cast<int>(orth_comms.size())) {
        ctx.orth = orth_comms[static_cast<std::size_t>(ctx.group_rank)].get();
      }

      for (core::TaskId contracted_id : group_tasks[g]) {
        for (core::TaskId original :
             schedule.contraction.members[static_cast<std::size_t>(
                 contracted_id)]) {
          if (original < 0 ||
              static_cast<std::size_t>(original) >= functions.size()) {
            continue;
          }
          const TaskFn& fn = functions[static_cast<std::size_t>(original)];
          if (fn) {
            injector_.perturb(FaultInjector::point(worker, original, 1));
            fn(ctx);
            injector_.perturb(FaultInjector::point(worker, original, 2));
          }
        }
        (void)contracted;
      }
    });
    // team_.run returning is the inter-layer synchronization.
  }
}

}  // namespace ptask::rt
