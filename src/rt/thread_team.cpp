#include "ptask/rt/thread_team.hpp"

#include <stdexcept>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::rt {

namespace {
obs::Counter& jobs_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.team.jobs");
  return c;
}
}  // namespace

ThreadTeam::ThreadTeam(int size) {
  if (size <= 0) throw std::invalid_argument("team size must be positive");
  workers_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadTeam::set_job_prologue(std::function<void(int)> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (remaining_ != 0) {
    throw std::logic_error("cannot install a job prologue mid-job");
  }
  job_prologue_ = std::move(hook);
}

void ThreadTeam::run(const std::function<void(int)>& fn) {
  jobs_counter().add();
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  remaining_ = size();
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadTeam::worker_loop(int index) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* job = nullptr;
    const std::function<void(int)>* prologue = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      // The prologue only changes between jobs (set_job_prologue holds the
      // lock and refuses mid-job installs), so the pointer stays valid for
      // the duration of this job.
      if (job_prologue_) prologue = &job_prologue_;
    }
    std::exception_ptr error;
    try {
      // The dispatch span closes before the remaining_-decrement below, so
      // every span this worker records happens-before run()'s return (and
      // therefore before any tracer drain).
      obs::ScopedSpan job_span(obs::SpanKind::Dispatch, "team.job");
      job_span.set_worker(index);
      if (prologue) (*prologue)(index);
      (*job)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace ptask::rt
