#include "ptask/rt/dynamic_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::rt {

namespace {
obs::Counter& submitted_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.dyn.submitted");
  return c;
}
obs::Counter& dispatched_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.dyn.dispatched");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.dyn.completed");
  return c;
}
obs::Histogram& group_size_histogram() {
  static obs::Histogram& h = obs::metrics().histogram("rt.dyn.group_size");
  return h;
}
}  // namespace

DynamicScheduler::DynamicScheduler(int num_cores) {
  if (num_cores <= 0) {
    throw std::invalid_argument("core count must be positive");
  }
  inbox_.resize(static_cast<std::size_t>(num_cores));
  free_cores_.reserve(static_cast<std::size_t>(num_cores));
  for (int i = num_cores - 1; i >= 0; --i) free_cores_.push_back(i);
  workers_.reserve(static_cast<std::size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

DynamicScheduler::~DynamicScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  worker_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void DynamicScheduler::submit(DynamicTask task) {
  if (task.min_cores < 1 || task.min_cores > num_cores()) {
    throw std::invalid_argument("task min_cores does not fit the machine");
  }
  if (task.max_cores < task.min_cores) {
    throw std::invalid_argument("max_cores below min_cores");
  }
  if (task.work_hint <= 0.0) task.work_hint = 1.0;
  submitted_counter().add();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(task));
    dispatch_locked();
  }
  worker_cv_.notify_all();
}

void DynamicScheduler::dispatch_locked() {
  // Hand out groups while the oldest pending task fits.  Group sizing:
  // split the free cores in proportion to the pending tasks' work hints,
  // clamped to the task's moldability bounds -- heavier tasks get more
  // cores, and a lone task takes the whole free pool.
  while (!pending_.empty() &&
         static_cast<int>(free_cores_.size()) >= pending_.front().min_cores) {
    DynamicTask task = std::move(pending_.front());
    pending_.pop_front();

    double hint_sum = task.work_hint;
    for (const DynamicTask& p : pending_) hint_sum += p.work_hint;
    const int free_count = static_cast<int>(free_cores_.size());
    int size = static_cast<int>(std::llround(
        static_cast<double>(free_count) * task.work_hint / hint_sum));
    size = std::clamp(size, task.min_cores,
                      std::min(task.max_cores, free_count));

    auto run = std::make_shared<Running>();
    run->group_size = size;
    run->remaining = size;
    run->comm = std::make_unique<GroupComm>(size);
    run->task = std::move(task);

    run->workers.reserve(static_cast<std::size_t>(size));
    for (int rank = 0; rank < size; ++rank) {
      const int worker = free_cores_.back();
      free_cores_.pop_back();
      run->workers.push_back(worker);
      inbox_[static_cast<std::size_t>(worker)].push_back(
          Assignment{run, rank});
    }
    dispatched_counter().add();
    group_size_histogram().observe(static_cast<std::uint64_t>(size));
    ++active_tasks_;
    stats_.max_concurrent_tasks =
        std::max(stats_.max_concurrent_tasks, active_tasks_);
    stats_.largest_group = std::max(stats_.largest_group, size);
    stats_.smallest_group = std::min(stats_.smallest_group, size);
  }
}

void DynamicScheduler::worker_loop(int index) {
  const std::size_t me = static_cast<std::size_t>(index);
  while (true) {
    Assignment assignment;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      worker_cv_.wait(lock,
                      [&] { return shutdown_ || !inbox_[me].empty(); });
      if (shutdown_ && inbox_[me].empty()) return;
      assignment = std::move(inbox_[me].front());
      inbox_[me].pop_front();
    }

    ExecContext ctx;
    ctx.group_rank = assignment.rank;
    ctx.group_size = assignment.run->group_size;
    ctx.group_index = 0;
    ctx.num_groups = 1;
    ctx.comm = assignment.run->comm.get();
    if (assignment.run->task.body) {
      // The task span closes before the completion bookkeeping below, so
      // every span happens-before wait()'s return and the tracer drain.
      obs::ThreadContext tctx;
      tctx.worker = index;
      tctx.group_size = ctx.group_size;
      obs::ContextScope scope(tctx);
      obs::ScopedSpan task_span(obs::SpanKind::Task,
                                assignment.run->task.name.empty()
                                    ? "dyn.task"
                                    : assignment.run->task.name.c_str());
      assignment.run->task.body(ctx);
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      // The group's cores return to the pool together when its last member
      // finishes, so the proportional split always sees whole groups --
      // early finishers would otherwise trickle single cores into pending
      // tasks that deserve wide groups.
      if (--assignment.run->remaining == 0) {
        for (int w : assignment.run->workers) free_cores_.push_back(w);
        --active_tasks_;
        ++stats_.tasks_completed;
        completed_counter().add();
        dispatch_locked();
        if (active_tasks_ == 0 && pending_.empty()) {
          idle_cv_.notify_all();
        }
      }
    }
    worker_cv_.notify_all();
  }
}

void DynamicScheduler::wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [&] { return active_tasks_ == 0 && pending_.empty(); });
  }
  // All submitted tasks have completed (their spans closed before the last
  // completion was published under the mutex), so draining is race-free.
  if (obs::enabled()) obs::tracer().drain();
}

DynamicSchedulerStats DynamicScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ptask::rt
