#include "ptask/rt/group_comm.hpp"

#include <algorithm>
#include <stdexcept>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"

namespace ptask::rt {

namespace {
obs::Counter& collective_ops_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.collective_ops");
  return c;
}
obs::Histogram& collective_bytes_histogram() {
  static obs::Histogram& h = obs::metrics().histogram("rt.collective_bytes");
  return h;
}
obs::Counter& barrier_wait_ns_counter() {
  static obs::Counter& c = obs::metrics().counter("rt.barrier_wait_ns");
  return c;
}
}  // namespace

Barrier::Barrier(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("barrier size must be positive");
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool my_sense = sense_;
  if (++waiting_ == size_) {
    waiting_ = 0;
    sense_ = !sense_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return sense_ != my_sense; });
  }
}

GroupComm::GroupComm(int size)
    : barrier_(size),
      stage_in_(static_cast<std::size_t>(size)),
      stage_scalar_(static_cast<std::size_t>(size), 0.0) {}

void GroupComm::barrier(int rank) {
  (void)rank;
  obs::ScopedSpan span(obs::SpanKind::BarrierWait, "barrier");
  if (span.active()) span.count_duration_into(barrier_wait_ns_counter());
  barrier_.arrive_and_wait();
}

void GroupComm::bcast(int rank, int root, std::span<double> data) {
  collective_ops_counter().add();
  const std::uint64_t bytes = data.size() * sizeof(double);
  collective_bytes_histogram().observe(bytes);
  obs::ScopedSpan span(obs::SpanKind::Collective, "bcast");
  span.set_bytes(bytes);
  if (rank == root) root_data_ = data;
  barrier_.arrive_and_wait();  // publish
  if (rank != root) {
    std::copy(root_data_.begin(), root_data_.end(), data.begin());
  }
  barrier_.arrive_and_wait();  // consume before root may reuse the buffer
}

void GroupComm::allgather(int rank, std::span<const double> contribution,
                          std::span<double> out) {
  collective_ops_counter().add();
  const std::uint64_t bytes = out.size() * sizeof(double);
  collective_bytes_histogram().observe(bytes);
  obs::ScopedSpan span(obs::SpanKind::Collective, "allgather");
  span.set_bytes(bytes);
  stage_in_[static_cast<std::size_t>(rank)] = contribution;
  barrier_.arrive_and_wait();  // publish
  std::size_t offset = 0;
  for (int r = 0; r < size(); ++r) {
    const std::span<const double>& part =
        stage_in_[static_cast<std::size_t>(r)];
    if (offset + part.size() > out.size()) {
      throw std::invalid_argument("allgather output too small");
    }
    std::copy(part.begin(), part.end(), out.begin() +
                                            static_cast<std::ptrdiff_t>(offset));
    offset += part.size();
  }
  barrier_.arrive_and_wait();  // consume
}

double GroupComm::allreduce_sum(int rank, double value) {
  collective_ops_counter().add();
  collective_bytes_histogram().observe(sizeof(double));
  obs::ScopedSpan span(obs::SpanKind::Collective, "allreduce_sum");
  span.set_bytes(sizeof(double));
  stage_scalar_[static_cast<std::size_t>(rank)] = value;
  barrier_.arrive_and_wait();
  double sum = 0.0;
  for (double v : stage_scalar_) sum += v;
  barrier_.arrive_and_wait();
  return sum;
}

double GroupComm::allreduce_max(int rank, double value) {
  collective_ops_counter().add();
  collective_bytes_histogram().observe(sizeof(double));
  obs::ScopedSpan span(obs::SpanKind::Collective, "allreduce_max");
  span.set_bytes(sizeof(double));
  stage_scalar_[static_cast<std::size_t>(rank)] = value;
  barrier_.arrive_and_wait();
  double best = stage_scalar_.front();
  for (double v : stage_scalar_) best = std::max(best, v);
  barrier_.arrive_and_wait();
  return best;
}

}  // namespace ptask::rt
