#include "ptask/npb/zones.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ptask::npb {

const char* to_string(MzSolver solver) {
  switch (solver) {
    case MzSolver::SP:
      return "SP-MZ";
    case MzSolver::BT:
      return "BT-MZ";
  }
  return "unknown";
}

std::size_t MultiZoneProblem::total_points() const {
  std::size_t total = 0;
  for (const ZoneGrid& z : zones) total += z.points();
  return total;
}

double MultiZoneProblem::imbalance_ratio() const {
  std::size_t smallest = zones.front().points();
  std::size_t largest = smallest;
  for (const ZoneGrid& z : zones) {
    smallest = std::min(smallest, z.points());
    largest = std::max(largest, z.points());
  }
  return static_cast<double>(largest) / static_cast<double>(smallest);
}

std::string MultiZoneProblem::name() const {
  return std::string(to_string(solver)) + "." + benchmark_class;
}

namespace {

struct ClassSpec {
  int x_zones, y_zones;
  int gx, gy, gz;
};

ClassSpec class_spec(char cls) {
  // NPB-MZ problem classes (numbers from NAS-03-010 / NPB3.x).
  switch (cls) {
    case 'S':
      return {2, 2, 24, 24, 6};
    case 'W':
      return {4, 4, 64, 64, 8};
    case 'A':
      return {4, 4, 128, 128, 16};
    case 'B':
      return {8, 8, 304, 208, 17};
    case 'C':
      return {16, 16, 480, 320, 28};
    case 'D':
      return {32, 32, 1632, 1216, 34};
    default:
      throw std::invalid_argument("unknown benchmark class");
  }
}

/// Splits `total` cells into `parts` equal parts (remainder spread left).
std::vector<int> equal_split(int total, int parts) {
  std::vector<int> widths(static_cast<std::size_t>(parts), total / parts);
  for (int i = 0; i < total % parts; ++i) {
    widths[static_cast<std::size_t>(i)] += 1;
  }
  return widths;
}

/// Splits `total` cells into `parts` widths following a geometric
/// progression with per-direction ratio `ratio`; each width >= 1.
std::vector<int> geometric_split(int total, int parts, double ratio) {
  std::vector<double> raw(static_cast<std::size_t>(parts));
  double sum = 0.0;
  for (int i = 0; i < parts; ++i) {
    raw[static_cast<std::size_t>(i)] = std::pow(ratio, i);
    sum += raw[static_cast<std::size_t>(i)];
  }
  std::vector<int> widths(static_cast<std::size_t>(parts));
  int assigned = 0;
  for (int i = 0; i < parts; ++i) {
    int w = static_cast<int>(std::floor(
        static_cast<double>(total) * raw[static_cast<std::size_t>(i)] / sum));
    w = std::max(w, 1);
    widths[static_cast<std::size_t>(i)] = w;
    assigned += w;
  }
  // Distribute the remainder (positive or negative) across the largest
  // zones so the total matches exactly.
  int i = parts - 1;
  while (assigned != total) {
    int& w = widths[static_cast<std::size_t>(((i % parts) + parts) % parts)];
    if (assigned < total) {
      ++w;
      ++assigned;
    } else if (w > 1) {
      --w;
      --assigned;
    }
    --i;
  }
  return widths;
}

}  // namespace

MultiZoneProblem make_problem(MzSolver solver, char benchmark_class) {
  const ClassSpec spec = class_spec(benchmark_class);
  MultiZoneProblem problem;
  problem.solver = solver;
  problem.benchmark_class = benchmark_class;
  problem.x_zones = spec.x_zones;
  problem.y_zones = spec.y_zones;
  problem.global = ZoneGrid{spec.gx, spec.gy, spec.gz};

  std::vector<int> xw, yw;
  if (solver == MzSolver::SP) {
    xw = equal_split(spec.gx, spec.x_zones);
    yw = equal_split(spec.gy, spec.y_zones);
  } else {
    // BT-MZ: largest/smallest zone ~ 20; the ratio is spread over both
    // directions: r^( (x_zones-1) + (y_zones-1) ) = 20.
    const double exponent =
        static_cast<double>(spec.x_zones - 1 + spec.y_zones - 1);
    const double r = exponent > 0.0 ? std::pow(20.0, 1.0 / exponent) : 1.0;
    xw = geometric_split(spec.gx, spec.x_zones, r);
    yw = geometric_split(spec.gy, spec.y_zones, r);
  }

  problem.zones.reserve(static_cast<std::size_t>(problem.num_zones()));
  for (int iy = 0; iy < spec.y_zones; ++iy) {
    for (int ix = 0; ix < spec.x_zones; ++ix) {
      problem.zones.push_back(ZoneGrid{xw[static_cast<std::size_t>(ix)],
                                       yw[static_cast<std::size_t>(iy)],
                                       spec.gz});
    }
  }
  return problem;
}

}  // namespace ptask::npb
