#include "ptask/npb/stencil.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ptask::npb {

ZoneField::ZoneField(const ZoneGrid& grid) : grid_(grid) {
  if (grid.nx < 1 || grid.ny < 1 || grid.nz < 1) {
    throw std::invalid_argument("zone dimensions must be positive");
  }
  const std::size_t total = static_cast<std::size_t>(grid.nx + 2) *
                            static_cast<std::size_t>(grid.ny + 2) *
                            static_cast<std::size_t>(grid.nz);
  data_.assign(total, 0.0);
  next_.assign(total, 0.0);
}

std::size_t ZoneField::index(int x, int y, int z) const {
  // Ghost layout: x, y in [-1, nx] / [-1, ny]; z in [0, nz).
  return (static_cast<std::size_t>(y + 1) *
              static_cast<std::size_t>(grid_.nx + 2) +
          static_cast<std::size_t>(x + 1)) *
             static_cast<std::size_t>(grid_.nz) +
         static_cast<std::size_t>(z);
}

double& ZoneField::at(int x, int y, int z) { return data_[index(x, y, z)]; }

double ZoneField::at(int x, int y, int z) const {
  return data_[index(x, y, z)];
}

void ZoneField::initialize(int x0, int y0, std::size_t global_nx,
                           std::size_t global_ny) {
  for (int y = 0; y < grid_.ny; ++y) {
    for (int x = 0; x < grid_.nx; ++x) {
      const double gx = static_cast<double>(x0 + x) /
                        static_cast<double>(global_nx);
      const double gy = static_cast<double>(y0 + y) /
                        static_cast<double>(global_ny);
      for (int z = 0; z < grid_.nz; ++z) {
        const double gz =
            static_cast<double>(z) / static_cast<double>(grid_.nz);
        at(x, y, z) =
            0.5 + std::sin(M_PI * gx) * std::cos(M_PI * gy) + 0.1 * gz;
      }
    }
  }
  next_ = data_;
}

double ZoneField::jacobi_sweep(int y_begin, int y_end) {
  y_begin = std::max(y_begin, 0);
  y_end = std::min(y_end, grid_.ny);
  double residual = 0.0;
  for (int y = y_begin; y < y_end; ++y) {
    for (int x = 0; x < grid_.nx; ++x) {
      for (int z = 0; z < grid_.nz; ++z) {
        const double zm = z > 0 ? at(x, y, z - 1) : at(x, y, z);
        const double zp = z + 1 < grid_.nz ? at(x, y, z + 1) : at(x, y, z);
        const double updated = (at(x - 1, y, z) + at(x + 1, y, z) +
                                at(x, y - 1, z) + at(x, y + 1, z) + zm + zp) /
                               6.0;
        next_[index(x, y, z)] = updated;
        residual = std::max(residual, std::fabs(updated - at(x, y, z)));
      }
    }
  }
  return residual;
}

void ZoneField::commit() { data_.swap(next_); }

double ZoneField::interior_max() const {
  double best = 0.0;
  for (int y = 0; y < grid_.ny; ++y) {
    for (int x = 0; x < grid_.nx; ++x) {
      for (int z = 0; z < grid_.nz; ++z) {
        best = std::max(best, std::fabs(at(x, y, z)));
      }
    }
  }
  return best;
}

std::size_t ZoneField::face_size(int face) const {
  const std::size_t nz = static_cast<std::size_t>(grid_.nz);
  if (face == 0 || face == 1) return static_cast<std::size_t>(grid_.ny) * nz;
  if (face == 2 || face == 3) return static_cast<std::size_t>(grid_.nx) * nz;
  throw std::invalid_argument("face must be in [0, 4)");
}

void ZoneField::extract_face(int face, std::span<double> out) const {
  if (out.size() < face_size(face)) {
    throw std::invalid_argument("face buffer too small");
  }
  std::size_t k = 0;
  switch (face) {
    case 0:  // -x interior column
      for (int y = 0; y < grid_.ny; ++y)
        for (int z = 0; z < grid_.nz; ++z) out[k++] = at(0, y, z);
      break;
    case 1:  // +x interior column
      for (int y = 0; y < grid_.ny; ++y)
        for (int z = 0; z < grid_.nz; ++z) out[k++] = at(grid_.nx - 1, y, z);
      break;
    case 2:  // -y interior row
      for (int x = 0; x < grid_.nx; ++x)
        for (int z = 0; z < grid_.nz; ++z) out[k++] = at(x, 0, z);
      break;
    case 3:  // +y interior row
      for (int x = 0; x < grid_.nx; ++x)
        for (int z = 0; z < grid_.nz; ++z) out[k++] = at(x, grid_.ny - 1, z);
      break;
    default:
      throw std::invalid_argument("face must be in [0, 4)");
  }
}

void ZoneField::set_ghost_face(int face, std::span<const double> in) {
  if (in.size() < face_size(face)) {
    throw std::invalid_argument("face buffer too small");
  }
  std::size_t k = 0;
  switch (face) {
    case 0:
      for (int y = 0; y < grid_.ny; ++y)
        for (int z = 0; z < grid_.nz; ++z) at(-1, y, z) = in[k++];
      break;
    case 1:
      for (int y = 0; y < grid_.ny; ++y)
        for (int z = 0; z < grid_.nz; ++z) at(grid_.nx, y, z) = in[k++];
      break;
    case 2:
      for (int x = 0; x < grid_.nx; ++x)
        for (int z = 0; z < grid_.nz; ++z) at(x, -1, z) = in[k++];
      break;
    case 3:
      for (int x = 0; x < grid_.nx; ++x)
        for (int z = 0; z < grid_.nz; ++z) at(x, grid_.ny, z) = in[k++];
      break;
    default:
      throw std::invalid_argument("face must be in [0, 4)");
  }
}

}  // namespace ptask::npb
