#include "ptask/npb/multizone.hpp"

namespace ptask::npb {

double flop_per_point(MzSolver solver) {
  // Approximate per-point per-step operation counts of the NPB solvers:
  // BT performs roughly 3x the work of SP per point and step.
  switch (solver) {
    case MzSolver::SP:
      return 900.0;
    case MzSolver::BT:
      return 2800.0;
  }
  return 0.0;
}

std::size_t border_bytes(const ZoneGrid& zone) {
  // Two ghost faces in x (ny * nz points each) and two in y (nx * nz), five
  // solution variables, double precision.
  const std::size_t face_x = static_cast<std::size_t>(zone.ny) *
                             static_cast<std::size_t>(zone.nz);
  const std::size_t face_y = static_cast<std::size_t>(zone.nx) *
                             static_cast<std::size_t>(zone.nz);
  return 2 * (face_x + face_y) * 5 * sizeof(double);
}

core::TaskGraph step_graph(const MultiZoneProblem& problem) {
  core::TaskGraph graph;
  const double flops = flop_per_point(problem.solver);

  std::vector<core::TaskId> zone_tasks;
  zone_tasks.reserve(problem.zones.size());
  for (std::size_t z = 0; z < problem.zones.size(); ++z) {
    const ZoneGrid& zone = problem.zones[z];
    core::MTask task("zone" + std::to_string(z),
                     flops * static_cast<double>(zone.points()));
    // A zone cannot use more cores than it has grid columns to distribute.
    task.set_max_cores(zone.nx * zone.ny);
    // Zone-internal solver communication (multipartition scheme): the three
    // ADI sweeps move boundary-scale interface data between the ranks of
    // the group, and the line solves synchronize the group repeatedly --
    // the latency term is what makes very wide groups unattractive.
    task.add_comm(core::CollectiveOp{core::CollectiveKind::Exchange,
                                     core::CommScope::Group,
                                     border_bytes(zone), 3});
    task.add_comm(core::CollectiveOp{core::CollectiveKind::Allreduce,
                                     core::CommScope::Group, 64, 12});
    // Border exchange with neighbouring zones in other groups.
    task.add_comm(core::CollectiveOp{core::CollectiveKind::Exchange,
                                     core::CommScope::Orthogonal,
                                     border_bytes(zone), 1});
    zone_tasks.push_back(graph.add_task(std::move(task)));
  }

  // Step-closing synchronization point (gives the step graph a sink so that
  // chained multi-step graphs stay layered).
  core::MTask sync("step_sync", 0.0);
  sync.set_marker(true);
  const core::TaskId sync_id = graph.add_task(std::move(sync));
  for (core::TaskId z : zone_tasks) graph.add_edge(z, sync_id);
  return graph;
}

}  // namespace ptask::npb
