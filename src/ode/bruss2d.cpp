#include "ptask/ode/bruss2d.hpp"

#include <stdexcept>

namespace ptask::ode {

Bruss2D::Bruss2D(std::size_t grid, double a, double b, double alpha)
    : grid_(grid), a_(a), b_(b) {
  if (grid < 2) throw std::invalid_argument("grid must be at least 2x2");
  // alpha / h^2 with h = 1/(N-1).
  const double h = 1.0 / static_cast<double>(grid - 1);
  alpha_scaled_ = alpha / (h * h);
}

double Bruss2D::laplacian(std::span<const double> field, std::size_t row,
                          std::size_t col) const {
  const std::size_t N = grid_;
  const double center = field[row * N + col];
  // Neumann boundary: mirror the neighbour back onto the centre.
  const double up = row > 0 ? field[(row - 1) * N + col] : center;
  const double down = row + 1 < N ? field[(row + 1) * N + col] : center;
  const double left = col > 0 ? field[row * N + col - 1] : center;
  const double right = col + 1 < N ? field[row * N + col + 1] : center;
  return up + down + left + right - 4.0 * center;
}

void Bruss2D::eval(double /*t*/, std::span<const double> y,
                   std::span<double> f, std::size_t begin,
                   std::size_t end) const {
  const std::size_t N = grid_;
  const std::size_t half = N * N;
  const std::span<const double> u = y.subspan(0, half);
  const std::span<const double> v = y.subspan(half, half);
  for (std::size_t i = begin; i < end; ++i) {
    if (i < half) {
      const std::size_t row = i / N;
      const std::size_t col = i % N;
      const double ui = u[i];
      const double vi = v[i];
      f[i] = b_ + ui * ui * vi - (a_ + 1.0) * ui +
             alpha_scaled_ * laplacian(u, row, col);
    } else {
      const std::size_t j = i - half;
      const std::size_t row = j / N;
      const std::size_t col = j % N;
      const double uj = u[j];
      const double vj = v[j];
      f[i] = a_ * uj - uj * uj * vj + alpha_scaled_ * laplacian(v, row, col);
    }
  }
}

std::vector<double> Bruss2D::initial_state() const {
  const std::size_t N = grid_;
  std::vector<double> y(size());
  const double h = 1.0 / static_cast<double>(N - 1);
  for (std::size_t row = 0; row < N; ++row) {
    for (std::size_t col = 0; col < N; ++col) {
      const double x = static_cast<double>(col) * h;
      const double yy = static_cast<double>(row) * h;
      y[row * N + col] = 2.0 + 0.25 * yy;          // u(x, y, 0)
      y[N * N + row * N + col] = 1.0 + 0.8 * x;    // v(x, y, 0)
    }
  }
  return y;
}

}  // namespace ptask::ode
