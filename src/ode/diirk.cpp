#include "ptask/ode/diirk.hpp"

#include <algorithm>
#include <stdexcept>

namespace ptask::ode {

Diirk::Diirk(int stages, int iterations, int inner_iterations)
    : tableau_(gauss_tableau(stages)),
      iterations_(iterations),
      inner_(inner_iterations) {
  if (iterations < 1) throw std::invalid_argument("need >= 1 iteration");
  if (inner_iterations < 1) {
    throw std::invalid_argument("need >= 1 inner iteration");
  }
}

int Diirk::order() const {
  return std::min(2 * tableau_.stages(), iterations_ + 1);
}

void Diirk::step(const OdeSystem& system, double t, double h,
                 std::vector<double>& y) {
  const std::size_t n = system.size();
  const int s = tableau_.stages();

  std::vector<double> f0(n);
  system.eval_all(t, y, f0);
  std::vector<std::vector<double>> k(static_cast<std::size_t>(s), f0);
  std::vector<std::vector<double>> k_next(static_cast<std::size_t>(s),
                                          std::vector<double>(n));
  std::vector<double> base(n), arg(n), cur(n);

  for (int l = 0; l < iterations_; ++l) {
    for (int j = 0; j < s; ++j) {
      const double dj = tableau_.a[static_cast<std::size_t>(j * s + j)];
      // base = y + h * sum_k a_jk K_k^(l-1); the diagonal correction
      // h d_j (K_j - K_j^(l-1)) is added inside the inner sweeps.
      for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (int q = 0; q < s; ++q) {
          acc += h * tableau_.a[static_cast<std::size_t>(j * s + q)] *
                 k[static_cast<std::size_t>(q)][i];
        }
        base[i] = acc;
      }
      // Inner fixed-point sweeps for the diagonal-implicit equation.
      cur = k[static_cast<std::size_t>(j)];
      const double tj = t + tableau_.c[static_cast<std::size_t>(j)] * h;
      for (int inner = 0; inner < inner_; ++inner) {
        for (std::size_t i = 0; i < n; ++i) {
          arg[i] = base[i] +
                   h * dj * (cur[i] - k[static_cast<std::size_t>(j)][i]);
        }
        system.eval_all(tj, arg, cur);
      }
      k_next[static_cast<std::size_t>(j)] = cur;
    }
    std::swap(k, k_next);
  }

  for (std::size_t i = 0; i < n; ++i) {
    double acc = y[i];
    for (int j = 0; j < s; ++j) {
      acc += h * tableau_.b[static_cast<std::size_t>(j)] *
             k[static_cast<std::size_t>(j)][i];
    }
    y[i] = acc;
  }
}

}  // namespace ptask::ode
