#include "ptask/ode/schroed.hpp"

#include <cmath>
#include <stdexcept>

namespace ptask::ode {

Schroed::Schroed(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("system size must be positive");
}

void Schroed::eval(double /*t*/, std::span<const double> y,
                   std::span<double> f, std::size_t begin,
                   std::size_t end) const {
  const double inv_n = 1.0 / static_cast<double>(n_);
  // Precompute sin(y_j) once per call; the coupling weights keep the O(n)
  // inner loop per component.
  std::vector<double> s(n_);
  for (std::size_t j = 0; j < n_; ++j) s[j] = std::sin(y[j]);
  for (std::size_t i = begin; i < end; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      const double dist =
          static_cast<double>(i > j ? i - j : j - i) * inv_n;
      acc += s[j] / (1.0 + dist);
    }
    f[i] = -y[i] + acc * inv_n;
  }
}

std::vector<double> Schroed::initial_state() const {
  std::vector<double> y(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    y[i] = 0.5 + 0.3 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                                static_cast<double>(n_));
  }
  return y;
}

}  // namespace ptask::ode
