#include "ptask/ode/graph_gen.hpp"

#include <stdexcept>

#include "ptask/sched/timeline.hpp"

namespace ptask::ode {

const char* to_string(Method method) {
  switch (method) {
    case Method::EPOL:
      return "EPOL";
    case Method::IRK:
      return "IRK";
    case Method::DIIRK:
      return "DIIRK";
    case Method::PAB:
      return "PAB";
    case Method::PABM:
      return "PABM";
  }
  return "unknown";
}

namespace {

using core::CollectiveKind;
using core::CollectiveOp;
using core::CommScope;
using core::MTask;
using core::Param;
using core::TaskGraph;
using core::TaskId;

constexpr std::size_t kDouble = sizeof(double);

Param replicated_param(const std::string& name, std::size_t bytes, bool input,
                       bool output) {
  return Param{name, bytes, dist::Distribution::replicated(), input, output};
}

TaskGraph epol_step_graph(const SolverGraphSpec& spec) {
  const int r = spec.stages;
  const double nd = static_cast<double>(spec.n);
  const std::size_t vec_bytes = spec.n * kDouble;
  TaskGraph graph;

  // step(i, j): micro step j of approximation i; each micro step evaluates f
  // (needing the full argument vector: one multi-broadcast) and applies an
  // Euler update (2 ops per component).
  std::vector<TaskId> chain_tail(static_cast<std::size_t>(r));
  for (int i = 1; i <= r; ++i) {
    TaskId prev = core::kInvalidTask;
    for (int j = 1; j <= i; ++j) {
      MTask task("step(" + std::to_string(i) + "," + std::to_string(j) + ")",
                 nd * (2.0 + spec.eval_flop_per_component));
      task.set_max_cores(static_cast<int>(spec.n));
      task.add_comm(
          CollectiveOp{CollectiveKind::Allgather, CommScope::Group, vec_bytes, 1});
      // V_i flows through the whole chain; scheduling consecutive micro
      // steps on different core sets therefore costs a re-distribution --
      // the waste the paper's chain contraction avoids.
      const std::string v_name = "V" + std::to_string(i);
      if (j == 1) {
        task.add_param(replicated_param("eta", vec_bytes, true, false));
      } else {
        task.add_param(replicated_param(v_name, vec_bytes, true, false));
      }
      task.add_param(replicated_param(v_name, vec_bytes, false, true));
      const TaskId id = graph.add_task(std::move(task));
      if (prev != core::kInvalidTask) graph.add_edge(prev, id);
      prev = id;
    }
    chain_tail[static_cast<std::size_t>(i - 1)] = prev;
  }

  // combine: Aitken-Neville extrapolation, ~3 ops per entry of the Neville
  // triangle (R(R-1)/2 vector combinations).
  MTask combine("combine",
                nd * 3.0 * static_cast<double>(r) * static_cast<double>(r - 1) /
                    2.0);
  combine.set_max_cores(static_cast<int>(spec.n));
  for (int i = 1; i <= r; ++i) {
    // The combine consumes its per-core block of every approximation vector
    // (the Neville recursion is component-local), so gathering V_i from a
    // producing group costs one block scatter, not a full replication.
    combine.add_param(Param{"V" + std::to_string(i), vec_bytes,
                            dist::Distribution::block(), true, false});
  }
  combine.add_param(replicated_param("eta", vec_bytes, false, true));
  const TaskId combine_id = graph.add_task(std::move(combine));
  for (TaskId tail : chain_tail) graph.add_edge(tail, combine_id);
  return graph;
}

TaskGraph stage_update_graph(const SolverGraphSpec& spec,
                             const MTask& stage_proto, MTask update) {
  TaskGraph graph;
  const std::size_t vec_bytes = spec.n * kDouble;
  std::vector<TaskId> stages;
  for (int k = 1; k <= spec.stages; ++k) {
    MTask stage = stage_proto;
    stage.set_name(std::string(stage_proto.name()) + "_" + std::to_string(k));
    stage.add_param(replicated_param("eta", vec_bytes, true, false));
    stage.add_param(
        replicated_param("K" + std::to_string(k), vec_bytes, false, true));
    stages.push_back(graph.add_task(std::move(stage)));
  }
  // The update's own group allgather (Table 1's final Tag) is what gathers
  // the stage vectors from the groups, so the K_k parameters are not also
  // declared as update inputs -- a param match would double-charge the
  // exchange as a re-distribution.  The graph edges below still carry the
  // input-output relation for scheduling.
  update.add_param(replicated_param("eta", vec_bytes, false, true));
  const TaskId update_id = graph.add_task(std::move(update));
  for (TaskId s : stages) graph.add_edge(s, update_id);
  return graph;
}

TaskGraph irk_step_graph(const SolverGraphSpec& spec) {
  const double nd = static_cast<double>(spec.n);
  const int k = spec.stages;
  const int m = spec.iterations;
  const std::size_t vec_bytes = spec.n * kDouble;

  // Stage task: m fixed-point iterations, each building the stage argument
  // (2K ops/component) and evaluating f, with one group multi-broadcast of
  // the stage vector and one orthogonal exchange per iteration (Table 1).
  MTask stage("irk_stage",
              static_cast<double>(m) *
                  nd * (2.0 * k + spec.eval_flop_per_component));
  stage.set_max_cores(static_cast<int>(spec.n));
  stage.add_comm(
      CollectiveOp{CollectiveKind::Allgather, CommScope::Group, vec_bytes, m});
  stage.add_comm(CollectiveOp{CollectiveKind::Allgather, CommScope::Orthogonal,
                              vec_bytes, m});

  MTask update("irk_update", nd * 2.0 * k);
  update.set_max_cores(static_cast<int>(spec.n));
  update.add_comm(
      CollectiveOp{CollectiveKind::Allgather, CommScope::Group, vec_bytes, 1});
  return stage_update_graph(spec, stage, std::move(update));
}

TaskGraph diirk_step_graph(const SolverGraphSpec& spec) {
  const double nd = static_cast<double>(spec.n);
  const int k = spec.stages;
  const int m = spec.iterations;
  const int inner = spec.inner_iterations;
  const std::size_t vec_bytes = spec.n * kDouble;

  // Stage task: m outer iterations, each with `inner` implicit sweeps; the
  // implicit solve performs (n-1) pivot-row broadcasts per inner solve
  // (banded elimination), the source of DIIRK's (n-1) * I * Tbc term.
  MTask stage("diirk_stage",
              static_cast<double>(m) * static_cast<double>(inner) * nd *
                  (2.0 * k + spec.eval_flop_per_component + 8.0));
  stage.set_max_cores(static_cast<int>(spec.n));
  stage.add_comm(CollectiveOp{CollectiveKind::Bcast, CommScope::Group,
                              spec.bcast_row_bytes,
                              static_cast<int>(spec.n - 1) * inner});
  stage.add_comm(CollectiveOp{CollectiveKind::Allgather, CommScope::Orthogonal,
                              vec_bytes, m});

  MTask update("diirk_update", nd * 2.0 * k);
  update.set_max_cores(static_cast<int>(spec.n));
  update.add_comm(
      CollectiveOp{CollectiveKind::Allgather, CommScope::Group, vec_bytes, 1});
  return stage_update_graph(spec, stage, std::move(update));
}

TaskGraph pab_step_graph(const SolverGraphSpec& spec, bool moulton) {
  const double nd = static_cast<double>(spec.n);
  const int k = spec.stages;
  const int m = moulton ? spec.iterations : 0;
  const std::size_t vec_bytes = spec.n * kDouble;

  TaskGraph graph;
  std::vector<TaskId> stages;
  for (int s = 1; s <= k; ++s) {
    MTask stage((moulton ? std::string("pabm_stage_") : std::string(
                               "pab_stage_")) +
                    std::to_string(s),
                static_cast<double>(1 + m) * nd *
                    (2.0 * k + spec.eval_flop_per_component));
    stage.set_max_cores(static_cast<int>(spec.n));
    stage.add_comm(CollectiveOp{CollectiveKind::Allgather, CommScope::Group,
                                vec_bytes, 1 + m});
    stage.add_comm(CollectiveOp{CollectiveKind::Allgather,
                                CommScope::Orthogonal, vec_bytes, 1});
    // Stage s reads and writes its own slice of the block; the history is
    // group-resident, so no cross-step parameters are modelled.
    stages.push_back(graph.add_task(std::move(stage)));
  }
  // History/update bookkeeping carries no communication (Table 1 lists none
  // for PAB/PABM beyond the stage operations).
  MTask update(moulton ? "pabm_update" : "pab_update", nd * 2.0);
  update.set_max_cores(static_cast<int>(spec.n));
  const TaskId update_id = graph.add_task(std::move(update));
  for (TaskId s : stages) graph.add_edge(s, update_id);
  return graph;
}

}  // namespace

core::TaskGraph SolverGraphSpec::step_graph() const {
  if (n == 0) throw std::invalid_argument("system size must be positive");
  if (stages < 1) throw std::invalid_argument("need >= 1 stage");
  switch (method) {
    case Method::EPOL:
      return epol_step_graph(*this);
    case Method::IRK:
      return irk_step_graph(*this);
    case Method::DIIRK:
      return diirk_step_graph(*this);
    case Method::PAB:
      return pab_step_graph(*this, false);
    case Method::PABM:
      return pab_step_graph(*this, true);
  }
  throw std::logic_error("invalid method");
}

SolverGraphSpec make_spec(Method method, const OdeSystem& system, int stages,
                          int iterations, int inner_iterations) {
  SolverGraphSpec spec;
  spec.method = method;
  spec.n = system.size();
  spec.eval_flop_per_component = system.eval_flop_per_component();
  spec.stages = stages;
  spec.iterations = iterations;
  spec.inner_iterations = inner_iterations;
  return spec;
}

core::HierGraph epol_program_spec(std::size_t n, int r,
                                  double eval_flop_per_component,
                                  double time_steps_hint) {
  const std::size_t vec_bytes = n * sizeof(double);
  const double nd = static_cast<double>(n);
  core::SpecBuilder builder("EPOL");

  const core::Var t = builder.var("t", sizeof(double));
  const core::Var h = builder.var("h", sizeof(double));
  const core::Var eta = builder.var("eta_k", vec_bytes);
  std::vector<core::Var> v;
  for (int i = 1; i <= r; ++i) {
    v.push_back(builder.var("V" + std::to_string(i), vec_bytes));
  }

  core::MTask init("init_step", 10.0);
  builder.call(std::move(init), {}, {t, h});

  builder.while_loop(
      "time_stepping", {t, h, eta},
      [&](core::SpecBuilder& body) {
        body.parfor(r, [&](int i0) {
          const int i = i0 + 1;
          body.for_loop(i, [&](int j0) {
            const int j = j0 + 1;
            core::MTask step(
                "step(" + std::to_string(i) + "," + std::to_string(j) + ")",
                nd * (2.0 + eval_flop_per_component));
            step.set_max_cores(static_cast<int>(n));
            step.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                             core::CommScope::Group, vec_bytes,
                                             1});
            // First micro step reads eta; every micro step updates V_i.
            std::vector<core::Var> uses{t, h, v[static_cast<std::size_t>(i0)]};
            if (j == 1) uses.push_back(eta);
            body.call(std::move(step), uses,
                      {v[static_cast<std::size_t>(i0)]});
          });
        });
        core::MTask combine("combine", nd * 3.0 * r * (r - 1) / 2.0);
        combine.set_max_cores(static_cast<int>(n));
        std::vector<core::Var> uses{t, h};
        uses.insert(uses.end(), v.begin(), v.end());
        body.call(std::move(combine), uses, {t, h, eta});
      },
      time_steps_hint);

  return builder.build();
}

CommCounts count_comms(const sched::LayeredSchedule& schedule) {
  CommCounts counts;
  const core::TaskGraph& graph = schedule.contraction.contracted;
  for (const sched::ScheduledLayer& layer : schedule.layers) {
    const int g = layer.num_groups();
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      // Multi-group layers: count the operations of group 0 only (the paper
      // lists the operations of one of the disjoint groups).
      if (g > 1 && layer.task_group[i] != 0) continue;
      for (const core::CollectiveOp& op : graph.task(layer.tasks[i]).comms()) {
        const bool allgather = op.kind == core::CollectiveKind::Allgather;
        switch (op.scope) {
          case core::CommScope::Global:
            (allgather ? counts.global_allgather : counts.global_bcast) +=
                op.repeat;
            break;
          case core::CommScope::Group:
            if (g == 1) {
              (allgather ? counts.global_allgather : counts.global_bcast) +=
                  op.repeat;
            } else {
              (allgather ? counts.group_allgather : counts.group_bcast) +=
                  op.repeat;
            }
            break;
          case core::CommScope::Orthogonal:
            if (g > 1 && allgather) counts.orth_allgather += op.repeat;
            break;
        }
      }
    }
  }
  // One global broadcast per step when cross-layer re-distribution moves
  // data between different groups (EPOL's combine collecting the V_i).  If
  // the consumer performs a collective of its own, the re-distribution is
  // folded into it (the paper's IRK/DIIRK update gathers the stage vectors
  // with its final global allgather), so nothing extra is counted then.
  for (const sched::RedistributionEdge& edge :
       sched::redistribution_edges(schedule)) {
    const sched::ScheduledLayer& src = schedule.layers[edge.producer_layer];
    const sched::ScheduledLayer& dst = schedule.layers[edge.consumer_layer];
    const bool same_group_structure =
        src.group_sizes == dst.group_sizes &&
        edge.producer_group == edge.consumer_group;
    const bool consumer_has_collective =
        !graph.task(edge.consumer).comms().empty();
    if (!same_group_structure && !consumer_has_collective) {
      counts.global_bcast = std::max(counts.global_bcast, 1);
    }
  }
  return counts;
}

}  // namespace ptask::ode
