#include "ptask/ode/epol.hpp"

#include <stdexcept>

namespace ptask::ode {

Epol::Epol(int r) : r_(r) {
  if (r < 1) throw std::invalid_argument("need at least one approximation");
}

void Epol::micro_steps(const OdeSystem& system, double t, double h, int i,
                       std::span<const double> y, std::vector<double>& out) {
  const std::size_t n = system.size();
  out.assign(y.begin(), y.end());
  std::vector<double> f(n);
  const double micro_h = h / static_cast<double>(i);
  double tau = t;
  for (int j = 0; j < i; ++j) {
    system.eval_all(tau, out, f);
    for (std::size_t k = 0; k < n; ++k) out[k] += micro_h * f[k];
    tau += micro_h;
  }
}

std::vector<double> Epol::combine(
    std::vector<std::vector<double>> approximations) {
  const int r = static_cast<int>(approximations.size());
  if (r == 0) throw std::invalid_argument("no approximations to combine");
  const std::size_t n = approximations.front().size();
  // Aitken-Neville: T[i][j] built in place over T[i] = approximations[i]
  // (0-based; step numbers n_i = i + 1):
  //   T_{i,j} = T_{i,j-1} + (T_{i,j-1} - T_{i-1,j-1}) / (n_i/n_{i-j} - 1).
  for (int j = 1; j < r; ++j) {
    for (int i = r - 1; i >= j; --i) {
      const double ratio = static_cast<double>(i + 1) /
                           static_cast<double>(i + 1 - j);
      const double denom = ratio - 1.0;
      std::vector<double>& ti = approximations[static_cast<std::size_t>(i)];
      const std::vector<double>& tim1 =
          approximations[static_cast<std::size_t>(i - 1)];
      for (std::size_t k = 0; k < n; ++k) {
        ti[k] += (ti[k] - tim1[k]) / denom;
      }
    }
  }
  return std::move(approximations.back());
}

void Epol::step(const OdeSystem& system, double t, double h,
                std::vector<double>& y) {
  std::vector<std::vector<double>> approx(static_cast<std::size_t>(r_));
  for (int i = 1; i <= r_; ++i) {
    micro_steps(system, t, h, i, y, approx[static_cast<std::size_t>(i - 1)]);
  }
  y = combine(std::move(approx));
}

}  // namespace ptask::ode
