#include "ptask/ode/irk.hpp"

#include <algorithm>
#include <stdexcept>

namespace ptask::ode {

Irk::Irk(int stages, int iterations)
    : tableau_(gauss_tableau(stages)), iterations_(iterations) {
  if (iterations < 1) throw std::invalid_argument("need >= 1 iteration");
}

int Irk::order() const {
  return std::min(2 * tableau_.stages(), iterations_ + 1);
}

void Irk::step(const OdeSystem& system, double t, double h,
               std::vector<double>& y) {
  const std::size_t n = system.size();
  const int s = tableau_.stages();

  // K^(0)_j = f(t, y) for all stages.
  std::vector<double> f0(n);
  system.eval_all(t, y, f0);
  std::vector<std::vector<double>> k(static_cast<std::size_t>(s), f0);
  std::vector<std::vector<double>> k_next(static_cast<std::size_t>(s),
                                          std::vector<double>(n));
  std::vector<double> arg(n);

  for (int l = 0; l < iterations_; ++l) {
    for (int j = 0; j < s; ++j) {
      // Y_j = y + h * sum_k a_jk K_k^(l-1)  -- independent across j.
      for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (int q = 0; q < s; ++q) {
          acc += h * tableau_.a[static_cast<std::size_t>(j * s + q)] *
                 k[static_cast<std::size_t>(q)][i];
        }
        arg[i] = acc;
      }
      system.eval_all(t + tableau_.c[static_cast<std::size_t>(j)] * h, arg,
                      k_next[static_cast<std::size_t>(j)]);
    }
    std::swap(k, k_next);
  }

  for (std::size_t i = 0; i < n; ++i) {
    double acc = y[i];
    for (int j = 0; j < s; ++j) {
      acc += h * tableau_.b[static_cast<std::size_t>(j)] *
             k[static_cast<std::size_t>(j)][i];
    }
    y[i] = acc;
  }
}

}  // namespace ptask::ode
