#include "ptask/ode/pab.hpp"

#include <cmath>
#include <stdexcept>

namespace ptask::ode {

void rk4_step(const OdeSystem& system, double t, double h,
              std::vector<double>& y) {
  const std::size_t n = system.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), arg(n);
  system.eval_all(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) arg[i] = y[i] + 0.5 * h * k1[i];
  system.eval_all(t + 0.5 * h, arg, k2);
  for (std::size_t i = 0; i < n; ++i) arg[i] = y[i] + 0.5 * h * k2[i];
  system.eval_all(t + 0.5 * h, arg, k3);
  for (std::size_t i = 0; i < n; ++i) arg[i] = y[i] + h * k3[i];
  system.eval_all(t + h, arg, k4);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

namespace {

/// Integration coefficients: row k holds the weights w_kj such that
/// integral_0^{target_k} p(x) dx = sum_j w_kj p(node_j) for every polynomial
/// p of degree < nodes.size().
std::vector<double> integration_weights(const std::vector<double>& nodes,
                                        const std::vector<double>& targets) {
  const std::size_t s = nodes.size();
  std::vector<double> vand(s * s);
  for (std::size_t q = 0; q < s; ++q) {
    for (std::size_t j = 0; j < s; ++j) {
      vand[q * s + j] = std::pow(nodes[j], static_cast<double>(q));
    }
  }
  std::vector<double> weights(targets.size() * s);
  std::vector<double> rhs(s);
  for (std::size_t k = 0; k < targets.size(); ++k) {
    for (std::size_t q = 0; q < s; ++q) {
      rhs[q] = std::pow(targets[k], static_cast<double>(q + 1)) /
               static_cast<double>(q + 1);
    }
    const std::vector<double> row = solve_dense(vand, rhs);
    for (std::size_t j = 0; j < s; ++j) weights[k * s + j] = row[j];
  }
  return weights;
}

}  // namespace

BlockAdamsBase::BlockAdamsBase(int block_size) : k_(block_size) {
  if (block_size < 1) throw std::invalid_argument("block size must be >= 1");
  // Predictor: history nodes theta_j = (j + 1 - K)/K (theta_{K-1} = 0 = t_n),
  // integration targets c_k = (k + 1)/K for k = 0..K-1.
  std::vector<double> nodes(static_cast<std::size_t>(k_));
  std::vector<double> targets(static_cast<std::size_t>(k_));
  for (int j = 0; j < k_; ++j) {
    nodes[static_cast<std::size_t>(j)] =
        static_cast<double>(j + 1 - k_) / static_cast<double>(k_);
    targets[static_cast<std::size_t>(j)] =
        static_cast<double>(j + 1) / static_cast<double>(k_);
  }
  beta_ = integration_weights(nodes, targets);
}

void BlockAdamsBase::bootstrap(const OdeSystem& system, double t, double h,
                               std::vector<double>& y) {
  // Advance through the K sub-points with finely micro-stepped RK4 and
  // record f at each sub-point as the history of the next macro step.
  const std::size_t n = system.size();
  const int micro = 16;  // RK4 error ~ (h/(16K))^4: negligible
  history_.assign(static_cast<std::size_t>(k_), std::vector<double>(n));
  const double sub_h = h / static_cast<double>(k_);
  for (int k = 0; k < k_; ++k) {
    for (int m = 0; m < micro; ++m) {
      rk4_step(system, t + k * sub_h + m * sub_h / micro, sub_h / micro, y);
    }
    system.eval_all(t + (k + 1) * sub_h, y, history_[static_cast<std::size_t>(k)]);
  }
}

Pab::Pab(int block_size) : BlockAdamsBase(block_size) {}

void Pab::step(const OdeSystem& system, double t, double h,
               std::vector<double>& y) {
  if (!has_history()) {
    bootstrap(system, t, h, y);
    return;
  }
  const std::size_t n = system.size();
  const std::size_t K = static_cast<std::size_t>(k_);

  // K independent predictions (the parallel stage values).
  std::vector<std::vector<double>> stage(K, std::vector<double>(n));
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = y[i];
      for (std::size_t j = 0; j < K; ++j) {
        acc += h * beta_[k * K + j] * history_[j][i];
      }
      stage[k][i] = acc;
    }
  }
  // New history: f at the new sub-points.
  const double sub_h = h / static_cast<double>(k_);
  for (std::size_t k = 0; k < K; ++k) {
    system.eval_all(t + static_cast<double>(k + 1) * sub_h, stage[k],
                    history_[k]);
  }
  y = std::move(stage.back());
}

Pabm::Pabm(int block_size, int corrector_iterations)
    : BlockAdamsBase(block_size), m_(corrector_iterations) {
  if (m_ < 1) throw std::invalid_argument("need >= 1 corrector iteration");
  // Corrector: nodes {0, c_1, ..., c_K} (t_n plus the new block sub-points),
  // targets c_k.
  const std::size_t K = static_cast<std::size_t>(k_);
  std::vector<double> nodes(K + 1);
  std::vector<double> targets(K);
  nodes[0] = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    const double c = static_cast<double>(k + 1) / static_cast<double>(k_);
    nodes[k + 1] = c;
    targets[k] = c;
  }
  gamma_ = integration_weights(nodes, targets);
}

void Pabm::step(const OdeSystem& system, double t, double h,
                std::vector<double>& y) {
  if (!has_history()) {
    bootstrap(system, t, h, y);
    return;
  }
  const std::size_t n = system.size();
  const std::size_t K = static_cast<std::size_t>(k_);
  const double sub_h = h / static_cast<double>(k_);

  // Predictor (PAB).
  std::vector<std::vector<double>> stage(K, std::vector<double>(n));
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = y[i];
      for (std::size_t j = 0; j < K; ++j) {
        acc += h * beta_[k * K + j] * history_[j][i];
      }
      stage[k][i] = acc;
    }
  }

  // f(t_n, y_n) is history_[K-1] (the last sub-point of the previous block).
  const std::vector<double>& f_n = history_[K - 1];

  // m corrector iterations; within one iteration the K corrections are
  // independent (each uses the previous iterate's f values).
  std::vector<std::vector<double>> f_stage(K, std::vector<double>(n));
  for (int l = 0; l < m_; ++l) {
    for (std::size_t k = 0; k < K; ++k) {
      system.eval_all(t + static_cast<double>(k + 1) * sub_h, stage[k],
                      f_stage[k]);
    }
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i] + h * gamma_[k * (K + 1)] * f_n[i];
        for (std::size_t j = 0; j < K; ++j) {
          acc += h * gamma_[k * (K + 1) + j + 1] * f_stage[j][i];
        }
        stage[k][i] = acc;
      }
    }
  }

  for (std::size_t k = 0; k < K; ++k) {
    system.eval_all(t + static_cast<double>(k + 1) * sub_h, stage[k],
                    history_[k]);
  }
  y = std::move(stage.back());
}

}  // namespace ptask::ode
