#include "ptask/ode/solver_base.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ptask::ode {

IntegrationResult OneStepSolver::integrate(const OdeSystem& system, double t0,
                                           double te, double h,
                                           std::vector<double> y0) {
  if (h <= 0.0) throw std::invalid_argument("step size must be positive");
  if (te < t0) throw std::invalid_argument("te must not precede t0");
  if (y0.size() != system.size()) {
    throw std::invalid_argument("initial state size mismatch");
  }
  reset();
  IntegrationResult result;
  result.state = std::move(y0);
  double t = t0;
  while (t < te - 1e-14 * std::max(1.0, std::fabs(te))) {
    const double step_size = std::min(h, te - t);
    step(system, t, step_size, result.state);
    t += step_size;
    ++result.steps;
  }
  result.t_end = t;
  return result;
}

std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw std::invalid_argument("matrix shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-300) {
      throw std::runtime_error("singular coefficient system");
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) {
      acc -= a[row * n + k] * x[k];
    }
    x[row] = acc / a[row * n + row];
  }
  return x;
}

CollocationTableau gauss_tableau(int stages) {
  if (stages < 1 || stages > 16) {
    throw std::invalid_argument("stage count out of range");
  }
  const int s = stages;
  CollocationTableau tab;
  tab.c.resize(static_cast<std::size_t>(s));

  // Roots of the Legendre polynomial P_s on [-1, 1] via Newton iteration
  // from Chebyshev-like initial guesses, then shifted to [0, 1].
  for (int i = 0; i < s; ++i) {
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(s) + 0.5));
    for (int it = 0; it < 100; ++it) {
      // Evaluate P_s and P_s' by the three-term recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= s; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      const double dp = s * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    tab.c[static_cast<std::size_t>(s - 1 - i)] = 0.5 * (x + 1.0);
  }
  std::sort(tab.c.begin(), tab.c.end());

  // Weights b and matrix a from the order conditions B(s) and C(s):
  //   sum_j b_j c_j^{q-1}    = 1/q          (q = 1..s)
  //   sum_j a_ij c_j^{q-1}   = c_i^q / q    (q = 1..s)
  std::vector<double> vand(static_cast<std::size_t>(s * s));
  for (int q = 1; q <= s; ++q) {
    for (int j = 0; j < s; ++j) {
      vand[static_cast<std::size_t>((q - 1) * s + j)] =
          std::pow(tab.c[static_cast<std::size_t>(j)], q - 1);
    }
  }
  std::vector<double> rhs(static_cast<std::size_t>(s));
  for (int q = 1; q <= s; ++q) {
    rhs[static_cast<std::size_t>(q - 1)] = 1.0 / q;
  }
  tab.b = solve_dense(vand, rhs);

  tab.a.resize(static_cast<std::size_t>(s * s));
  for (int i = 0; i < s; ++i) {
    for (int q = 1; q <= s; ++q) {
      rhs[static_cast<std::size_t>(q - 1)] =
          std::pow(tab.c[static_cast<std::size_t>(i)], q) / q;
    }
    const std::vector<double> row = solve_dense(vand, rhs);
    for (int j = 0; j < s; ++j) {
      tab.a[static_cast<std::size_t>(i * s + j)] =
          row[static_cast<std::size_t>(j)];
    }
  }
  return tab;
}

double estimate_order(OneStepSolver& solver, const OdeSystem& system,
                      double t0, double te, double h) {
  const std::vector<double> y0 = system.initial_state();
  const IntegrationResult ref =
      solver.integrate(system, t0, te, h / 8.0, y0);
  const IntegrationResult coarse = solver.integrate(system, t0, te, h, y0);
  const IntegrationResult fine =
      solver.integrate(system, t0, te, h / 2.0, y0);
  const double err_coarse = max_norm_diff(coarse.state, ref.state);
  const double err_fine = max_norm_diff(fine.state, ref.state);
  if (err_fine <= 0.0) return std::numeric_limits<double>::infinity();
  return std::log2(err_coarse / err_fine);
}

}  // namespace ptask::ode
