#include "ptask/ode/spmd_solvers.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ptask/ode/epol.hpp"

namespace ptask::ode {

// ---------------------------------------------------------------------------
// EPOL
// ---------------------------------------------------------------------------

SpmdEpolStep::SpmdEpolStep(const OdeSystem& system, int r, double t, double h,
                           std::vector<double> y0)
    : system_(&system),
      r_(r),
      t_(t),
      h_(h),
      y_(std::move(y0)),
      approx_(static_cast<std::size_t>(r)) {
  if (y_.size() != system.size()) {
    throw std::invalid_argument("initial state size mismatch");
  }
}

core::TaskGraph SpmdEpolStep::build_graph() const {
  return make_spec(Method::EPOL, *system_, r_).step_graph();
}

void SpmdEpolStep::micro_step(rt::ExecContext& ctx, int i, int j) {
  const std::size_t n = system_->size();
  std::vector<double>& v = approx_[static_cast<std::size_t>(i - 1)];
  if (j == 1 && ctx.group_rank == 0) v = y_;
  ctx.comm->barrier(ctx.group_rank);

  const std::size_t q = static_cast<std::size_t>(ctx.group_size);
  const std::size_t rank = static_cast<std::size_t>(ctx.group_rank);
  const std::size_t chunk = (n + q - 1) / q;
  const std::size_t begin = std::min(rank * chunk, n);
  const std::size_t end = std::min(begin + chunk, n);

  const double micro_h = h_ / static_cast<double>(i);
  const double tau = t_ + static_cast<double>(j - 1) * micro_h;
  std::vector<double> f(n);
  system_->eval(tau, v, f, begin, end);
  // All ranks must finish reading v (the stencil touches neighbouring
  // blocks) before anyone updates it; the closing barrier publishes the
  // updated blocks -- the shared-memory form of the multi-broadcast.
  ctx.comm->barrier(ctx.group_rank);
  for (std::size_t k = begin; k < end; ++k) v[k] += micro_h * f[k];
  ctx.comm->barrier(ctx.group_rank);
}

std::vector<rt::TaskFn> SpmdEpolStep::build_functions(
    const core::TaskGraph& graph) {
  std::vector<rt::TaskFn> fns(static_cast<std::size_t>(graph.num_tasks()));
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    const std::string& name = graph.task(id).name();
    if (name.rfind("step(", 0) == 0) {
      const int i = std::stoi(name.substr(5));
      const int j = std::stoi(name.substr(name.find(',') + 1));
      fns[static_cast<std::size_t>(id)] = [this, i, j](rt::ExecContext& ctx) {
        micro_step(ctx, i, j);
      };
    } else if (name == "combine") {
      fns[static_cast<std::size_t>(id)] = [this](rt::ExecContext& ctx) {
        if (ctx.group_rank == 0) {
          result_ = Epol::combine(std::move(approx_));
        }
        ctx.comm->barrier(ctx.group_rank);
      };
    }
  }
  return fns;
}

// ---------------------------------------------------------------------------
// IRK
// ---------------------------------------------------------------------------

SpmdIrkStep::SpmdIrkStep(const OdeSystem& system, int stages, int iterations,
                         double t, double h, std::vector<double> y0)
    : system_(&system),
      tableau_(gauss_tableau(stages)),
      m_(iterations),
      t_(t),
      h_(h),
      y_(std::move(y0)) {
  if (y_.size() != system.size()) {
    throw std::invalid_argument("initial state size mismatch");
  }
  if (iterations < 1) throw std::invalid_argument("need >= 1 iteration");
  for (int parity = 0; parity < 2; ++parity) {
    k_[parity].assign(static_cast<std::size_t>(stages),
                      std::vector<double>(system.size(), 0.0));
  }
}

core::TaskGraph SpmdIrkStep::build_graph() const {
  return make_spec(Method::IRK, *system_, tableau_.stages(), m_).step_graph();
}

SpmdIrkStep::Block SpmdIrkStep::block_of(const rt::ExecContext& ctx) const {
  const std::size_t n = system_->size();
  const std::size_t q = static_cast<std::size_t>(ctx.group_size);
  const std::size_t rank = static_cast<std::size_t>(ctx.group_rank);
  const std::size_t chunk = (n + q - 1) / q;
  Block b;
  b.begin = std::min(rank * chunk, n);
  b.end = std::min(b.begin + chunk, n);
  return b;
}

void SpmdIrkStep::cross_group_sync(rt::ExecContext& ctx) {
  // Group members first meet, the per-position orthogonal communicators
  // then synchronize the groups, and a final group barrier releases the
  // members whose position has no orthogonal communicator.
  ctx.comm->barrier(ctx.group_rank);
  if (ctx.orth != nullptr) ctx.orth->barrier(ctx.group_index);
  ctx.comm->barrier(ctx.group_rank);
}

void SpmdIrkStep::stage_body(rt::ExecContext& ctx, int stage) {
  const int s = tableau_.stages();
  if (ctx.num_groups != s) {
    throw std::logic_error(
        "the SPMD IRK step requires the task-parallel schedule with one "
        "stage group per stage (fixed_groups == K)");
  }
  const std::size_t n = system_->size();
  const Block b = block_of(ctx);
  const std::size_t k = static_cast<std::size_t>(stage);

  // K^(0)_stage = f(t, y) -- block-local into the parity-0 buffer.
  system_->eval(t_, y_, k_[0][k], b.begin, b.end);
  cross_group_sync(ctx);  // all stages' K^(0) visible everywhere

  std::vector<double> arg(n);
  for (int l = 1; l <= m_; ++l) {
    const std::vector<std::vector<double>>& prev = k_[(l - 1) % 2];
    std::vector<std::vector<double>>& cur = k_[l % 2];
    // Y_stage = y + h * sum_q a_{stage,q} K_q^(l-1), block-local; the
    // cross-stage reads are the orthogonal exchange of Table 1.
    for (std::size_t i = b.begin; i < b.end; ++i) {
      double acc = y_[i];
      for (int q = 0; q < s; ++q) {
        acc += h_ * tableau_.a[static_cast<std::size_t>(stage * s + q)] *
               prev[static_cast<std::size_t>(q)][i];
      }
      arg[i] = acc;
    }
    // Group-internal multi-broadcast: every member needs the full argument
    // vector to evaluate its block of f.
    ctx.comm->allgather(
        ctx.group_rank,
        std::span<const double>(arg).subspan(b.begin, b.end - b.begin), arg);
    system_->eval(t_ + tableau_.c[k] * h_, arg, cur[k], b.begin, b.end);
    cross_group_sync(ctx);  // iteration lockstep across the stage groups
  }
}

void SpmdIrkStep::update_body(rt::ExecContext& ctx) {
  const int s = tableau_.stages();
  const Block b = block_of(ctx);
  if (ctx.group_rank == 0) result_.assign(system_->size(), 0.0);
  ctx.comm->barrier(ctx.group_rank);
  const std::vector<std::vector<double>>& k_final = k_[m_ % 2];
  for (std::size_t i = b.begin; i < b.end; ++i) {
    double acc = y_[i];
    for (int q = 0; q < s; ++q) {
      acc += h_ * tableau_.b[static_cast<std::size_t>(q)] *
             k_final[static_cast<std::size_t>(q)][i];
    }
    result_[i] = acc;
  }
  ctx.comm->barrier(ctx.group_rank);  // the final (global) allgather
}

std::vector<rt::TaskFn> SpmdIrkStep::build_functions(
    const core::TaskGraph& graph) {
  std::vector<rt::TaskFn> fns(static_cast<std::size_t>(graph.num_tasks()));
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    const std::string& name = graph.task(id).name();
    if (name.rfind("irk_stage_", 0) == 0) {
      const int stage = std::stoi(name.substr(10)) - 1;
      fns[static_cast<std::size_t>(id)] = [this, stage](rt::ExecContext& ctx) {
        stage_body(ctx, stage);
      };
    } else if (name == "irk_update") {
      fns[static_cast<std::size_t>(id)] = [this](rt::ExecContext& ctx) {
        update_body(ctx);
      };
    }
  }
  return fns;
}

}  // namespace ptask::ode
