#include "ptask/ode/ode_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ptask::ode {

double max_norm_diff(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("size mismatch");
  }
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

}  // namespace ptask::ode
