#include "ptask/ode/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ptask::ode {

double error_norm(std::span<const double> error, std::span<const double> y,
                  double abs_tol, double rel_tol) {
  if (error.size() != y.size()) throw std::invalid_argument("size mismatch");
  if (error.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < error.size(); ++i) {
    const double scale = abs_tol + rel_tol * std::fabs(y[i]);
    const double e = error[i] / scale;
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(error.size()));
}

AdaptiveResult integrate_adaptive(OneStepSolver& solver,
                                  const OdeSystem& system, double t0,
                                  double te, double h0,
                                  std::vector<double> y0,
                                  const AdaptiveOptions& options) {
  if (h0 <= 0.0) throw std::invalid_argument("step size must be positive");
  if (te < t0) throw std::invalid_argument("te must not precede t0");
  if (y0.size() != system.size()) {
    throw std::invalid_argument("initial state size mismatch");
  }

  const int p = solver.order();
  const double err_exponent = -1.0 / (p + 1);
  const double doubling_scale = std::pow(2.0, p) - 1.0;

  AdaptiveResult result;
  result.state = std::move(y0);
  result.min_h_used = options.h_max;
  result.max_h_used = 0.0;

  double t = t0;
  double h = std::clamp(h0, options.h_min, options.h_max);
  std::vector<double> big, half, error(system.size());

  while (t < te - 1e-14 * std::max(1.0, std::fabs(te))) {
    if (result.accepted + result.rejected >= options.max_steps) {
      throw std::runtime_error("adaptive integration exceeded max_steps");
    }
    const double step = std::min(h, te - t);

    // One full step ...
    big = result.state;
    solver.reset();
    solver.step(system, t, step, big);
    // ... against two half steps.
    half = result.state;
    solver.reset();
    solver.step(system, t, step / 2.0, half);
    solver.step(system, t + step / 2.0, step / 2.0, half);

    for (std::size_t i = 0; i < error.size(); ++i) {
      error[i] = (half[i] - big[i]) / doubling_scale;
    }
    const double norm =
        error_norm(error, result.state, options.abs_tol, options.rel_tol);

    if (norm <= 1.0) {  // accept
      if (options.local_extrapolation) {
        for (std::size_t i = 0; i < half.size(); ++i) half[i] += error[i];
      }
      result.state = half;
      t += step;
      ++result.accepted;
      result.min_h_used = std::min(result.min_h_used, step);
      result.max_h_used = std::max(result.max_h_used, step);
    } else {
      ++result.rejected;
    }

    // Order-aware step update (both after acceptance and rejection).
    double factor = options.safety *
                    std::pow(std::max(norm, 1e-16), err_exponent);
    factor = std::clamp(factor, options.min_factor, options.max_factor);
    h = std::clamp(h * factor, options.h_min, options.h_max);
    if (norm > 1.0 && h <= options.h_min * (1.0 + 1e-12)) {
      throw std::runtime_error(
          "adaptive integration cannot meet the tolerance at h_min");
    }
  }
  result.t_end = t;
  result.final_h = h;
  return result;
}

}  // namespace ptask::ode
