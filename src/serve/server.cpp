#include "ptask/serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "ptask/analysis/certifier.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/obs/export.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/prometheus.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/sched/batch.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/serve/protocol.hpp"

namespace ptask::serve {

namespace {

/// serve.error.<code> counter (codes are a small fixed set, so the name
/// lookup per error is fine -- errors are off the hot path).
void count_error(std::string_view code) {
  obs::metrics().counter("serve.error." + std::string(code)).add();
}

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

void append_us_field(std::string& out, double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  out += buf;
}

/// Inclusive upper bound of log-histogram bucket i (see obs::Histogram).
std::string bucket_upper_bound(int i) {
  if (i == 0) return "0";
  if (i >= 64) return std::to_string(~std::uint64_t{0});
  return std::to_string((std::uint64_t{1} << i) - 1);
}

void append_histogram_json(std::string& out, const obs::HistogramSample& h) {
  out += "{\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + std::to_string(h.sum);
  out += ",\"p50\":";
  append_json_double(out, h.p50);
  out += ",\"p90\":";
  append_json_double(out, h.p90);
  out += ",\"p99\":";
  append_json_double(out, h.p99);
  out += ",\"buckets\":[";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i != 0) out += ',';
    out += '[' + bucket_upper_bound(h.buckets[i].first) + ',' +
           std::to_string(h.buckets[i].second) + ']';
  }
  out += "]}";
}

}  // namespace

/// Per-request trace record threaded through the worker pipeline: request
/// id, cache outcome, phase timings (microseconds; a negative value means
/// the phase never ran), and the error code.  This is what the slow-request
/// log serializes.
struct Server::RequestTrace {
  std::string request_id;
  std::string kind = "schedule";  ///< schedule|stats|ping|metrics|trace
  std::string scheduler;
  std::string family;
  std::string error_code;  ///< "" on success
  bool cache_used = false;
  bool cache_hit = false;
  int batch_size = 0;  ///< coalesced group size; 0 = not a schedule request
  double recv_us = -1.0;
  double queue_us = -1.0;
  double parse_us = -1.0;
  double cache_us = -1.0;
  double schedule_us = -1.0;
  double certify_us = -1.0;
  double serialize_us = -1.0;
  double send_us = -1.0;
  double total_us = 0.0;
};

/// One open incremental-scheduling session.  The cost model lives here
/// because the scheduler's pipeline keeps a pointer to it for the whole
/// session lifetime.  `mutex` serializes submit/extend/stat reads on this
/// session; the map in Server only hands out the shared_ptr.
struct Server::SessionState {
  explicit SessionState(const arch::MachineSpec& machine)
      : cost(arch::Machine(machine)), scheduler(cost) {}

  std::mutex mutex;
  cost::CostModel cost;
  sched::IncrementalScheduler scheduler;
};

namespace {

/// RAII phase scope: times one request phase into its serve.phase.*
/// histogram (and the RequestTrace field) and, when tracing is enabled,
/// wraps it in a Serve span.  Phase metrics use the steady clock directly,
/// so they survive PTASK_OBS=OFF builds where span instrumentation
/// compiles out.
class ServePhase {
 public:
  ServePhase(const std::string& span_name, obs::Histogram& hist,
             double& out_us)
      : hist_(hist), out_us_(&out_us) {
    if (obs::enabled()) span_.emplace(obs::SpanKind::Serve, span_name);
    t0_ = Clock::now();
  }
  ~ServePhase() { finish(); }
  ServePhase(const ServePhase&) = delete;
  ServePhase& operator=(const ServePhase&) = delete;

  void finish() {
    if (done_) return;
    done_ = true;
    const double us = elapsed_us(t0_);
    *out_us_ = us;
    hist_.observe(us > 0.0 ? static_cast<std::uint64_t>(us) : 0);
    span_.reset();
  }

 private:
  std::optional<obs::ScopedSpan> span_;
  obs::Histogram& hist_;
  double* out_us_;
  Clock::time_point t0_{};
  bool done_ = false;
};

}  // namespace

/// One admitted request traveling from the reactor to a worker.
struct Server::RequestJob {
  std::uint64_t conn_id = 0;
  std::string payload;
  Reactor::Clock::time_point t_request{};  ///< frame arrival (recv start)
  double span_begin_s = 0.0;               ///< tracer clock at frame arrival
  double recv_us = -1.0;
  Reactor::Clock::time_point t_enqueue{};  ///< admission time
};

/// A job after parse/dispatch, carrying either a final response or a
/// schedule request awaiting (possibly batched) execution.
struct Server::ParsedJob {
  RequestJob job;
  RequestTrace trace;
  bool tracing = false;
  Clock::time_point t0{};  ///< latency clock (starts at parse)
  std::string response;
  bool done = false;
  std::optional<ScheduleRequest> request;
  std::string compat;  ///< batching compatibility key
};

/// Bounded admission queue between the reactor and the worker pool.
struct Server::RequestQueue {
  enum class Push { Ok, Full, Closed };

  explicit RequestQueue(std::size_t max) : max_entries(max) {}

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<RequestJob> jobs;
  std::size_t max_entries = 0;  ///< 0 = unbounded
  bool closed = false;
  std::atomic<std::size_t> depth{0};
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> rejected{0};

  Push push(RequestJob&& job) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (closed) return Push::Closed;
      if (max_entries > 0 && jobs.size() >= max_entries) {
        rejected.fetch_add(1, std::memory_order_relaxed);
        return Push::Full;
      }
      jobs.push_back(std::move(job));
      depth.store(jobs.size(), std::memory_order_relaxed);
    }
    enqueued.fetch_add(1, std::memory_order_relaxed);
    cv.notify_one();
    return Push::Ok;
  }

  /// Blocks for the first job, then -- within `window_us` if configured --
  /// takes up to `batch_max` jobs total.  Returns false when the queue is
  /// closed and fully drained (worker exit).
  bool pop_batch(std::vector<RequestJob>& out, int batch_max,
                 std::uint64_t window_us) {
    out.clear();
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return closed || !jobs.empty(); });
    if (jobs.empty()) return false;
    out.push_back(std::move(jobs.front()));
    jobs.pop_front();
    if (batch_max > 1 && window_us > 0 && jobs.empty() && !closed) {
      cv.wait_for(lock, std::chrono::microseconds(window_us),
                  [&] { return closed || !jobs.empty(); });
    }
    while (static_cast<int>(out.size()) < batch_max && !jobs.empty()) {
      out.push_back(std::move(jobs.front()));
      jobs.pop_front();
    }
    depth.store(jobs.size(), std::memory_order_relaxed);
    return true;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    cv.notify_all();
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      injector_(options.faults),
      cache_(options.cache_max_entries) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.batch_max < 1) options_.batch_max = 1;
  if (options_.max_request_bytes > kMaxFrameBytes) {
    options_.max_request_bytes = kMaxFrameBytes;
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    throw std::runtime_error("ptask_served: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error("ptask_served: cannot listen on port " +
                             std::to_string(options_.port));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  start_time_ = std::chrono::steady_clock::now();
  // Nonce in minted request ids: distinguishes ids across server
  // restarts/instances without any global coordination.
  id_nonce_ = static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      start_time_.time_since_epoch())
                      .count()) &
              0xffffffffu;
  if (!options_.slow_log_path.empty()) {
    const std::lock_guard<std::mutex> lock(slow_log_mutex_);
    slow_log_.open(options_.slow_log_path,
                   std::ios::out | std::ios::trunc);
  }

  queue_ = std::make_unique<RequestQueue>(options_.max_queue);
  Reactor::Options reactor_options;
  reactor_options.listen_fd = listen_fd_;
  reactor_options.max_request_bytes = options_.max_request_bytes;
  reactor_options.worker_track = options_.num_workers;  // own trace track
  reactor_ = std::make_unique<Reactor>(
      reactor_options,
      [this](std::uint64_t conn_id, std::string&& payload,
             Reactor::Clock::time_point t_request, double span_begin_s,
             double recv_us) {
        on_frame(conn_id, std::move(payload), t_request, span_begin_s,
                 recv_us);
      },
      [this](std::uint32_t length) { return on_oversize(length); });
  try {
    reactor_->start();
  } catch (...) {
    reactor_.reset();
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw;
  }
  listen_fd_ = -1;  // the reactor owns (and closes) the listener now

  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // Drain order: no new connects -> no new admissions -> workers finish
  // every admitted request -> the reactor flushes the remaining responses.
  if (reactor_) reactor_->stop_accepting();
  if (queue_) queue_->close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (reactor_) {
    reactor_->stop();
    reactor_.reset();
  }
  // Keep the (closed, drained) queue alive: render_stats() reads the
  // enqueued/rejected totals from it, and the post-shutdown stats dump
  // must still report them.  start() replaces it with a fresh queue.
  {
    const std::lock_guard<std::mutex> lock(slow_log_mutex_);
    if (slow_log_.is_open()) slow_log_.close();
  }
  running_.store(false, std::memory_order_release);
}

std::size_t Server::queue_depth() const {
  return queue_ ? queue_->depth.load(std::memory_order_relaxed) : 0;
}

void Server::on_frame(std::uint64_t conn_id, std::string&& payload,
                      Reactor::Clock::time_point t_request,
                      double span_begin_s, double recv_us) {
  static obs::Counter& requests = obs::metrics().counter("serve.requests");
  static obs::Counter& queue_enqueued =
      obs::metrics().counter("serve.queue.enqueued");
  static obs::Counter& queue_rejected =
      obs::metrics().counter("serve.queue.rejected");
  requests.add();

  RequestJob job;
  job.conn_id = conn_id;
  job.payload = std::move(payload);
  job.t_request = t_request;
  job.span_begin_s = span_begin_s;
  job.recv_us = recv_us;
  job.t_enqueue = Reactor::Clock::now();

  // Admission control runs on the reactor thread, so a rejection costs no
  // worker capacity: the overload answer is rendered and queued for flush
  // right here.
  const std::string_view rejected_payload = job.payload;  // for id recovery
  switch (queue_->push(std::move(job))) {
    case RequestQueue::Push::Ok:
      queue_enqueued.add();
      return;
    case RequestQueue::Push::Closed:
      // Shutdown already began; nothing will drain the queue for this
      // frame, so drop the connection instead of stranding the client.
      reactor_->disconnect(conn_id);
      return;
    case RequestQueue::Push::Full: {
      queue_rejected.add();
      count_error(kErrOverloaded);
      RequestTrace trace;
      trace.error_code = kErrOverloaded;
      trace.recv_us = recv_us;
      trace.request_id = extract_request_id_loose(rejected_payload);
      if (trace.request_id.empty()) trace.request_id = mint_request_id();
      const std::string response = with_request_id(
          overload_response(
              "admission queue full (" + std::to_string(options_.max_queue) +
                  " requests); retry after the hint",
              options_.overload_retry_after_ms),
          trace.request_id);
      trace.total_us = elapsed_us(t_request);
      finish_request(trace, span_begin_s, obs::enabled());
      reactor_->respond(conn_id, encode_frame(response));
      return;
    }
  }
}

std::string Server::on_oversize(std::uint32_t length) {
  // Oversized frames never reach the queue: the reactor answers and closes.
  // The client's request id -- if any -- sits in the unread payload, so
  // this one error path carries a minted id.
  static obs::Counter& requests = obs::metrics().counter("serve.requests");
  requests.add();
  count_error(kErrTooLarge);
  RequestTrace trace;
  trace.error_code = kErrTooLarge;
  trace.request_id = mint_request_id();
  const std::string response = with_request_id(
      error_response(kErrTooLarge,
                     "request of " + std::to_string(length) +
                         " bytes exceeds the limit of " +
                         std::to_string(options_.max_request_bytes)),
      trace.request_id);
  finish_request(trace, obs::enabled() ? obs::tracer().now() : 0.0,
                 obs::enabled());
  return response;
}

void Server::worker_loop(int worker_index) {
  // Tag this worker's ambient span context once: every span this thread
  // records (request phases, scheduler passes) lands on the worker's own
  // trace track, so concurrent requests never interleave on one track.
  obs::thread_context().worker = worker_index;
  static obs::Histogram& queue_wait =
      obs::metrics().histogram("serve.queue.wait_us");
  static obs::Histogram& batch_size_hist =
      obs::metrics().histogram("serve.batch.size");
  static obs::Counter& batch_runs =
      obs::metrics().counter("serve.batch.runs");
  static obs::Counter& batch_coalesced =
      obs::metrics().counter("serve.batch.coalesced");

  std::vector<RequestJob> jobs;
  while (queue_->pop_batch(jobs, options_.batch_max,
                           options_.batch_window_us)) {
    in_flight_.fetch_add(static_cast<int>(jobs.size()),
                         std::memory_order_relaxed);
    std::vector<ParsedJob> parsed;
    parsed.reserve(jobs.size());
    for (RequestJob& job : jobs) {
      ParsedJob item;
      item.tracing = obs::enabled();
      item.trace.recv_us = job.recv_us;
      const double wait_us = elapsed_us(job.t_enqueue);
      item.trace.queue_us = wait_us;
      queue_wait.observe(
          static_cast<std::uint64_t>(wait_us > 0.0 ? wait_us : 0.0));
      if (item.tracing) {
        obs::Span queue_span;
        queue_span.kind = obs::SpanKind::Serve;
        queue_span.name = "serve.queue";
        queue_span.worker = obs::thread_context().worker;
        const double end_s = obs::tracer().now();
        queue_span.begin_s = end_s - wait_us / 1e6;
        queue_span.end_s = end_s;
        obs::tracer().record(std::move(queue_span));
      }
      item.job = std::move(job);
      item.done = dispatch_payload(item);
      parsed.push_back(std::move(item));
    }

    // Coalesce compatible schedule requests: same (scheduler, total_cores,
    // certify, machine), different graphs.  Members run sequentially over
    // one shared content-keyed pricing cache; the first-seen order keys the
    // map deterministically (std::map over the compat string).
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      if (!parsed[i].done) groups[parsed[i].compat].push_back(i);
    }
    for (const auto& [compat, members] : groups) {
      batch_size_hist.observe(members.size());
      if (members.size() >= 2) {
        batch_runs.add();
        batch_coalesced.add(members.size());
        std::optional<obs::ScopedSpan> batch_span;
        if (obs::enabled()) {
          batch_span.emplace(obs::SpanKind::Serve, "serve.batch");
        }
        std::optional<sched::BatchScheduler> batch;
        const ScheduleRequest& first = *parsed[members.front()].request;
        try {
          const cost::CostModel base{arch::Machine(first.machine)};
          batch.emplace(first.scheduler, base);
        } catch (...) {
          // Construction can only fail like an unbatched run would (bad
          // machine / unknown scheduler); fall through to the per-member
          // path so each member reports its own error.
        }
        for (const std::size_t index : members) {
          parsed[index].trace.batch_size =
              static_cast<int>(members.size());
          execute_schedule(parsed[index],
                           batch ? &*batch : nullptr);
        }
      } else {
        parsed[members.front()].trace.batch_size = 1;
        execute_schedule(parsed[members.front()], nullptr);
      }
    }

    for (ParsedJob& item : parsed) {
      item.trace.total_us = elapsed_us(item.job.t_request);
      finish_request(item.trace, item.job.span_begin_s, item.tracing);
      reactor_->respond(item.job.conn_id, encode_frame(item.response));
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool Server::dispatch_payload(ParsedJob& item) {
  static obs::Counter& responses_ok =
      obs::metrics().counter("serve.responses.ok");
  static obs::Histogram& phase_parse =
      obs::metrics().histogram("serve.phase.parse_us");
  RequestTrace& trace = item.trace;
  const std::string_view payload = item.job.payload;
  const std::uint64_t sequence =
      served_requests_.fetch_add(1, std::memory_order_relaxed);
  injector_.perturb(rt::FaultInjector::point(
      0, static_cast<std::int64_t>(sequence), /*phase=*/0));

  const auto ensure_request_id = [&] {
    if (trace.request_id.empty()) trace.request_id = mint_request_id();
  };

  item.t0 = Clock::now();
  try {
    // The parse phase covers the document parse plus (for schedule
    // requests) the typed request parse below.
    ServePhase parse_phase("serve.parse", phase_parse, trace.parse_us);
    obs::json::Value document;
    try {
      document = obs::json::parse(payload);
    } catch (const std::runtime_error& e) {
      // Best-effort id recovery keeps even PTS001 errors correlatable.
      parse_phase.finish();
      trace.request_id = extract_request_id_loose(payload);
      throw ProtocolError(kErrMalformedJson, e.what());
    }
    if (const obs::json::Value* id = document.find("request_id")) {
      if (id->is_string()) trace.request_id = id->string;
    }
    ensure_request_id();
    if (document.is_object()) {
      if (const obs::json::Value* type = document.find("type")) {
        if (type->is_string() && type->string == "stats") {
          parse_phase.finish();
          trace.kind = "stats";
          responses_ok.add();
          item.response = with_request_id(render_stats(), trace.request_id);
          return true;
        }
        if (type->is_string() && type->string == "metrics") {
          parse_phase.finish();
          trace.kind = "metrics";
          responses_ok.add();
          item.response = with_request_id(metrics_response(render_metrics()),
                                          trace.request_id);
          return true;
        }
        if (type->is_string() && type->string == "trace") {
          parse_phase.finish();
          trace.kind = "trace";
          responses_ok.add();
          // Drain the live tracer: safe concurrently with recording
          // workers (per-buffer locking; see obs/trace.hpp).  Spans still
          // open land in the next dump.
          std::string chrome = obs::render_chrome_trace(obs::tracer().take());
          while (!chrome.empty() && chrome.back() == '\n') chrome.pop_back();
          item.response =
              with_request_id(trace_response(chrome), trace.request_id);
          return true;
        }
        if (type->is_string() && type->string == "ping") {
          parse_phase.finish();
          trace.kind = "ping";
          responses_ok.add();
          item.response = with_request_id(pong_response(), trace.request_id);
          return true;
        }
        // Session requests (online incremental scheduling).  These never
        // touch the whole-schedule cache: a session response depends on
        // mutable per-session state, so caching it would serve schedules
        // for graphs the session has since grown past.
        if (type->is_string() && type->string == "submit") {
          const SubmitRequest request = parse_submit(payload);
          parse_phase.finish();
          trace.kind = "submit";
          trace.scheduler = "incremental";
          trace.family = request.family;
          const std::string response = handle_submit(request, trace);
          responses_ok.add();
          item.response = with_request_id(response, trace.request_id);
          return true;
        }
        if (type->is_string() && type->string == "extend") {
          const ExtendRequest request = parse_extend(payload);
          parse_phase.finish();
          trace.kind = "extend";
          trace.scheduler = "incremental";
          trace.family = request.family;
          const std::string response = handle_extend(request, trace);
          responses_ok.add();
          item.response = with_request_id(response, trace.request_id);
          return true;
        }
        if (type->is_string() && type->string == "close") {
          const CloseRequest request = parse_close(payload);
          parse_phase.finish();
          trace.kind = "close";
          const std::string response = handle_close(request, trace);
          responses_ok.add();
          item.response = with_request_id(response, trace.request_id);
          return true;
        }
      }
    }

    ScheduleRequest request = parse_request(payload);
    parse_phase.finish();
    trace.scheduler = request.scheduler;
    trace.family = request.family;
    // Compatibility key for coalescing: everything that must agree for two
    // requests to share one scheduler + pricing-cache instance.  The
    // machine is keyed by its canonical serialization (field order and
    // number formatting are fixed), so equal specs -- not just equal
    // objects -- group together.
    item.compat = request.scheduler + '\x1f' +
                  std::to_string(request.total_cores) + '\x1f' +
                  (request.certify ? '1' : '0') + '\x1f' +
                  serialize_machine(request.machine);
    item.request.emplace(std::move(request));
    return false;
  } catch (const ProtocolError& e) {
    ensure_request_id();
    trace.error_code = e.code();
    count_error(e.code());
    item.response = with_request_id(error_response(e.code(), e.what()),
                                    trace.request_id);
    return true;
  } catch (const std::exception& e) {
    ensure_request_id();
    trace.error_code = kErrBadRequest;
    count_error(kErrBadRequest);
    item.response = with_request_id(error_response(kErrBadRequest, e.what()),
                                    trace.request_id);
    return true;
  }
}

void Server::execute_schedule(ParsedJob& item,
                              const sched::BatchScheduler* batch) {
  static obs::Counter& responses_ok =
      obs::metrics().counter("serve.responses.ok");
  static obs::Histogram& latency =
      obs::metrics().histogram("serve.latency_us");
  static obs::Histogram& phase_cache =
      obs::metrics().histogram("serve.phase.cache_us");
  static obs::Histogram& phase_schedule =
      obs::metrics().histogram("serve.phase.schedule_us");
  static obs::Histogram& phase_certify =
      obs::metrics().histogram("serve.phase.certify_us");
  static obs::Histogram& phase_serialize =
      obs::metrics().histogram("serve.phase.serialize_us");
  RequestTrace& trace = item.trace;
  const ScheduleRequest& request = *item.request;

  const auto ensure_request_id = [&] {
    if (trace.request_id.empty()) trace.request_id = mint_request_id();
  };

  try {
    const std::string key = canonical_key(request);
    injector_.perturb(rt::FaultInjector::point(
        1,
        static_cast<std::int64_t>(
            served_requests_.load(std::memory_order_relaxed)),
        /*phase=*/1));

    bool computed = false;
    ScheduleCache::Entry schedule_json;
    {
      // The cache phase covers the whole lookup including any
      // single-flight wait; on a miss the compute phases below run nested
      // inside it (so cache_us >= schedule_us + certify_us + serialize_us
      // on misses, and is pure lookup/wait cost on hits).
      ServePhase cache_phase("serve.cache.lookup", phase_cache,
                             trace.cache_us);
      schedule_json = cache_.get_or_compute(key, [&] {
        computed = true;
        std::optional<sched::Schedule> schedule;
        {
          ServePhase schedule_phase("serve.schedule[" + request.scheduler +
                                        "]",
                                    phase_schedule, trace.schedule_us);
          if (batch != nullptr) {
            // Batched: price over the group's shared content-keyed cache.
            // Bit-transparent, so the bytes below equal an unbatched run.
            schedule = batch->run(request.graph, request.total_cores);
          } else {
            const cost::CostModel cost{arch::Machine(request.machine)};
            const std::unique_ptr<sched::Scheduler> scheduler =
                sched::SchedulerRegistry::instance().make(request.scheduler,
                                                          cost);
            schedule = scheduler->run(request.graph, request.total_cores);
          }
        }
        // Opt-in audit before the bytes become cacheable: a certification
        // failure throws, which evicts the single-flight placeholder --
        // uncertifiable schedules are never served from the cache.  A
        // cache *hit* under a certify key was therefore certified when it
        // was computed (the flag is part of the canonical key).
        if (request.certify) {
          ServePhase certify_phase("serve.certify", phase_certify,
                                   trace.certify_us);
          const analysis::Certificate certificate =
              analysis::certify(request.graph, *schedule, {});
          if (!certificate.ok()) {
            throw ProtocolError(
                kErrCertification,
                "schedule failed independent certification: " +
                    analysis::render_text(certificate.report));
          }
        }
        ServePhase serialize_phase("serve.serialize", phase_serialize,
                                   trace.serialize_us);
        return serialize_schedule(*schedule);
      });
    }
    trace.cache_used = true;
    trace.cache_hit = !computed;

    responses_ok.add();
    const double total_us = elapsed_us(item.t0);
    const auto observed_us =
        static_cast<std::uint64_t>(total_us > 0.0 ? total_us : 0.0);
    latency.observe(observed_us);
    // Per-strategy and per-family breakdowns.  Name lookup per request is
    // a mutex-protected map probe -- noise against a scheduler run.
    obs::metrics()
        .histogram("serve.strategy." + request.scheduler + ".latency_us")
        .observe(observed_us);
    obs::metrics()
        .counter("serve.strategy." + request.scheduler + ".requests")
        .add();
    if (!request.family.empty()) {
      obs::metrics()
          .histogram("serve.family." + request.family + ".latency_us")
          .observe(observed_us);
      obs::metrics()
          .counter("serve.family." + request.family + ".requests")
          .add();
    }
    if (request.certify) {
      // The hash is a pure function of the canonical bytes, so cached hits
      // carry the same certificate hash as the original miss.
      item.response = with_request_id(
          ok_response(*schedule_json,
                      analysis::hash_hex(analysis::fnv1a64(*schedule_json))),
          trace.request_id);
      return;
    }
    item.response =
        with_request_id(ok_response(*schedule_json), trace.request_id);
  } catch (const ProtocolError& e) {
    ensure_request_id();
    trace.error_code = e.code();
    count_error(e.code());
    item.response = with_request_id(error_response(e.code(), e.what()),
                                    trace.request_id);
  } catch (const std::exception& e) {
    // Scheduler/cost-model rejections (e.g. invalid core counts for the
    // machine) map to bad-request: the graph/machine combination cannot be
    // scheduled.
    ensure_request_id();
    trace.error_code = kErrBadRequest;
    count_error(kErrBadRequest);
    item.response = with_request_id(error_response(kErrBadRequest, e.what()),
                                    trace.request_id);
  }
}

std::string Server::handle_submit(const SubmitRequest& request,
                                  RequestTrace& trace) {
  static obs::Counter& submits =
      obs::metrics().counter("serve.incremental.submits");
  static obs::Histogram& phase_schedule =
      obs::metrics().histogram("serve.phase.schedule_us");
  auto session = std::make_shared<SessionState>(request.machine);
  std::string session_id;
  {
    std::lock_guard<std::mutex> map_lock(sessions_mutex_);
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      throw ProtocolError(kErrSession,
                          "session limit reached (" +
                              std::to_string(options_.max_sessions) +
                              " open sessions); close a session first");
    }
    session_id = mint_session_id();
    sessions_.emplace(session_id, session);
  }
  try {
    std::lock_guard<std::mutex> lock(session->mutex);
    std::string schedule_json;
    {
      ServePhase schedule_phase("serve.schedule[incremental]", phase_schedule,
                                trace.schedule_us);
      const sched::Schedule& schedule = session->scheduler.reset(
          request.graph, request.total_cores, request.release_time);
      schedule_json = serialize_schedule(schedule);
    }
    submits.add();
    return session_response(session_id, session->scheduler.last_stats(),
                            schedule_json);
  } catch (...) {
    // A failed initial schedule (e.g. the machine rejects the core count)
    // must not leave an unusable session holding a map slot.
    std::lock_guard<std::mutex> map_lock(sessions_mutex_);
    sessions_.erase(session_id);
    throw;
  }
}

std::string Server::handle_extend(const ExtendRequest& request,
                                  RequestTrace& trace) {
  static obs::Counter& extends =
      obs::metrics().counter("serve.incremental.extends");
  static obs::Histogram& phase_schedule =
      obs::metrics().histogram("serve.phase.schedule_us");
  std::shared_ptr<SessionState> session;
  {
    std::lock_guard<std::mutex> map_lock(sessions_mutex_);
    const auto it = sessions_.find(request.session);
    if (it == sessions_.end()) {
      throw ProtocolError(kErrSession,
                          "unknown session '" + request.session + "'");
    }
    session = it->second;
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  std::string schedule_json;
  {
    ServePhase schedule_phase("serve.schedule[incremental]", phase_schedule,
                              trace.schedule_us);
    try {
      const sched::Schedule& schedule =
          session->scheduler.extend(request.delta);
      schedule_json = serialize_schedule(schedule);
    } catch (const sched::DeltaError& e) {
      // Invalid deltas (range, cycles, non-monotonic releases) leave the
      // session untouched.  Surface them as session errors: the generic
      // handler below would misfile them as PTS002 bad requests.
      throw ProtocolError(kErrSession, e.what());
    }
  }
  extends.add();
  return session_response(request.session, session->scheduler.last_stats(),
                          schedule_json);
}

std::string Server::handle_close(const CloseRequest& request,
                                 RequestTrace& /*trace*/) {
  static obs::Counter& closes =
      obs::metrics().counter("serve.incremental.closes");
  std::lock_guard<std::mutex> map_lock(sessions_mutex_);
  const auto it = sessions_.find(request.session);
  if (it == sessions_.end()) {
    throw ProtocolError(kErrSession,
                        "unknown session '" + request.session + "'");
  }
  sessions_.erase(it);
  closes.add();
  return close_response(request.session);
}

std::size_t Server::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

std::string Server::mint_session_id() {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "sess-%08llx-%llu",
                static_cast<unsigned long long>(id_nonce_),
                static_cast<unsigned long long>(
                    next_session_id_.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

std::string Server::render_stats() const {
  const obs::MetricsRegistry& registry = obs::metrics();
  const std::vector<obs::CounterSample> counters = registry.counters();
  const std::vector<obs::HistogramSample> histograms =
      registry.histograms();

  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t truncated = 0;
  std::uint64_t batch_runs = 0;
  std::uint64_t batch_coalesced = 0;
  std::vector<std::pair<std::string, std::uint64_t>> errors;
  for (const obs::CounterSample& row : counters) {
    if (row.name == "serve.requests") requests = row.value;
    if (row.name == "serve.responses.ok") responses_ok = row.value;
    if (row.name == "serve.truncated") truncated = row.value;
    if (row.name == "serve.batch.runs") batch_runs = row.value;
    if (row.name == "serve.batch.coalesced") batch_coalesced = row.value;
    if (row.name.rfind("serve.error.", 0) == 0) {
      errors.emplace_back(row.name.substr(sizeof("serve.error.") - 1),
                          row.value);
    }
  }
  obs::HistogramSample latency;
  for (const obs::HistogramSample& row : histograms) {
    if (row.name == "serve.latency_us") latency = row;
  }

  std::string out = "{\"ok\":true,\"stats\":{";
  out += "\"requests\":" + std::to_string(requests);
  out += ",\"responses_ok\":" + std::to_string(responses_ok);
  out += ",\"truncated\":" + std::to_string(truncated);
  out += ",\"in_flight\":" + std::to_string(in_flight());
  out += ",\"sessions\":" + std::to_string(num_sessions());
  out += ",\"uptime_s\":";
  append_json_double(out, uptime_s());
  out += ",\"queue\":{\"depth\":" + std::to_string(queue_depth());
  out += ",\"max\":" + std::to_string(options_.max_queue);
  out +=
      ",\"enqueued\":" +
      std::to_string(queue_ ? queue_->enqueued.load(std::memory_order_relaxed)
                            : 0);
  out +=
      ",\"rejected\":" +
      std::to_string(queue_ ? queue_->rejected.load(std::memory_order_relaxed)
                            : 0) +
      '}';
  out += ",\"batch\":{\"runs\":" + std::to_string(batch_runs);
  out += ",\"coalesced\":" + std::to_string(batch_coalesced) + '}';
  out += ",\"cache\":{\"hits\":" + std::to_string(cache_.hits());
  out += ",\"misses\":" + std::to_string(cache_.misses());
  out += ",\"entries\":" + std::to_string(cache_.entries());
  out += ",\"evictions\":" + std::to_string(cache_.evictions());
  out += ",\"max_entries\":" + std::to_string(cache_.max_entries());
  out += ",\"value_bytes\":" + std::to_string(cache_.value_bytes()) + '}';
  out += ",\"latency_us\":";
  append_histogram_json(out, latency);
  out += ",\"errors\":{";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, errors[i].first);
    out += ':' + std::to_string(errors[i].second);
  }
  // Full registry dump: every counter and every histogram (with its
  // log-bucket boundaries), names JSON-escaped, so the payload always
  // parses round-trip clean no matter what metric names exist.
  out += "},\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, counters[i].name);
    out += ':' + std::to_string(counters[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, histograms[i].name);
    out += ':';
    append_histogram_json(out, histograms[i]);
  }
  out += "}}}";
  return out;
}

std::string Server::render_metrics() const {
  std::string out = obs::render_prometheus(obs::metrics());
  const auto gauge = [&out](const char* name, const std::string& value,
                            const char* help) {
    out += std::string("# HELP ") + name + " " + help + "\n";
    out += std::string("# TYPE ") + name + " gauge\n";
    out += std::string(name) + " " + value + "\n";
  };
  gauge("ptask_serve_in_flight", std::to_string(in_flight()),
        "requests currently being served");
  gauge("ptask_serve_queue_depth", std::to_string(queue_depth()),
        "requests admitted but not yet picked up by a worker");
  gauge("ptask_serve_queue_max", std::to_string(options_.max_queue),
        "configured admission queue bound (0 = unbounded)");
  gauge("ptask_serve_sessions", std::to_string(num_sessions()),
        "open incremental-scheduling sessions");
  gauge("ptask_serve_cache_entries", std::to_string(cache_.entries()),
        "completed schedule cache entries");
  gauge("ptask_serve_cache_value_bytes",
        std::to_string(cache_.value_bytes()),
        "bytes held by cached schedule responses");
  gauge("ptask_serve_cache_max_entries",
        std::to_string(cache_.max_entries()),
        "configured cache entry cap (0 = unbounded)");
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f", uptime_s());
  gauge("ptask_serve_uptime_seconds", uptime, "seconds since start()");
  return out;
}

double Server::uptime_s() const {
  if (start_time_ == std::chrono::steady_clock::time_point{}) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

std::string Server::mint_request_id() {
  static obs::Counter& minted =
      obs::metrics().counter("serve.request_ids.minted");
  minted.add();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "s-%08llx-%llu",
                static_cast<unsigned long long>(id_nonce_),
                static_cast<unsigned long long>(
                    next_request_id_.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

void Server::finish_request(const RequestTrace& trace, double span_begin_s,
                            bool tracing) {
  static obs::Counter& slow_requests =
      obs::metrics().counter("serve.slow_requests");
  if (tracing) {
    // The root span is recorded last but begins first (at frame arrival);
    // exporters sort by begin time, so it parents the phase spans by time
    // containment on this worker's track.
    obs::Span root;
    root.kind = obs::SpanKind::Serve;
    root.name = "serve.request " + trace.request_id;
    root.worker = obs::thread_context().worker;
    root.begin_s = span_begin_s;
    root.end_s = obs::tracer().now();
    obs::tracer().record(std::move(root));
  }
  if (options_.slow_threshold_us == 0 ||
      trace.total_us < static_cast<double>(options_.slow_threshold_us)) {
    return;
  }
  slow_requests.add();
  if (options_.slow_log_path.empty()) return;

  // One self-contained JSON line per slow request (docs/OBSERVABILITY.md
  // documents the schema).  Phases that never ran are omitted.
  std::string line = "{\"request_id\":";
  append_json_string(line, trace.request_id);
  line += ",\"kind\":";
  append_json_string(line, trace.kind);
  if (!trace.scheduler.empty()) {
    line += ",\"scheduler\":";
    append_json_string(line, trace.scheduler);
  }
  if (!trace.family.empty()) {
    line += ",\"family\":";
    append_json_string(line, trace.family);
  }
  line += ",\"cache\":";
  append_json_string(
      line, trace.cache_used ? (trace.cache_hit ? "hit" : "miss") : "none");
  if (trace.batch_size > 1) {
    line += ",\"batch\":" + std::to_string(trace.batch_size);
  }
  line += ",\"error\":";
  if (trace.error_code.empty()) {
    line += "null";
  } else {
    append_json_string(line, trace.error_code);
  }
  line += ",\"total_us\":";
  append_us_field(line, trace.total_us);
  line += ",\"phases\":{";
  bool first = true;
  const auto phase = [&line, &first](const char* name, double us) {
    if (us < 0.0) return;
    if (!first) line += ',';
    first = false;
    line += '"';
    line += name;
    line += "\":";
    append_us_field(line, us);
  };
  phase("recv_us", trace.recv_us);
  phase("queue_us", trace.queue_us);
  phase("parse_us", trace.parse_us);
  phase("cache_us", trace.cache_us);
  phase("schedule_us", trace.schedule_us);
  phase("certify_us", trace.certify_us);
  phase("serialize_us", trace.serialize_us);
  phase("send_us", trace.send_us);
  line += "}}";

  const std::lock_guard<std::mutex> lock(slow_log_mutex_);
  if (slow_log_.is_open()) {
    slow_log_ << line << '\n';
    slow_log_.flush();  // slow requests are rare; readers see lines live
  }
}

}  // namespace ptask::serve
