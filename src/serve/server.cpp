#include "ptask/serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "ptask/analysis/certifier.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/obs/export.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/prometheus.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/serve/protocol.hpp"

namespace ptask::serve {

namespace {

/// Reads exactly `length` bytes; returns false on EOF/error.
bool read_exact(int fd, void* buffer, std::size_t length) {
  auto* out = static_cast<unsigned char*>(buffer);
  while (length > 0) {
    const ssize_t n = ::recv(fd, out, length, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    length -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Writes the whole buffer; returns false on error (peer gone).
bool write_all(int fd, std::string_view data) {
  const char* out = data.data();
  std::size_t length = data.size();
  while (length > 0) {
    const ssize_t n = ::send(fd, out, length, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    length -= static_cast<std::size_t>(n);
  }
  return true;
}

/// serve.error.<code> counter (codes are a small fixed set, so the name
/// lookup per error is fine -- errors are off the hot path).
void count_error(std::string_view code) {
  obs::metrics().counter("serve.error." + std::string(code)).add();
}

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

void append_us_field(std::string& out, double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  out += buf;
}

/// Inclusive upper bound of log-histogram bucket i (see obs::Histogram).
std::string bucket_upper_bound(int i) {
  if (i == 0) return "0";
  if (i >= 64) return std::to_string(~std::uint64_t{0});
  return std::to_string((std::uint64_t{1} << i) - 1);
}

void append_histogram_json(std::string& out, const obs::HistogramSample& h) {
  out += "{\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + std::to_string(h.sum);
  out += ",\"p50\":";
  append_json_double(out, h.p50);
  out += ",\"p90\":";
  append_json_double(out, h.p90);
  out += ",\"p99\":";
  append_json_double(out, h.p99);
  out += ",\"buckets\":[";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i != 0) out += ',';
    out += '[' + bucket_upper_bound(h.buckets[i].first) + ',' +
           std::to_string(h.buckets[i].second) + ']';
  }
  out += "]}";
}

}  // namespace

/// Per-request trace record threaded through serve_connection and
/// handle_payload: request id, cache outcome, phase timings (microseconds;
/// a negative value means the phase never ran), and the error code.  This
/// is what the slow-request log serializes.
struct Server::RequestTrace {
  std::string request_id;
  std::string kind = "schedule";  ///< schedule|stats|ping|metrics|trace
  std::string scheduler;
  std::string family;
  std::string error_code;  ///< "" on success
  bool cache_used = false;
  bool cache_hit = false;
  double recv_us = -1.0;
  double parse_us = -1.0;
  double cache_us = -1.0;
  double schedule_us = -1.0;
  double certify_us = -1.0;
  double serialize_us = -1.0;
  double send_us = -1.0;
  double total_us = 0.0;
};

/// One open incremental-scheduling session.  The cost model lives here
/// because the scheduler's pipeline keeps a pointer to it for the whole
/// session lifetime.  `mutex` serializes submit/extend/stat reads on this
/// session; the map in Server only hands out the shared_ptr.
struct Server::SessionState {
  explicit SessionState(const arch::MachineSpec& machine)
      : cost(arch::Machine(machine)), scheduler(cost) {}

  std::mutex mutex;
  cost::CostModel cost;
  sched::IncrementalScheduler scheduler;
};

namespace {

/// RAII phase scope: times one request phase into its serve.phase.*
/// histogram (and the RequestTrace field) and, when tracing is enabled,
/// wraps it in a Serve span.  Phase metrics use the steady clock directly,
/// so they survive PTASK_OBS=OFF builds where span instrumentation
/// compiles out.
class ServePhase {
 public:
  ServePhase(const std::string& span_name, obs::Histogram& hist,
             double& out_us)
      : hist_(hist), out_us_(&out_us) {
    if (obs::enabled()) span_.emplace(obs::SpanKind::Serve, span_name);
    t0_ = Clock::now();
  }
  ~ServePhase() { finish(); }
  ServePhase(const ServePhase&) = delete;
  ServePhase& operator=(const ServePhase&) = delete;

  void finish() {
    if (done_) return;
    done_ = true;
    const double us = elapsed_us(t0_);
    *out_us_ = us;
    hist_.observe(us > 0.0 ? static_cast<std::uint64_t>(us) : 0);
    span_.reset();
  }

 private:
  std::optional<obs::ScopedSpan> span_;
  obs::Histogram& hist_;
  double* out_us_;
  Clock::time_point t0_{};
  bool done_ = false;
};

}  // namespace

/// Bounded-less handoff of accepted connections to the worker pool.
struct Server::ConnectionQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<int> fds;
  bool closed = false;

  void push(int fd) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (closed) {
        ::close(fd);
        return;
      }
      fds.push_back(fd);
    }
    cv.notify_one();
  }

  /// Blocks until a connection or queue shutdown; returns -1 on shutdown.
  int pop() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return closed || !fds.empty(); });
    if (fds.empty()) return -1;
    const int fd = fds.front();
    fds.pop_front();
    return fd;
  }

  void close_all() {
    std::deque<int> drained;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      closed = true;
      drained.swap(fds);
    }
    for (const int fd : drained) ::close(fd);
    cv.notify_all();
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      injector_(options.faults),
      cache_(options.cache_max_entries) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_request_bytes > kMaxFrameBytes) {
    options_.max_request_bytes = kMaxFrameBytes;
  }
  queue_ = std::make_unique<ConnectionQueue>();
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  // A previous stop() left the queue closed; restart needs a fresh one.
  queue_ = std::make_unique<ConnectionQueue>();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    throw std::runtime_error("ptask_served: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error("ptask_served: cannot listen on port " +
                             std::to_string(options_.port));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  start_time_ = std::chrono::steady_clock::now();
  // Nonce in minted request ids: distinguishes ids across server
  // restarts/instances without any global coordination.
  id_nonce_ = static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      start_time_.time_since_epoch())
                      .count()) &
              0xffffffffu;
  if (!options_.slow_log_path.empty()) {
    const std::lock_guard<std::mutex> lock(slow_log_mutex_);
    slow_log_.open(options_.slow_log_path,
                   std::ios::out | std::ios::trunc);
  }

  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  queue_->close_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(slow_log_mutex_);
    if (slow_log_.is_open()) slow_log_.close();
  }
  running_.store(false, std::memory_order_release);
}

void Server::accept_loop() {
  static obs::Counter& connections =
      obs::metrics().counter("serve.connections");
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections.add();
    queue_->push(fd);
  }
}

void Server::worker_loop(int worker_index) {
  // Tag this worker's ambient span context once: every span this thread
  // records (request phases, scheduler passes) lands on the worker's own
  // trace track, so concurrent requests never interleave on one track.
  obs::thread_context().worker = worker_index;
  while (true) {
    const int fd = queue_->pop();
    if (fd < 0) return;
    serve_connection(fd);
    ::close(fd);
  }
}

void Server::serve_connection(int fd) {
  static obs::Counter& truncated = obs::metrics().counter("serve.truncated");
  static obs::Histogram& phase_recv =
      obs::metrics().histogram("serve.phase.recv_us");
  static obs::Histogram& phase_send =
      obs::metrics().histogram("serve.phase.send_us");
  while (true) {
    // Between frames, poll so shutdown is noticed on idle connections.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (ready < 0) return;
    if (ready == 0) continue;
    if ((pfd.revents & (POLLIN | POLLHUP)) == 0) return;

    unsigned char header[4];
    if (!read_exact(fd, header, sizeof(header))) return;  // clean EOF
    // The request clock starts once the header is in: idle time between
    // frames never counts into any phase.
    const Clock::time_point t_request = Clock::now();
    const bool tracing = obs::enabled();
    const double span_begin = tracing ? obs::tracer().now() : 0.0;
    RequestTrace trace;

    const std::uint32_t length = decode_frame_length(header);
    if (length > options_.max_request_bytes) {
      // Oversized: answer with the structured error, then drop the
      // connection (the payload is not read; resynchronization inside the
      // stream is not possible).  The client's request id -- if any -- sits
      // in the unread payload, so this one error path carries a minted id.
      count_error(kErrTooLarge);
      trace.error_code = kErrTooLarge;
      trace.request_id = mint_request_id();
      const std::string response = with_request_id(
          error_response(kErrTooLarge,
                         "request of " + std::to_string(length) +
                             " bytes exceeds the limit of " +
                             std::to_string(options_.max_request_bytes)),
          trace.request_id);
      const Clock::time_point t_send = Clock::now();
      write_all(fd, encode_frame(response));
      trace.send_us = elapsed_us(t_send);
      phase_send.observe(static_cast<std::uint64_t>(
          trace.send_us > 0.0 ? trace.send_us : 0.0));
      trace.total_us = elapsed_us(t_request);
      finish_request(trace, span_begin, tracing);
      return;
    }
    std::string payload(length, '\0');
    if (length > 0 && !read_exact(fd, payload.data(), payload.size())) {
      truncated.add();  // peer vanished mid-frame; never a crash
      return;
    }
    trace.recv_us = elapsed_us(t_request);
    phase_recv.observe(static_cast<std::uint64_t>(
        trace.recv_us > 0.0 ? trace.recv_us : 0.0));
    if (tracing) {
      obs::Span recv_span;
      recv_span.kind = obs::SpanKind::Serve;
      recv_span.name = "serve.recv";
      recv_span.worker = obs::thread_context().worker;
      recv_span.bytes = length;
      recv_span.begin_s = span_begin;
      recv_span.end_s = obs::tracer().now();
      obs::tracer().record(std::move(recv_span));
    }

    in_flight_.fetch_add(1, std::memory_order_relaxed);
    std::string response;
    try {
      response = handle_payload(payload, trace);
    } catch (...) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);

    bool sent = false;
    {
      ServePhase send_phase("serve.send", phase_send, trace.send_us);
      sent = write_all(fd, encode_frame(response));
    }
    trace.total_us = elapsed_us(t_request);
    finish_request(trace, span_begin, tracing);
    if (!sent) return;
  }
}

std::string Server::handle_payload(std::string_view payload,
                                   RequestTrace& trace) {
  static obs::Counter& requests = obs::metrics().counter("serve.requests");
  static obs::Counter& responses_ok =
      obs::metrics().counter("serve.responses.ok");
  static obs::Histogram& latency =
      obs::metrics().histogram("serve.latency_us");
  static obs::Histogram& phase_parse =
      obs::metrics().histogram("serve.phase.parse_us");
  static obs::Histogram& phase_cache =
      obs::metrics().histogram("serve.phase.cache_us");
  static obs::Histogram& phase_schedule =
      obs::metrics().histogram("serve.phase.schedule_us");
  static obs::Histogram& phase_certify =
      obs::metrics().histogram("serve.phase.certify_us");
  static obs::Histogram& phase_serialize =
      obs::metrics().histogram("serve.phase.serialize_us");
  requests.add();
  const std::uint64_t sequence =
      served_requests_.fetch_add(1, std::memory_order_relaxed);
  injector_.perturb(rt::FaultInjector::point(
      0, static_cast<std::int64_t>(sequence), /*phase=*/0));

  const auto ensure_request_id = [&] {
    if (trace.request_id.empty()) trace.request_id = mint_request_id();
  };

  // Cheap dispatch on "type" without a full parse: stats/ping payloads are
  // tiny, so parsing them twice would also be fine -- this just keeps the
  // scheduling path's parse the only heavy one.
  const Clock::time_point t0 = Clock::now();
  try {
    // The parse phase covers the document parse plus (for schedule
    // requests) the typed request parse below.
    ServePhase parse_phase("serve.parse", phase_parse, trace.parse_us);
    obs::json::Value document;
    try {
      document = obs::json::parse(payload);
    } catch (const std::runtime_error& e) {
      // Best-effort id recovery keeps even PTS001 errors correlatable.
      parse_phase.finish();
      trace.request_id = extract_request_id_loose(payload);
      throw ProtocolError(kErrMalformedJson, e.what());
    }
    if (const obs::json::Value* id = document.find("request_id")) {
      if (id->is_string()) trace.request_id = id->string;
    }
    ensure_request_id();
    if (document.is_object()) {
      if (const obs::json::Value* type = document.find("type")) {
        if (type->is_string() && type->string == "stats") {
          parse_phase.finish();
          trace.kind = "stats";
          responses_ok.add();
          return with_request_id(render_stats(), trace.request_id);
        }
        if (type->is_string() && type->string == "metrics") {
          parse_phase.finish();
          trace.kind = "metrics";
          responses_ok.add();
          return with_request_id(metrics_response(render_metrics()),
                                 trace.request_id);
        }
        if (type->is_string() && type->string == "trace") {
          parse_phase.finish();
          trace.kind = "trace";
          responses_ok.add();
          // Drain the live tracer: safe concurrently with recording
          // workers (per-buffer locking; see obs/trace.hpp).  Spans still
          // open land in the next dump.
          std::string chrome = obs::render_chrome_trace(obs::tracer().take());
          while (!chrome.empty() && chrome.back() == '\n') chrome.pop_back();
          return with_request_id(trace_response(chrome), trace.request_id);
        }
        if (type->is_string() && type->string == "ping") {
          parse_phase.finish();
          trace.kind = "ping";
          responses_ok.add();
          return with_request_id(pong_response(), trace.request_id);
        }
        // Session requests (online incremental scheduling).  These never
        // touch the whole-schedule cache: a session response depends on
        // mutable per-session state, so caching it would serve schedules
        // for graphs the session has since grown past.
        if (type->is_string() && type->string == "submit") {
          const SubmitRequest request = parse_submit(payload);
          parse_phase.finish();
          trace.kind = "submit";
          trace.scheduler = "incremental";
          trace.family = request.family;
          const std::string response = handle_submit(request, trace);
          responses_ok.add();
          return with_request_id(response, trace.request_id);
        }
        if (type->is_string() && type->string == "extend") {
          const ExtendRequest request = parse_extend(payload);
          parse_phase.finish();
          trace.kind = "extend";
          trace.scheduler = "incremental";
          trace.family = request.family;
          const std::string response = handle_extend(request, trace);
          responses_ok.add();
          return with_request_id(response, trace.request_id);
        }
        if (type->is_string() && type->string == "close") {
          const CloseRequest request = parse_close(payload);
          parse_phase.finish();
          trace.kind = "close";
          const std::string response = handle_close(request, trace);
          responses_ok.add();
          return with_request_id(response, trace.request_id);
        }
      }
    }

    const ScheduleRequest request = parse_request(payload);
    parse_phase.finish();
    trace.scheduler = request.scheduler;
    trace.family = request.family;
    const std::string key = canonical_key(request);
    injector_.perturb(rt::FaultInjector::point(
        1, static_cast<std::int64_t>(sequence), /*phase=*/1));

    bool computed = false;
    ScheduleCache::Entry schedule_json;
    {
      // The cache phase covers the whole lookup including any
      // single-flight wait; on a miss the compute phases below run nested
      // inside it (so cache_us >= schedule_us + certify_us + serialize_us
      // on misses, and is pure lookup/wait cost on hits).
      ServePhase cache_phase("serve.cache.lookup", phase_cache,
                             trace.cache_us);
      schedule_json = cache_.get_or_compute(key, [&] {
        computed = true;
        std::optional<sched::Schedule> schedule;
        {
          ServePhase schedule_phase("serve.schedule[" + request.scheduler +
                                        "]",
                                    phase_schedule, trace.schedule_us);
          const cost::CostModel cost{arch::Machine(request.machine)};
          const std::unique_ptr<sched::Scheduler> scheduler =
              sched::SchedulerRegistry::instance().make(request.scheduler,
                                                        cost);
          schedule = scheduler->run(request.graph, request.total_cores);
        }
        // Opt-in audit before the bytes become cacheable: a certification
        // failure throws, which evicts the single-flight placeholder --
        // uncertifiable schedules are never served from the cache.  A
        // cache *hit* under a certify key was therefore certified when it
        // was computed (the flag is part of the canonical key).
        if (request.certify) {
          ServePhase certify_phase("serve.certify", phase_certify,
                                   trace.certify_us);
          const analysis::Certificate certificate =
              analysis::certify(request.graph, *schedule, {});
          if (!certificate.ok()) {
            throw ProtocolError(
                kErrCertification,
                "schedule failed independent certification: " +
                    analysis::render_text(certificate.report));
          }
        }
        ServePhase serialize_phase("serve.serialize", phase_serialize,
                                   trace.serialize_us);
        return serialize_schedule(*schedule);
      });
    }
    trace.cache_used = true;
    trace.cache_hit = !computed;

    responses_ok.add();
    const double total_us = elapsed_us(t0);
    const auto observed_us =
        static_cast<std::uint64_t>(total_us > 0.0 ? total_us : 0.0);
    latency.observe(observed_us);
    // Per-strategy and per-family breakdowns.  Name lookup per request is
    // a mutex-protected map probe -- noise against a scheduler run.
    obs::metrics()
        .histogram("serve.strategy." + request.scheduler + ".latency_us")
        .observe(observed_us);
    obs::metrics()
        .counter("serve.strategy." + request.scheduler + ".requests")
        .add();
    if (!request.family.empty()) {
      obs::metrics()
          .histogram("serve.family." + request.family + ".latency_us")
          .observe(observed_us);
      obs::metrics()
          .counter("serve.family." + request.family + ".requests")
          .add();
    }
    if (request.certify) {
      // The hash is a pure function of the canonical bytes, so cached hits
      // carry the same certificate hash as the original miss.
      return with_request_id(
          ok_response(*schedule_json,
                      analysis::hash_hex(analysis::fnv1a64(*schedule_json))),
          trace.request_id);
    }
    return with_request_id(ok_response(*schedule_json), trace.request_id);
  } catch (const ProtocolError& e) {
    ensure_request_id();
    trace.error_code = e.code();
    count_error(e.code());
    return with_request_id(error_response(e.code(), e.what()),
                           trace.request_id);
  } catch (const std::exception& e) {
    // Scheduler/cost-model rejections (e.g. invalid core counts for the
    // machine) map to bad-request: the graph/machine combination cannot be
    // scheduled.
    ensure_request_id();
    trace.error_code = kErrBadRequest;
    count_error(kErrBadRequest);
    return with_request_id(error_response(kErrBadRequest, e.what()),
                           trace.request_id);
  }
}

std::string Server::handle_submit(const SubmitRequest& request,
                                  RequestTrace& trace) {
  static obs::Counter& submits =
      obs::metrics().counter("serve.incremental.submits");
  static obs::Histogram& phase_schedule =
      obs::metrics().histogram("serve.phase.schedule_us");
  auto session = std::make_shared<SessionState>(request.machine);
  std::string session_id;
  {
    std::lock_guard<std::mutex> map_lock(sessions_mutex_);
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      throw ProtocolError(kErrSession,
                          "session limit reached (" +
                              std::to_string(options_.max_sessions) +
                              " open sessions); close a session first");
    }
    session_id = mint_session_id();
    sessions_.emplace(session_id, session);
  }
  try {
    std::lock_guard<std::mutex> lock(session->mutex);
    std::string schedule_json;
    {
      ServePhase schedule_phase("serve.schedule[incremental]", phase_schedule,
                                trace.schedule_us);
      const sched::Schedule& schedule = session->scheduler.reset(
          request.graph, request.total_cores, request.release_time);
      schedule_json = serialize_schedule(schedule);
    }
    submits.add();
    return session_response(session_id, session->scheduler.last_stats(),
                            schedule_json);
  } catch (...) {
    // A failed initial schedule (e.g. the machine rejects the core count)
    // must not leave an unusable session holding a map slot.
    std::lock_guard<std::mutex> map_lock(sessions_mutex_);
    sessions_.erase(session_id);
    throw;
  }
}

std::string Server::handle_extend(const ExtendRequest& request,
                                  RequestTrace& trace) {
  static obs::Counter& extends =
      obs::metrics().counter("serve.incremental.extends");
  static obs::Histogram& phase_schedule =
      obs::metrics().histogram("serve.phase.schedule_us");
  std::shared_ptr<SessionState> session;
  {
    std::lock_guard<std::mutex> map_lock(sessions_mutex_);
    const auto it = sessions_.find(request.session);
    if (it == sessions_.end()) {
      throw ProtocolError(kErrSession,
                          "unknown session '" + request.session + "'");
    }
    session = it->second;
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  std::string schedule_json;
  {
    ServePhase schedule_phase("serve.schedule[incremental]", phase_schedule,
                              trace.schedule_us);
    try {
      const sched::Schedule& schedule =
          session->scheduler.extend(request.delta);
      schedule_json = serialize_schedule(schedule);
    } catch (const sched::DeltaError& e) {
      // Invalid deltas (range, cycles, non-monotonic releases) leave the
      // session untouched.  Surface them as session errors: the generic
      // handler below would misfile them as PTS002 bad requests.
      throw ProtocolError(kErrSession, e.what());
    }
  }
  extends.add();
  return session_response(request.session, session->scheduler.last_stats(),
                          schedule_json);
}

std::string Server::handle_close(const CloseRequest& request,
                                 RequestTrace& /*trace*/) {
  static obs::Counter& closes =
      obs::metrics().counter("serve.incremental.closes");
  std::lock_guard<std::mutex> map_lock(sessions_mutex_);
  const auto it = sessions_.find(request.session);
  if (it == sessions_.end()) {
    throw ProtocolError(kErrSession,
                        "unknown session '" + request.session + "'");
  }
  sessions_.erase(it);
  closes.add();
  return close_response(request.session);
}

std::size_t Server::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

std::string Server::mint_session_id() {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "sess-%08llx-%llu",
                static_cast<unsigned long long>(id_nonce_),
                static_cast<unsigned long long>(
                    next_session_id_.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

std::string Server::render_stats() const {
  const obs::MetricsRegistry& registry = obs::metrics();
  const std::vector<obs::CounterSample> counters = registry.counters();
  const std::vector<obs::HistogramSample> histograms =
      registry.histograms();

  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t truncated = 0;
  std::vector<std::pair<std::string, std::uint64_t>> errors;
  for (const obs::CounterSample& row : counters) {
    if (row.name == "serve.requests") requests = row.value;
    if (row.name == "serve.responses.ok") responses_ok = row.value;
    if (row.name == "serve.truncated") truncated = row.value;
    if (row.name.rfind("serve.error.", 0) == 0) {
      errors.emplace_back(row.name.substr(sizeof("serve.error.") - 1),
                          row.value);
    }
  }
  obs::HistogramSample latency;
  for (const obs::HistogramSample& row : histograms) {
    if (row.name == "serve.latency_us") latency = row;
  }

  std::string out = "{\"ok\":true,\"stats\":{";
  out += "\"requests\":" + std::to_string(requests);
  out += ",\"responses_ok\":" + std::to_string(responses_ok);
  out += ",\"truncated\":" + std::to_string(truncated);
  out += ",\"in_flight\":" + std::to_string(in_flight());
  out += ",\"sessions\":" + std::to_string(num_sessions());
  out += ",\"uptime_s\":";
  append_json_double(out, uptime_s());
  out += ",\"cache\":{\"hits\":" + std::to_string(cache_.hits());
  out += ",\"misses\":" + std::to_string(cache_.misses());
  out += ",\"entries\":" + std::to_string(cache_.entries());
  out += ",\"evictions\":" + std::to_string(cache_.evictions());
  out += ",\"max_entries\":" + std::to_string(cache_.max_entries());
  out += ",\"value_bytes\":" + std::to_string(cache_.value_bytes()) + '}';
  out += ",\"latency_us\":";
  append_histogram_json(out, latency);
  out += ",\"errors\":{";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, errors[i].first);
    out += ':' + std::to_string(errors[i].second);
  }
  // Full registry dump: every counter and every histogram (with its
  // log-bucket boundaries), names JSON-escaped, so the payload always
  // parses round-trip clean no matter what metric names exist.
  out += "},\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, counters[i].name);
    out += ':' + std::to_string(counters[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, histograms[i].name);
    out += ':';
    append_histogram_json(out, histograms[i]);
  }
  out += "}}}";
  return out;
}

std::string Server::render_metrics() const {
  std::string out = obs::render_prometheus(obs::metrics());
  const auto gauge = [&out](const char* name, const std::string& value,
                            const char* help) {
    out += std::string("# HELP ") + name + " " + help + "\n";
    out += std::string("# TYPE ") + name + " gauge\n";
    out += std::string(name) + " " + value + "\n";
  };
  gauge("ptask_serve_in_flight", std::to_string(in_flight()),
        "requests currently being served");
  gauge("ptask_serve_sessions", std::to_string(num_sessions()),
        "open incremental-scheduling sessions");
  gauge("ptask_serve_cache_entries", std::to_string(cache_.entries()),
        "completed schedule cache entries");
  gauge("ptask_serve_cache_value_bytes",
        std::to_string(cache_.value_bytes()),
        "bytes held by cached schedule responses");
  gauge("ptask_serve_cache_max_entries",
        std::to_string(cache_.max_entries()),
        "configured cache entry cap (0 = unbounded)");
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f", uptime_s());
  gauge("ptask_serve_uptime_seconds", uptime, "seconds since start()");
  return out;
}

double Server::uptime_s() const {
  if (start_time_ == std::chrono::steady_clock::time_point{}) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

std::string Server::mint_request_id() {
  static obs::Counter& minted =
      obs::metrics().counter("serve.request_ids.minted");
  minted.add();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "s-%08llx-%llu",
                static_cast<unsigned long long>(id_nonce_),
                static_cast<unsigned long long>(
                    next_request_id_.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

void Server::finish_request(const RequestTrace& trace, double span_begin_s,
                            bool tracing) {
  static obs::Counter& slow_requests =
      obs::metrics().counter("serve.slow_requests");
  if (tracing) {
    // The root span is recorded last but begins first (at header read);
    // exporters sort by begin time, so it parents the phase spans by time
    // containment on this worker's track.
    obs::Span root;
    root.kind = obs::SpanKind::Serve;
    root.name = "serve.request " + trace.request_id;
    root.worker = obs::thread_context().worker;
    root.begin_s = span_begin_s;
    root.end_s = obs::tracer().now();
    obs::tracer().record(std::move(root));
  }
  if (options_.slow_threshold_us == 0 ||
      trace.total_us < static_cast<double>(options_.slow_threshold_us)) {
    return;
  }
  slow_requests.add();
  if (options_.slow_log_path.empty()) return;

  // One self-contained JSON line per slow request (docs/OBSERVABILITY.md
  // documents the schema).  Phases that never ran are omitted.
  std::string line = "{\"request_id\":";
  append_json_string(line, trace.request_id);
  line += ",\"kind\":";
  append_json_string(line, trace.kind);
  if (!trace.scheduler.empty()) {
    line += ",\"scheduler\":";
    append_json_string(line, trace.scheduler);
  }
  if (!trace.family.empty()) {
    line += ",\"family\":";
    append_json_string(line, trace.family);
  }
  line += ",\"cache\":";
  append_json_string(
      line, trace.cache_used ? (trace.cache_hit ? "hit" : "miss") : "none");
  line += ",\"error\":";
  if (trace.error_code.empty()) {
    line += "null";
  } else {
    append_json_string(line, trace.error_code);
  }
  line += ",\"total_us\":";
  append_us_field(line, trace.total_us);
  line += ",\"phases\":{";
  bool first = true;
  const auto phase = [&line, &first](const char* name, double us) {
    if (us < 0.0) return;
    if (!first) line += ',';
    first = false;
    line += '"';
    line += name;
    line += "\":";
    append_us_field(line, us);
  };
  phase("recv_us", trace.recv_us);
  phase("parse_us", trace.parse_us);
  phase("cache_us", trace.cache_us);
  phase("schedule_us", trace.schedule_us);
  phase("certify_us", trace.certify_us);
  phase("serialize_us", trace.serialize_us);
  phase("send_us", trace.send_us);
  line += "}}";

  const std::lock_guard<std::mutex> lock(slow_log_mutex_);
  if (slow_log_.is_open()) {
    slow_log_ << line << '\n';
    slow_log_.flush();  // slow requests are rare; readers see lines live
  }
}

}  // namespace ptask::serve
