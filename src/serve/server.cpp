#include "ptask/serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "ptask/analysis/certifier.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/serve/protocol.hpp"

namespace ptask::serve {

namespace {

/// Reads exactly `length` bytes; returns false on EOF/error.
bool read_exact(int fd, void* buffer, std::size_t length) {
  auto* out = static_cast<unsigned char*>(buffer);
  while (length > 0) {
    const ssize_t n = ::recv(fd, out, length, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    length -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Writes the whole buffer; returns false on error (peer gone).
bool write_all(int fd, std::string_view data) {
  const char* out = data.data();
  std::size_t length = data.size();
  while (length > 0) {
    const ssize_t n = ::send(fd, out, length, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    length -= static_cast<std::size_t>(n);
  }
  return true;
}

/// serve.error.<code> counter (codes are a small fixed set, so the name
/// lookup per error is fine -- errors are off the hot path).
void count_error(std::string_view code) {
  obs::metrics().counter("serve.error." + std::string(code)).add();
}

}  // namespace

/// Bounded-less handoff of accepted connections to the worker pool.
struct Server::ConnectionQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<int> fds;
  bool closed = false;

  void push(int fd) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (closed) {
        ::close(fd);
        return;
      }
      fds.push_back(fd);
    }
    cv.notify_one();
  }

  /// Blocks until a connection or queue shutdown; returns -1 on shutdown.
  int pop() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return closed || !fds.empty(); });
    if (fds.empty()) return -1;
    const int fd = fds.front();
    fds.pop_front();
    return fd;
  }

  void close_all() {
    std::deque<int> drained;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      closed = true;
      drained.swap(fds);
    }
    for (const int fd : drained) ::close(fd);
    cv.notify_all();
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      injector_(options.faults),
      cache_(options.cache_max_entries) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_request_bytes > kMaxFrameBytes) {
    options_.max_request_bytes = kMaxFrameBytes;
  }
  queue_ = std::make_unique<ConnectionQueue>();
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  // A previous stop() left the queue closed; restart needs a fresh one.
  queue_ = std::make_unique<ConnectionQueue>();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    throw std::runtime_error("ptask_served: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error("ptask_served: cannot listen on port " +
                             std::to_string(options_.port));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  queue_->close_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Server::accept_loop() {
  static obs::Counter& connections =
      obs::metrics().counter("serve.connections");
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections.add();
    queue_->push(fd);
  }
}

void Server::worker_loop() {
  while (true) {
    const int fd = queue_->pop();
    if (fd < 0) return;
    serve_connection(fd);
    ::close(fd);
  }
}

void Server::serve_connection(int fd) {
  static obs::Counter& truncated = obs::metrics().counter("serve.truncated");
  while (true) {
    // Between frames, poll so shutdown is noticed on idle connections.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (ready < 0) return;
    if (ready == 0) continue;
    if ((pfd.revents & (POLLIN | POLLHUP)) == 0) return;

    unsigned char header[4];
    if (!read_exact(fd, header, sizeof(header))) return;  // clean EOF
    const std::uint32_t length = decode_frame_length(header);
    if (length > options_.max_request_bytes) {
      // Oversized: answer with the structured error, then drop the
      // connection (the payload is not read; resynchronization inside the
      // stream is not possible).
      count_error(kErrTooLarge);
      const std::string response = error_response(
          kErrTooLarge, "request of " + std::to_string(length) +
                            " bytes exceeds the limit of " +
                            std::to_string(options_.max_request_bytes));
      write_all(fd, encode_frame(response));
      return;
    }
    std::string payload(length, '\0');
    if (length > 0 && !read_exact(fd, payload.data(), payload.size())) {
      truncated.add();  // peer vanished mid-frame; never a crash
      return;
    }

    in_flight_.fetch_add(1, std::memory_order_relaxed);
    std::string response;
    try {
      response = handle_payload(payload);
    } catch (...) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    if (!write_all(fd, encode_frame(response))) return;
  }
}

std::string Server::handle_payload(std::string_view payload) {
  static obs::Counter& requests = obs::metrics().counter("serve.requests");
  static obs::Counter& responses_ok =
      obs::metrics().counter("serve.responses.ok");
  static obs::Histogram& latency =
      obs::metrics().histogram("serve.latency_us");
  requests.add();
  const std::uint64_t request_id =
      served_requests_.fetch_add(1, std::memory_order_relaxed);
  injector_.perturb(rt::FaultInjector::point(
      0, static_cast<std::int64_t>(request_id), /*phase=*/0));

  // Cheap dispatch on "type" without a full parse: stats/ping payloads are
  // tiny, so parsing them twice would also be fine -- this just keeps the
  // scheduling path's parse the only heavy one.
  const auto t0 = std::chrono::steady_clock::now();
  try {
    obs::json::Value document;
    try {
      document = obs::json::parse(payload);
    } catch (const std::runtime_error& e) {
      throw ProtocolError(kErrMalformedJson, e.what());
    }
    if (document.is_object()) {
      if (const obs::json::Value* type = document.find("type")) {
        if (type->is_string() && type->string == "stats") {
          responses_ok.add();
          return render_stats();
        }
        if (type->is_string() && type->string == "ping") {
          responses_ok.add();
          return pong_response();
        }
      }
    }

    const ScheduleRequest request = parse_request(payload);
    const std::string key = canonical_key(request);
    injector_.perturb(rt::FaultInjector::point(
        1, static_cast<std::int64_t>(request_id), /*phase=*/1));
    const ScheduleCache::Entry schedule_json =
        cache_.get_or_compute(key, [&request] {
          const cost::CostModel cost{arch::Machine(request.machine)};
          const std::unique_ptr<sched::Scheduler> scheduler =
              sched::SchedulerRegistry::instance().make(request.scheduler,
                                                        cost);
          const sched::Schedule schedule =
              scheduler->run(request.graph, request.total_cores);
          // Opt-in audit before the bytes become cacheable: a certification
          // failure throws, which evicts the single-flight placeholder --
          // uncertifiable schedules are never served from the cache.  A
          // cache *hit* under a certify key was therefore certified when it
          // was computed (the flag is part of the canonical key).
          if (request.certify) {
            const analysis::Certificate certificate =
                analysis::certify(request.graph, schedule, {});
            if (!certificate.ok()) {
              throw ProtocolError(
                  kErrCertification,
                  "schedule failed independent certification: " +
                      analysis::render_text(certificate.report));
            }
          }
          return serialize_schedule(schedule);
        });
    responses_ok.add();
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    latency.observe(static_cast<std::uint64_t>(micros.count()));
    if (request.certify) {
      // The hash is a pure function of the canonical bytes, so cached hits
      // carry the same certificate hash as the original miss.
      return ok_response(*schedule_json,
                         analysis::hash_hex(analysis::fnv1a64(*schedule_json)));
    }
    return ok_response(*schedule_json);
  } catch (const ProtocolError& e) {
    count_error(e.code());
    return error_response(e.code(), e.what());
  } catch (const std::exception& e) {
    // Scheduler/cost-model rejections (e.g. invalid core counts for the
    // machine) map to bad-request: the graph/machine combination cannot be
    // scheduled.
    count_error(kErrBadRequest);
    return error_response(kErrBadRequest, e.what());
  }
}

std::string Server::render_stats() const {
  const obs::MetricsRegistry& registry = obs::metrics();
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t truncated = 0;
  std::vector<std::pair<std::string, std::uint64_t>> errors;
  for (const obs::CounterSample& row : registry.counters()) {
    if (row.name == "serve.requests") requests = row.value;
    if (row.name == "serve.responses.ok") responses_ok = row.value;
    if (row.name == "serve.truncated") truncated = row.value;
    if (row.name.rfind("serve.error.", 0) == 0) {
      errors.emplace_back(row.name.substr(sizeof("serve.error.") - 1),
                          row.value);
    }
  }
  obs::HistogramSample latency;
  for (const obs::HistogramSample& row : registry.histograms()) {
    if (row.name == "serve.latency_us") latency = row;
  }

  std::string out = "{\"ok\":true,\"stats\":{";
  out += "\"requests\":" + std::to_string(requests);
  out += ",\"responses_ok\":" + std::to_string(responses_ok);
  out += ",\"truncated\":" + std::to_string(truncated);
  out += ",\"in_flight\":" + std::to_string(in_flight());
  out += ",\"cache\":{\"hits\":" + std::to_string(cache_.hits());
  out += ",\"misses\":" + std::to_string(cache_.misses());
  out += ",\"entries\":" + std::to_string(cache_.entries());
  out += ",\"evictions\":" + std::to_string(cache_.evictions());
  out += ",\"max_entries\":" + std::to_string(cache_.max_entries());
  out += ",\"value_bytes\":" + std::to_string(cache_.value_bytes()) + '}';
  out += ",\"latency_us\":{\"count\":" + std::to_string(latency.count);
  out += ",\"sum\":" + std::to_string(latency.sum);
  out += ",\"p50\":" + std::to_string(latency.p50);
  out += ",\"p90\":" + std::to_string(latency.p90) + '}';
  out += ",\"errors\":{";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, errors[i].first);
    out += ':' + std::to_string(errors[i].second);
  }
  out += "}}}";
  return out;
}

}  // namespace ptask::serve
