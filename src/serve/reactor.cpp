#include "ptask/serve/reactor.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/serve/protocol.hpp"

namespace ptask::serve {

namespace {

constexpr std::uint64_t kEventFdTag = 0;
constexpr std::uint64_t kListenerTag = 1;

double elapsed_us(Reactor::Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Reactor::Clock::now() -
                                                   since)
      .count();
}

}  // namespace

/// Per-connection state, owned exclusively by the reactor thread.
struct Reactor::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  std::string in;           ///< bytes read but not yet consumed as frames
  std::size_t in_off = 0;   ///< consumed prefix of `in` (compacted lazily)
  std::string out;          ///< encoded response bytes not yet flushed
  std::size_t out_off = 0;  ///< flushed prefix of `out`
  std::uint32_t interest = 0;  ///< current epoll event mask
  bool busy = false;           ///< a frame is in flight downstream
  bool close_after_flush = false;
  bool peer_closed = false;
  /// Frame-assembly timing: armed when the first bytes of a new frame are
  /// seen, disarmed when the frame completes.
  bool timing_armed = false;
  Clock::time_point frame_t0{};
  double span_begin_s = 0.0;
  /// Response-flush timing: armed when a response is queued on an empty
  /// output buffer.
  Clock::time_point send_t0{};

  std::size_t pending_in() const { return in.size() - in_off; }
};

/// A cross-thread request: a response frame to flush or a disconnect.
struct Reactor::Command {
  std::uint64_t conn_id = 0;
  std::string frame;
  bool close_after = false;
  bool disconnect = false;
};

Reactor::Reactor(const Options& options, FrameHandler on_frame,
                 OversizeHandler on_oversize)
    : options_(options),
      on_frame_(std::move(on_frame)),
      on_oversize_(std::move(on_oversize)) {}

Reactor::~Reactor() { stop(); }

void Reactor::start() {
  // The accept loop drains until EAGAIN, so the listener must be
  // nonblocking (the caller hands over a plain blocking socket).
  const int flags = ::fcntl(options_.listen_fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(options_.listen_fd, F_SETFL, flags | O_NONBLOCK);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("ptask_served: epoll_create1() failed");
  }
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error("ptask_served: eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kEventFdTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, options_.listen_fd, &ev);

  running_.store(true, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  close_listener_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void Reactor::stop_accepting() {
  if (!running_.load(std::memory_order_acquire)) return;
  close_listener_.store(true, std::memory_order_release);
  wake();
}

void Reactor::stop() {
  if (!running_.exchange(false)) return;
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  if (event_fd_ >= 0) {
    ::close(event_fd_);
    event_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void Reactor::respond(std::uint64_t conn_id, std::string&& frame,
                      bool close_after) {
  {
    const std::lock_guard<std::mutex> lock(commands_mutex_);
    commands_.push_back(
        Command{conn_id, std::move(frame), close_after, /*disconnect=*/false});
  }
  wake();
}

void Reactor::disconnect(std::uint64_t conn_id) {
  {
    const std::lock_guard<std::mutex> lock(commands_mutex_);
    commands_.push_back(Command{conn_id, {}, false, /*disconnect=*/true});
  }
  wake();
}

std::size_t Reactor::num_connections() const {
  return open_connections_.load(std::memory_order_relaxed);
}

void Reactor::wake() {
  if (event_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(event_fd_, &one, sizeof(one));
}

void Reactor::run() {
  // Reactor spans (recv/send) land on their own track, after the compute
  // workers' tracks.
  obs::thread_context().worker = options_.worker_track;
  bool listener_open = true;

  const auto maybe_close_listener = [&] {
    if (listener_open && close_listener_.load(std::memory_order_acquire)) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, options_.listen_fd, nullptr);
      ::close(options_.listen_fd);
      options_.listen_fd = -1;
      listener_open = false;
    }
  };

  epoll_event events[64];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kEventFdTag) {
        std::uint64_t drained = 0;
        while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        maybe_close_listener();
        drain_commands();
      } else if (tag == kListenerTag) {
        if (listener_open) handle_accept();
      } else {
        handle_conn_event(tag, events[i].events);
      }
    }
    maybe_close_listener();
  }

  // Shutdown: flush whatever responses are still queued (commands posted
  // before stop() are all in by now -- the server joins its workers first),
  // bounded by the drain deadline, then close everything.
  maybe_close_listener();
  drain_commands();
  const Clock::time_point deadline = Clock::now() + options_.drain_deadline;
  while (Clock::now() < deadline) {
    bool pending = false;
    for (auto& [id, conn] : conns_) {
      if (conn->out.size() > conn->out_off) pending = true;
    }
    if (!pending) break;
    const int n = ::epoll_wait(epoll_fd_, events, 64, 10);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kEventFdTag || tag == kListenerTag) continue;
      const auto it = conns_.find(tag);
      if (it == conns_.end()) continue;
      if (events[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) {
        flush_output(tag, *it->second);
      }
    }
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) destroy(id);
  if (listener_open && options_.listen_fd >= 0) {
    ::close(options_.listen_fd);
    options_.listen_fd = -1;
  }
}

void Reactor::handle_accept() {
  static obs::Counter& connections =
      obs::metrics().counter("serve.connections");
  while (true) {
    const int fd = ::accept4(options_.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: epoll retries
    connections.add();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->interest = EPOLLIN;
    const std::uint64_t id = next_conn_id_++;
    conn->id = id;
    epoll_event ev{};
    ev.events = conn->interest;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Reactor::handle_conn_event(std::uint64_t conn_id, std::uint32_t events) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // destroyed earlier in this batch
  Connection& conn = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    conn.peer_closed = true;
  }
  if (events & EPOLLOUT) {
    flush_output(conn_id, conn);
    if (conns_.find(conn_id) == conns_.end()) return;
  }
  if (events & (EPOLLIN | EPOLLHUP)) {
    read_input(conn);
    parse_frames(conn_id, conn);
    if (conns_.find(conn_id) == conns_.end()) return;
  }
  // A closed peer with nothing in flight and nothing to flush is garbage;
  // if a request is in flight the connection lives until its respond().
  if (conn.peer_closed && !conn.busy && conn.out.size() <= conn.out_off) {
    static obs::Counter& truncated =
        obs::metrics().counter("serve.truncated");
    // EOF after a complete header but before the payload completed: the
    // peer vanished mid-frame.
    if (conn.pending_in() >= 4) truncated.add();
    destroy(conn_id);
  }
}

void Reactor::read_input(Connection& conn) {
  if (conn.peer_closed || conn.busy) return;
  char buffer[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn.in.append(buffer, static_cast<std::size_t>(n));
      if (!conn.timing_armed && conn.pending_in() > 0) {
        conn.timing_armed = true;
        conn.frame_t0 = Clock::now();
        conn.span_begin_s = obs::enabled() ? obs::tracer().now() : 0.0;
      }
      continue;
    }
    if (n == 0) {
      conn.peer_closed = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn.peer_closed = true;
    return;
  }
}

void Reactor::parse_frames(std::uint64_t conn_id, Connection& conn) {
  static obs::Histogram& phase_recv =
      obs::metrics().histogram("serve.phase.recv_us");
  while (!conn.busy && conn.pending_in() >= 4) {
    unsigned char header[4];
    std::memcpy(header, conn.in.data() + conn.in_off, 4);
    const std::uint32_t length = decode_frame_length(header);
    if (length > options_.max_request_bytes) {
      // Oversized: answer with the structured error and drop the
      // connection once it is flushed (the payload is never read;
      // resynchronization inside the stream is not possible).
      conn.busy = true;  // stop parsing; nothing further is trusted
      const std::string response = on_oversize_(length);
      conn.close_after_flush = true;
      if (conn.out.size() <= conn.out_off) conn.send_t0 = Clock::now();
      conn.out += encode_frame(response);
      update_interest(conn);
      flush_output(conn_id, conn);
      return;
    }
    if (conn.pending_in() < 4u + length) break;  // frame incomplete
    std::string payload =
        conn.in.substr(conn.in_off + 4, length);
    conn.in_off += 4u + length;
    if (conn.in_off == conn.in.size()) {
      conn.in.clear();
      conn.in_off = 0;
    }
    const Clock::time_point t_request =
        conn.timing_armed ? conn.frame_t0 : Clock::now();
    const double span_begin_s = conn.span_begin_s;
    const double recv_us =
        conn.timing_armed ? elapsed_us(conn.frame_t0) : 0.0;
    conn.timing_armed = false;
    phase_recv.observe(
        static_cast<std::uint64_t>(recv_us > 0.0 ? recv_us : 0.0));
    if (obs::enabled()) {
      obs::Span recv_span;
      recv_span.kind = obs::SpanKind::Serve;
      recv_span.name = "serve.recv";
      recv_span.worker = obs::thread_context().worker;
      recv_span.bytes = length;
      recv_span.begin_s = span_begin_s;
      recv_span.end_s = obs::tracer().now();
      obs::tracer().record(std::move(recv_span));
    }
    // One frame in flight per connection: reading stops (EPOLLIN off)
    // until the response is flushed -- TCP backpressure bounds pipelining
    // clients at the kernel buffer.
    conn.busy = true;
    update_interest(conn);
    on_frame_(conn_id, std::move(payload), t_request, span_begin_s, recv_us);
    return;
  }
  update_interest(conn);
}

void Reactor::flush_output(std::uint64_t conn_id, Connection& conn) {
  while (conn.out.size() > conn.out_off) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_interest(conn);
      return;
    }
    // Peer gone mid-flush: drop the rest.
    conn.peer_closed = true;
    conn.out.clear();
    conn.out_off = 0;
    destroy(conn_id);
    return;
  }
  finish_flush(conn_id, conn);
}

void Reactor::finish_flush(std::uint64_t conn_id, Connection& conn) {
  static obs::Histogram& phase_send =
      obs::metrics().histogram("serve.phase.send_us");
  const std::size_t sent_bytes = conn.out.size();
  if (sent_bytes == 0) {
    // Nothing was pending (spurious wakeup); no response completed, so the
    // busy/flow-control state must not change.
    update_interest(conn);
    return;
  }
  conn.out.clear();
  conn.out_off = 0;
  const double send_us = elapsed_us(conn.send_t0);
  phase_send.observe(
      static_cast<std::uint64_t>(send_us > 0.0 ? send_us : 0.0));
  if (obs::enabled()) {
    obs::Span send_span;
    send_span.kind = obs::SpanKind::Serve;
    send_span.name = "serve.send";
    send_span.worker = obs::thread_context().worker;
    send_span.bytes = sent_bytes;
    const double end_s = obs::tracer().now();
    send_span.begin_s = end_s - send_us / 1e6;
    send_span.end_s = end_s;
    obs::tracer().record(std::move(send_span));
  }
  if (conn.close_after_flush || conn.peer_closed) {
    destroy(conn_id);
    return;
  }
  conn.busy = false;
  update_interest(conn);
  // The client may have pipelined the next request while we were busy;
  // its bytes are already buffered, so parse them now.
  if (conn.pending_in() > 0 && !conn.timing_armed) {
    conn.timing_armed = true;
    conn.frame_t0 = Clock::now();
    conn.span_begin_s = obs::enabled() ? obs::tracer().now() : 0.0;
  }
  parse_frames(conn_id, conn);
}

void Reactor::update_interest(Connection& conn) {
  std::uint32_t wanted = 0;
  if (!conn.busy && !conn.peer_closed) wanted |= EPOLLIN;
  if (conn.out.size() > conn.out_off) wanted |= EPOLLOUT;
  if (wanted == conn.interest) return;
  epoll_event ev{};
  ev.events = wanted;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.interest = wanted;
}

void Reactor::destroy(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Reactor::drain_commands() {
  std::vector<Command> batch;
  {
    const std::lock_guard<std::mutex> lock(commands_mutex_);
    batch.swap(commands_);
  }
  for (Command& command : batch) {
    const auto it = conns_.find(command.conn_id);
    if (it == conns_.end()) continue;  // peer vanished before the response
    Connection& conn = *it->second;
    if (command.disconnect) {
      destroy(command.conn_id);
      continue;
    }
    if (conn.out.size() <= conn.out_off) conn.send_t0 = Clock::now();
    conn.out += command.frame;
    if (command.close_after) conn.close_after_flush = true;
    flush_output(command.conn_id, conn);
  }
}

}  // namespace ptask::serve
