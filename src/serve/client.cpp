#include "ptask/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "ptask/obs/json.hpp"

namespace ptask::serve {

namespace {

bool read_exact(int fd, void* buffer, std::size_t length) {
  auto* out = static_cast<unsigned char*>(buffer);
  while (length > 0) {
    const ssize_t n = ::recv(fd, out, length, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += n;
    length -= static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, std::string_view data) {
  const char* out = data.data();
  std::size_t length = data.size();
  while (length > 0) {
    const ssize_t n = ::send(fd, out, length, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("ptask serve client: send failed");
    }
    out += n;
    length -= static_cast<std::size_t>(n);
  }
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::connect(const std::string& host, int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("ptask serve client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("ptask serve client: bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("ptask serve client: cannot connect to " + host +
                             ":" + std::to_string(port));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Client::call(std::string_view payload) {
  send_raw(encode_frame(payload));
  std::optional<std::string> response = read_response();
  if (!response.has_value()) {
    throw std::runtime_error("ptask serve client: connection closed");
  }
  return *std::move(response);
}

std::string Client::schedule(const ScheduleRequest& request) {
  return call(serialize_request(request));
}

std::string Client::stats() { return call("{\"type\":\"stats\"}"); }

std::string Client::metrics() { return call("{\"type\":\"metrics\"}"); }

std::string Client::trace() { return call("{\"type\":\"trace\"}"); }

void Client::send_raw(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("ptask serve client: not connected");
  write_all(fd_, bytes);
}

std::optional<std::string> Client::read_response() {
  unsigned char header[4];
  if (!read_exact(fd_, header, sizeof(header))) return std::nullopt;
  const std::uint32_t length = decode_frame_length(header);
  if (length > kMaxFrameBytes) return std::nullopt;
  std::string payload(length, '\0');
  if (length > 0 && !read_exact(fd_, payload.data(), payload.size())) {
    return std::nullopt;
  }
  return payload;
}

bool response_ok(std::string_view payload) {
  try {
    const obs::json::Value document = obs::json::parse(payload);
    const obs::json::Value* ok = document.find("ok");
    return ok != nullptr && ok->is_bool() && ok->boolean;
  } catch (const std::runtime_error&) {
    return false;
  }
}

std::string response_error_code(std::string_view payload) {
  try {
    const obs::json::Value document = obs::json::parse(payload);
    if (const obs::json::Value* error = document.find("error")) {
      if (const obs::json::Value* code = error->find("code")) {
        if (code->is_string()) return code->string;
      }
    }
  } catch (const std::runtime_error&) {
  }
  return {};
}

std::string response_schedule_json(std::string_view payload) {
  // The server produces exactly {"ok":true[,"request_id":"..."],
  // "schedule":<body>[,"certificate_hash":"0x<16 hex>"]}; slicing the known
  // envelope off preserves the body's bytes untouched.  Locating the
  // schedule member by the literal `,"schedule":` is safe even against a
  // hostile request_id: inside a JSON string every raw quote is escaped as
  // \", so the bare-quote byte sequence of the key cannot occur there.
  constexpr std::string_view kOkPrefix = "{\"ok\":true";
  constexpr std::string_view kScheduleKey = ",\"schedule\":";
  if (payload.size() < kOkPrefix.size() + kScheduleKey.size() + 1 ||
      payload.substr(0, kOkPrefix.size()) != kOkPrefix ||
      payload.back() != '}') {
    return {};
  }
  const std::size_t key_pos = payload.find(kScheduleKey, kOkPrefix.size());
  if (key_pos == std::string_view::npos) return {};
  const std::size_t body_pos = key_pos + kScheduleKey.size();
  std::string_view body =
      payload.substr(body_pos, payload.size() - body_pos - 1);
  constexpr std::string_view kCertKey = ",\"certificate_hash\":\"";
  constexpr std::size_t kCertSuffix = kCertKey.size() + 18 + 1;  // "0x"+16, '"'
  if (body.size() > kCertSuffix &&
      body.substr(body.size() - kCertSuffix, kCertKey.size()) == kCertKey &&
      body.back() == '"') {
    body.remove_suffix(kCertSuffix);
  }
  return std::string(body);
}

std::string response_certificate_hash(std::string_view payload) {
  try {
    const obs::json::Value document = obs::json::parse(payload);
    if (const obs::json::Value* hash = document.find("certificate_hash")) {
      if (hash->is_string()) return hash->string;
    }
  } catch (const std::runtime_error&) {
  }
  return {};
}

std::string response_request_id(std::string_view payload) {
  try {
    const obs::json::Value document = obs::json::parse(payload);
    if (const obs::json::Value* id = document.find("request_id")) {
      if (id->is_string()) return id->string;
    }
  } catch (const std::runtime_error&) {
  }
  return {};
}

std::string response_metrics_text(std::string_view payload) {
  try {
    const obs::json::Value document = obs::json::parse(payload);
    if (const obs::json::Value* metrics = document.find("metrics")) {
      if (metrics->is_string()) return metrics->string;
    }
  } catch (const std::runtime_error&) {
  }
  return {};
}

std::string response_trace_json(std::string_view payload) {
  // The trace object is embedded raw; return the exact sub-range between
  // the "trace": key and the closing brace of the envelope.  The key
  // cannot occur earlier inside a string member (raw quotes are escaped
  // there), so the first match is the real member.
  constexpr std::string_view kTraceKey = "\"trace\":";
  const std::size_t key_pos = payload.find(kTraceKey);
  if (key_pos == std::string_view::npos || payload.empty() ||
      payload.back() != '}') {
    return {};
  }
  const std::size_t body_pos = key_pos + kTraceKey.size();
  if (body_pos >= payload.size() - 1) return {};
  return std::string(
      payload.substr(body_pos, payload.size() - body_pos - 1));
}

}  // namespace ptask::serve
