#include "ptask/serve/protocol.hpp"

#include <cinttypes>
#include <climits>
#include <cmath>
#include <cstdio>
#include <utility>

#include "ptask/sched/registry.hpp"

namespace ptask::serve {

namespace {

using obs::json::Value;

constexpr std::string_view kKindNames[] = {"bcast", "allgather", "allreduce",
                                           "barrier", "exchange"};
constexpr std::string_view kScopeNames[] = {"global", "group", "orthogonal"};

[[noreturn]] void bad_request(const std::string& message) {
  throw ProtocolError(kErrBadRequest, message);
}

/// Member lookup with a type check; `where` names the enclosing object in
/// error messages.
const Value& require(const Value& object, std::string_view key,
                     Value::Type type, const char* where) {
  const Value* member = object.find(key);
  if (member == nullptr) {
    bad_request(std::string(where) + " is missing member '" +
                std::string(key) + "'");
  }
  if (member->type != type) {
    bad_request(std::string(where) + " member '" + std::string(key) +
                "' has the wrong type");
  }
  return *member;
}

double require_number(const Value& object, std::string_view key,
                      const char* where) {
  return require(object, key, Value::Type::Number, where).number;
}

/// A JSON number that must be a finite integer in [lo, hi].
long long require_int(const Value& object, std::string_view key,
                      const char* where, long long lo, long long hi) {
  const double number = require_number(object, key, where);
  if (!std::isfinite(number) || number != std::floor(number) || number < lo ||
      number > hi) {
    bad_request(std::string(where) + " member '" + std::string(key) +
                "' is not an integer in range");
  }
  return static_cast<long long>(number);
}

core::CollectiveKind parse_kind(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kKindNames); ++i) {
    if (kKindNames[i] == name) return static_cast<core::CollectiveKind>(i);
  }
  bad_request("unknown collective kind '" + name + "'");
}

core::CommScope parse_scope(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kScopeNames); ++i) {
    if (kScopeNames[i] == name) return static_cast<core::CommScope>(i);
  }
  bad_request("unknown collective scope '" + name + "'");
}

core::MTask parse_task(const Value& value, int index) {
  if (!value.is_object()) bad_request("graph.tasks entries must be objects");
  const char* where = "task";
  core::MTask task(require(value, "name", Value::Type::String, where).string,
                   require_number(value, "work", where));
  if (!std::isfinite(task.work_flop()) || task.work_flop() < 0.0) {
    bad_request("task " + std::to_string(index) +
                " has negative or non-finite work");
  }
  task.set_max_cores(
      static_cast<int>(require_int(value, "max_cores", where, 1, INT_MAX)));
  task.set_marker(require(value, "marker", Value::Type::Bool, where).boolean);
  const Value& comms = require(value, "comms", Value::Type::Array, where);
  for (const Value& comm : comms.array) {
    if (!comm.is_object()) bad_request("task comms entries must be objects");
    core::CollectiveOp op;
    op.kind =
        parse_kind(require(comm, "kind", Value::Type::String, "comm").string);
    op.scope =
        parse_scope(require(comm, "scope", Value::Type::String, "comm").string);
    op.data_bytes = static_cast<std::size_t>(
        require_int(comm, "bytes", "comm", 0, (1ll << 53)));
    op.repeat =
        static_cast<int>(require_int(comm, "repeat", "comm", 0, INT_MAX));
    task.add_comm(op);
  }
  return task;
}

arch::MachineSpec parse_machine(const Value& value) {
  if (!value.is_object()) bad_request("'machine' must be an object");
  const char* where = "machine";
  arch::MachineSpec spec;
  spec.name = require(value, "name", Value::Type::String, where).string;
  spec.num_nodes =
      static_cast<int>(require_int(value, "num_nodes", where, 1, 1 << 20));
  spec.procs_per_node =
      static_cast<int>(require_int(value, "procs_per_node", where, 1, 1 << 20));
  spec.cores_per_proc =
      static_cast<int>(require_int(value, "cores_per_proc", where, 1, 1 << 20));
  spec.core_flops = require_number(value, "core_flops", where);
  spec.core_efficiency = require_number(value, "core_efficiency", where);
  spec.omp_region_overhead_s =
      require_number(value, "omp_region_overhead_s", where);
  if (!(spec.core_flops > 0.0) || !std::isfinite(spec.core_flops) ||
      !(spec.core_efficiency > 0.0) || !std::isfinite(spec.core_efficiency)) {
    bad_request("machine core_flops / core_efficiency must be positive");
  }
  const auto parse_link = [&](std::string_view key) {
    const Value& link = require(value, key, Value::Type::Object, where);
    arch::LinkParams params;
    params.latency_s = require_number(link, "latency_s", "link");
    params.bandwidth_Bps = require_number(link, "bandwidth_Bps", "link");
    if (!(params.bandwidth_Bps > 0.0) || params.latency_s < 0.0) {
      bad_request("link parameters must have positive bandwidth and "
                  "non-negative latency");
    }
    return params;
  };
  spec.intra_processor = parse_link("intra_processor");
  spec.intra_node = parse_link("intra_node");
  spec.inter_node = parse_link("inter_node");
  return spec;
}

core::TaskGraph parse_graph(const Value& value) {
  if (!value.is_object()) bad_request("'graph' must be an object");
  const Value& tasks = require(value, "tasks", Value::Type::Array, "graph");
  core::TaskGraph graph;
  int index = 0;
  for (const Value& task : tasks.array) {
    graph.add_task(parse_task(task, index++));
  }
  const Value& edges = require(value, "edges", Value::Type::Array, "graph");
  for (const Value& edge : edges.array) {
    if (!edge.is_array() || edge.array.size() != 2 ||
        !edge.array[0].is_number() || !edge.array[1].is_number()) {
      bad_request("graph.edges entries must be [from, to] pairs");
    }
    const double from_d = edge.array[0].number;
    const double to_d = edge.array[1].number;
    if (from_d != std::floor(from_d) || to_d != std::floor(to_d) ||
        from_d < 0 || to_d < 0 || from_d >= graph.num_tasks() ||
        to_d >= graph.num_tasks()) {
      bad_request("graph edge endpoint out of range");
    }
    try {
      graph.add_edge(static_cast<core::TaskId>(from_d),
                     static_cast<core::TaskId>(to_d));
    } catch (const std::invalid_argument& e) {
      bad_request(std::string("graph edge rejected: ") + e.what());
    }
  }
  return graph;
}

void append_link(std::string& out, std::string_view key,
                 const arch::LinkParams& link) {
  out += '"';
  out += key;
  out += "\":{\"latency_s\":";
  append_json_double(out, link.latency_s);
  out += ",\"bandwidth_Bps\":";
  append_json_double(out, link.bandwidth_Bps);
  out += '}';
}

void append_int_array(std::string& out, const std::vector<int>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace

namespace {

/// The task fields shared by graph tasks and delta tasks (everything but
/// the enclosing braces), matching serialize_graph's task rendering.
void append_task_fields(std::string& out, const core::MTask& task) {
  out += "\"name\":";
  append_json_string(out, task.name());
  out += ",\"work\":";
  append_json_double(out, task.work_flop());
  out += ",\"max_cores\":" + std::to_string(task.max_cores());
  out += ",\"marker\":";
  out += task.is_marker() ? "true" : "false";
  out += ",\"comms\":[";
  for (std::size_t i = 0; i < task.comms().size(); ++i) {
    if (i != 0) out += ',';
    const core::CollectiveOp& op = task.comms()[i];
    out += "{\"kind\":\"";
    out += kKindNames[static_cast<std::size_t>(op.kind)];
    out += "\",\"scope\":\"";
    out += kScopeNames[static_cast<std::size_t>(op.scope)];
    out += "\",\"bytes\":" + std::to_string(op.data_bytes);
    out += ",\"repeat\":" + std::to_string(op.repeat) + '}';
  }
  out += ']';
}

void append_annotations(std::string& out, const std::string& request_id,
                        const std::string& family) {
  if (!request_id.empty()) {
    out += ",\"request_id\":";
    append_json_string(out, request_id);
  }
  if (!family.empty()) {
    out += ",\"family\":";
    append_json_string(out, family);
  }
}

/// Parses the shared request_id/family annotation members.
void parse_annotations(const Value& document, std::string* request_id,
                       std::string* family) {
  if (const Value* id = document.find("request_id")) {
    if (!id->is_string()) {
      bad_request("request member 'request_id' has the wrong type");
    }
    *request_id = id->string;
  }
  if (family != nullptr) {
    if (const Value* tag = document.find("family")) {
      if (!tag->is_string()) {
        bad_request("request member 'family' has the wrong type");
      }
      *family = tag->string;
    }
  }
}

Value parse_document(std::string_view payload) {
  try {
    return obs::json::parse(payload);
  } catch (const std::runtime_error& e) {
    throw ProtocolError(kErrMalformedJson, e.what());
  }
}

/// Checks the "type" member matches the handler that was dispatched to.
void require_type(const Value& document, std::string_view type) {
  if (!document.is_object()) bad_request("request must be a JSON object");
  const Value& member =
      require(document, "type", Value::Type::String, "request");
  if (member.string != type) {
    bad_request("request member 'type' is not '" + std::string(type) + "'");
  }
}

}  // namespace

std::string_view describe_error(std::string_view code) {
  if (code == kErrMalformedJson) return "malformed JSON payload";
  if (code == kErrBadRequest) return "bad request (missing/invalid fields)";
  if (code == kErrUnknownScheduler) return "unknown scheduler name";
  if (code == kErrEmptyGraph) return "empty graph (zero tasks)";
  if (code == kErrTooLarge) return "request exceeds the configured size limit";
  if (code == kErrCertification) {
    return "schedule failed independent certification";
  }
  if (code == kErrSession) {
    return "session error (unknown session, session limit, or invalid delta)";
  }
  if (code == kErrOverloaded) {
    return "overloaded: the admission queue is full; retry after the hint";
  }
  return {};
}

std::string encode_frame(std::string_view payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(payload.size() + 4);
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

std::uint32_t decode_frame_length(const unsigned char header[4]) {
  return (static_cast<std::uint32_t>(header[0]) << 24) |
         (static_cast<std::uint32_t>(header[1]) << 16) |
         (static_cast<std::uint32_t>(header[2]) << 8) |
         static_cast<std::uint32_t>(header[3]);
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

std::string serialize_machine(const arch::MachineSpec& machine) {
  std::string out = "{\"name\":";
  append_json_string(out, machine.name);
  out += ",\"num_nodes\":" + std::to_string(machine.num_nodes);
  out += ",\"procs_per_node\":" + std::to_string(machine.procs_per_node);
  out += ",\"cores_per_proc\":" + std::to_string(machine.cores_per_proc);
  out += ",\"core_flops\":";
  append_json_double(out, machine.core_flops);
  out += ",\"core_efficiency\":";
  append_json_double(out, machine.core_efficiency);
  out += ",\"omp_region_overhead_s\":";
  append_json_double(out, machine.omp_region_overhead_s);
  out += ',';
  append_link(out, "intra_processor", machine.intra_processor);
  out += ',';
  append_link(out, "intra_node", machine.intra_node);
  out += ',';
  append_link(out, "inter_node", machine.inter_node);
  out += '}';
  return out;
}

std::string serialize_graph(const core::TaskGraph& graph) {
  std::string out = "{\"tasks\":[";
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    if (id != 0) out += ',';
    out += '{';
    append_task_fields(out, graph.task(id));
    out += '}';
  }
  out += "],\"edges\":[";
  bool first = true;
  for (core::TaskId from = 0; from < graph.num_tasks(); ++from) {
    for (const core::TaskId to : graph.successors(from)) {
      if (!first) out += ',';
      first = false;
      out += '[' + std::to_string(from) + ',' + std::to_string(to) + ']';
    }
  }
  out += "]}";
  return out;
}

std::string serialize_request(const ScheduleRequest& request,
                              bool include_annotations) {
  std::string out = "{\"type\":\"schedule\",\"scheduler\":";
  append_json_string(out, request.scheduler);
  out += ",\"total_cores\":" + std::to_string(request.total_cores);
  out += ",\"machine\":" + serialize_machine(request.machine);
  out += ",\"graph\":" + serialize_graph(request.graph);
  // Optional members are emitted only when set: pre-certification request
  // bytes stay stable, and parse -> serialize still round-trips exactly.
  if (request.certify) out += ",\"certify\":true";
  if (include_annotations) {
    if (!request.request_id.empty()) {
      out += ",\"request_id\":";
      append_json_string(out, request.request_id);
    }
    if (!request.family.empty()) {
      out += ",\"family\":";
      append_json_string(out, request.family);
    }
  }
  out += '}';
  return out;
}

ScheduleRequest parse_request(std::string_view payload) {
  Value document;
  try {
    document = obs::json::parse(payload);
  } catch (const std::runtime_error& e) {
    throw ProtocolError(kErrMalformedJson, e.what());
  }
  if (!document.is_object()) bad_request("request must be a JSON object");

  ScheduleRequest request;
  request.scheduler =
      require(document, "scheduler", Value::Type::String, "request").string;
  if (!sched::SchedulerRegistry::instance().contains(request.scheduler)) {
    throw ProtocolError(kErrUnknownScheduler,
                        "unknown scheduler '" + request.scheduler + "'");
  }
  request.total_cores = static_cast<int>(
      require_int(document, "total_cores", "request", 1, 1 << 24));
  request.machine =
      parse_machine(require(document, "machine", Value::Type::Object, "request"));
  request.graph =
      parse_graph(require(document, "graph", Value::Type::Object, "request"));
  if (request.graph.num_tasks() == 0) {
    throw ProtocolError(kErrEmptyGraph, "graph has zero tasks");
  }
  if (const Value* certify = document.find("certify")) {
    if (!certify->is_bool()) {
      bad_request("request member 'certify' has the wrong type");
    }
    request.certify = certify->boolean;
  }
  if (const Value* id = document.find("request_id")) {
    if (!id->is_string()) {
      bad_request("request member 'request_id' has the wrong type");
    }
    request.request_id = id->string;
  }
  if (const Value* family = document.find("family")) {
    if (!family->is_string()) {
      bad_request("request member 'family' has the wrong type");
    }
    request.family = family->string;
  }
  return request;
}

std::string canonical_key(const ScheduleRequest& request) {
  return serialize_request(request, /*include_annotations=*/false);
}

std::string serialize_submit(const SubmitRequest& request) {
  std::string out = "{\"type\":\"submit\",\"total_cores\":" +
                    std::to_string(request.total_cores);
  out += ",\"machine\":" + serialize_machine(request.machine);
  out += ",\"graph\":" + serialize_graph(request.graph);
  out += ",\"release_time\":";
  append_json_double(out, request.release_time);
  append_annotations(out, request.request_id, request.family);
  out += '}';
  return out;
}

std::string serialize_extend(const ExtendRequest& request) {
  std::string out = "{\"type\":\"extend\",\"session\":";
  append_json_string(out, request.session);
  out += ",\"delta\":{\"release_time\":";
  append_json_double(out, request.delta.release_time);
  out += ",\"tasks\":[";
  for (std::size_t i = 0; i < request.delta.tasks.size(); ++i) {
    if (i != 0) out += ',';
    const sched::ArrivingTask& arriving = request.delta.tasks[i];
    out += '{';
    append_task_fields(out, arriving.task);
    out += ",\"release_time\":";
    append_json_double(out, arriving.release_time);
    out += ",\"priority\":" + std::to_string(arriving.priority);
    out += '}';
  }
  out += "],\"edges\":[";
  for (std::size_t i = 0; i < request.delta.edges.size(); ++i) {
    if (i != 0) out += ',';
    out += '[' + std::to_string(request.delta.edges[i].first) + ',' +
           std::to_string(request.delta.edges[i].second) + ']';
  }
  out += "]}";
  append_annotations(out, request.request_id, request.family);
  out += '}';
  return out;
}

std::string serialize_close(const CloseRequest& request) {
  std::string out = "{\"type\":\"close\",\"session\":";
  append_json_string(out, request.session);
  append_annotations(out, request.request_id, {});
  out += '}';
  return out;
}

SubmitRequest parse_submit(std::string_view payload) {
  const Value document = parse_document(payload);
  require_type(document, "submit");
  SubmitRequest request;
  request.total_cores = static_cast<int>(
      require_int(document, "total_cores", "request", 1, 1 << 24));
  request.machine = parse_machine(
      require(document, "machine", Value::Type::Object, "request"));
  request.graph =
      parse_graph(require(document, "graph", Value::Type::Object, "request"));
  if (request.graph.num_tasks() == 0) {
    throw ProtocolError(kErrEmptyGraph, "graph has zero tasks");
  }
  if (const Value* release = document.find("release_time")) {
    if (!release->is_number() || !std::isfinite(release->number)) {
      bad_request("request member 'release_time' must be a finite number");
    }
    request.release_time = release->number;
  }
  parse_annotations(document, &request.request_id, &request.family);
  return request;
}

ExtendRequest parse_extend(std::string_view payload) {
  const Value document = parse_document(payload);
  require_type(document, "extend");
  ExtendRequest request;
  request.session =
      require(document, "session", Value::Type::String, "request").string;
  const Value& delta =
      require(document, "delta", Value::Type::Object, "request");
  const double release = require_number(delta, "release_time", "delta");
  if (!std::isfinite(release)) {
    bad_request("delta member 'release_time' must be finite");
  }
  request.delta.release_time = release;
  const Value& tasks = require(delta, "tasks", Value::Type::Array, "delta");
  int index = 0;
  for (const Value& value : tasks.array) {
    sched::ArrivingTask arriving;
    arriving.task = parse_task(value, index++);
    arriving.release_time = request.delta.release_time;
    if (const Value* task_release = value.find("release_time")) {
      if (!task_release->is_number() || !std::isfinite(task_release->number)) {
        bad_request("delta task 'release_time' must be a finite number");
      }
      arriving.release_time = task_release->number;
    }
    if (value.find("priority") != nullptr) {
      arriving.priority = static_cast<int>(
          require_int(value, "priority", "delta task", INT_MIN, INT_MAX));
    }
    request.delta.tasks.push_back(std::move(arriving));
  }
  const Value& edges = require(delta, "edges", Value::Type::Array, "delta");
  for (const Value& edge : edges.array) {
    if (!edge.is_array() || edge.array.size() != 2 ||
        !edge.array[0].is_number() || !edge.array[1].is_number()) {
      bad_request("delta.edges entries must be [from, to] pairs");
    }
    const double from_d = edge.array[0].number;
    const double to_d = edge.array[1].number;
    if (from_d != std::floor(from_d) || to_d != std::floor(to_d) ||
        from_d < 0 || to_d < 0 || from_d > INT_MAX || to_d > INT_MAX) {
      bad_request("delta edge endpoint is not a task id");
    }
    // Range/cycle checks against the *accumulated* session graph happen
    // when the delta is applied (PTS007), not here.
    request.delta.edges.emplace_back(static_cast<core::TaskId>(from_d),
                                     static_cast<core::TaskId>(to_d));
  }
  parse_annotations(document, &request.request_id, &request.family);
  return request;
}

CloseRequest parse_close(std::string_view payload) {
  const Value document = parse_document(payload);
  require_type(document, "close");
  CloseRequest request;
  request.session =
      require(document, "session", Value::Type::String, "request").string;
  parse_annotations(document, &request.request_id, nullptr);
  return request;
}

std::string extract_request_id_loose(std::string_view payload) {
  constexpr std::string_view kKey = "\"request_id\"";
  const std::size_t key_pos = payload.find(kKey);
  if (key_pos == std::string_view::npos) return {};
  std::size_t pos = key_pos + kKey.size();
  const auto skip_ws = [&] {
    while (pos < payload.size() &&
           (payload[pos] == ' ' || payload[pos] == '\t' ||
            payload[pos] == '\n' || payload[pos] == '\r')) {
      ++pos;
    }
  };
  skip_ws();
  if (pos >= payload.size() || payload[pos] != ':') return {};
  ++pos;
  skip_ws();
  if (pos >= payload.size() || payload[pos] != '"') return {};
  ++pos;
  std::string id;
  while (pos < payload.size() && payload[pos] != '"') {
    char c = payload[pos];
    if (c == '\\' && pos + 1 < payload.size()) {
      ++pos;
      switch (payload[pos]) {
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        default: c = payload[pos];
      }
    }
    id.push_back(c);
    ++pos;
  }
  if (pos >= payload.size()) return {};  // unterminated string
  return id;
}

std::string serialize_schedule(const sched::Schedule& schedule) {
  std::string out = "{\"strategy\":";
  append_json_string(out, schedule.strategy);
  out += ",\"total_cores\":" + std::to_string(schedule.total_cores());
  out += ",\"makespan\":";
  append_json_double(out, schedule.makespan());
  out += ",\"allocation\":";
  append_int_array(out, schedule.allocation);
  out += ",\"contraction\":[";
  const core::ChainContraction& contraction = schedule.layered.contraction;
  for (std::size_t c = 0; c < contraction.members.size(); ++c) {
    if (c != 0) out += ',';
    append_int_array(out, contraction.members[c]);
  }
  out += "],\"slots\":[";
  for (std::size_t i = 0; i < schedule.gantt.slots.size(); ++i) {
    if (i != 0) out += ',';
    const sched::TaskSlot& slot = schedule.gantt.slots[i];
    out += "{\"cores\":";
    append_int_array(out, slot.cores);
    out += ",\"start\":";
    append_json_double(out, slot.start);
    out += ",\"finish\":";
    append_json_double(out, slot.finish);
    out += '}';
  }
  out += "],\"layers\":[";
  for (std::size_t l = 0; l < schedule.layered.layers.size(); ++l) {
    if (l != 0) out += ',';
    const sched::ScheduledLayer& layer = schedule.layered.layers[l];
    out += "{\"tasks\":";
    append_int_array(out, layer.tasks);
    out += ",\"group_sizes\":";
    append_int_array(out, layer.group_sizes);
    out += ",\"task_group\":";
    append_int_array(out, layer.task_group);
    out += ",\"predicted_time\":";
    append_json_double(out, layer.predicted_time);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string ok_response(std::string_view schedule_json) {
  std::string out = "{\"ok\":true,\"schedule\":";
  out += schedule_json;
  out += '}';
  return out;
}

std::string ok_response(std::string_view schedule_json,
                        std::string_view certificate_hash) {
  std::string out = "{\"ok\":true,\"schedule\":";
  out += schedule_json;
  out += ",\"certificate_hash\":";
  append_json_string(out, certificate_hash);
  out += '}';
  return out;
}

std::string error_response(std::string_view code, std::string_view message) {
  std::string out = "{\"ok\":false,\"error\":{\"code\":";
  append_json_string(out, code);
  out += ",\"message\":";
  append_json_string(out, message);
  out += "}}";
  return out;
}

std::string overload_response(std::string_view message,
                              std::uint64_t retry_after_ms) {
  std::string out = "{\"ok\":false,\"error\":{\"code\":";
  append_json_string(out, kErrOverloaded);
  out += ",\"message\":";
  append_json_string(out, message);
  out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  out += "}}";
  return out;
}

std::int64_t response_retry_after_ms(std::string_view payload) {
  try {
    const obs::json::Value document = obs::json::parse(payload);
    if (const obs::json::Value* error = document.find("error")) {
      if (const obs::json::Value* hint = error->find("retry_after_ms")) {
        if (hint->is_number()) return static_cast<std::int64_t>(hint->number);
      }
    }
  } catch (const std::runtime_error&) {
  }
  return -1;
}

std::string pong_response() { return "{\"ok\":true,\"pong\":true}"; }

std::string with_request_id(std::string_view response, std::string_view id) {
  constexpr std::string_view kOk = "{\"ok\":true";
  constexpr std::string_view kErr = "{\"ok\":false";
  std::size_t pos = 0;
  if (response.substr(0, kOk.size()) == kOk) {
    pos = kOk.size();
  } else if (response.substr(0, kErr.size()) == kErr) {
    pos = kErr.size();
  } else {
    return std::string(response);
  }
  std::string out(response.substr(0, pos));
  out += ",\"request_id\":";
  append_json_string(out, id);
  out += response.substr(pos);
  return out;
}

std::string metrics_response(std::string_view exposition) {
  std::string out = "{\"ok\":true,\"metrics\":";
  append_json_string(out, exposition);
  out += '}';
  return out;
}

std::string session_response(std::string_view session_id,
                             const sched::RepairStats& stats,
                             std::string_view schedule_json) {
  std::string out = "{\"ok\":true,\"session\":";
  append_json_string(out, session_id);
  out += ",\"incremental\":{\"total_layers\":" +
         std::to_string(stats.total_layers);
  out += ",\"layers_reused\":" + std::to_string(stats.layers_reused);
  out += ",\"layers_scheduled\":" + std::to_string(stats.layers_scheduled);
  out += ",\"settled_prefix\":" + std::to_string(stats.settled_prefix) + '}';
  // "schedule" must stay the LAST member: Client::response_schedule_json
  // slices from the "schedule" key to the closing brace of the response.
  out += ",\"schedule\":";
  out += schedule_json;
  out += '}';
  return out;
}

std::string close_response(std::string_view session_id) {
  std::string out = "{\"ok\":true,\"session\":";
  append_json_string(out, session_id);
  out += ",\"closed\":true}";
  return out;
}

std::string trace_response(std::string_view trace_object) {
  std::string out = "{\"ok\":true,\"trace\":";
  out += trace_object;
  out += '}';
  return out;
}

}  // namespace ptask::serve
