#include "ptask/serve/schedule_cache.hpp"

#include <iterator>

#include "ptask/obs/metrics.hpp"

namespace ptask::serve {

ScheduleCache::Shard& ScheduleCache::shard_for(const std::string& key) {
  const std::size_t hash = std::hash<std::string>{}(key);
  return shards_[hash % kShards];
}

ScheduleCache::Entry ScheduleCache::get_or_compute(
    const std::string& key, const std::function<std::string()>& compute) {
  static obs::Counter& hit_counter = obs::metrics().counter("serve.cache.hit");
  static obs::Counter& miss_counter =
      obs::metrics().counter("serve.cache.miss");

  Shard& shard = shard_for(key);
  std::promise<Entry> promise;
  std::shared_future<Entry> future;
  bool owner = false;
  bool ready_hit = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.add();
      future = it->second.future;
      ready_hit = it->second.ready;
    } else {
      owner = true;
      future = promise.get_future().share();
      shard.entries.emplace(key, Slot{future, false});
    }
  }
  if (!owner) {
    // A hit on a completed entry refreshes its LRU recency (outside the
    // shard lock; the LRU mutex is never nested inside a shard mutex).  A
    // hit on an in-flight placeholder is not on the LRU list yet -- the
    // owner adds it when it publishes.
    if (ready_hit) touch(key);
    // Another thread owns the computation: wait for its result.  get() on
    // the shared future rethrows the computing thread's exception.
    return future.get();
  }

  // This thread created the placeholder: run the computation (outside the
  // shard lock) and publish the result -- or the exception -- to every
  // waiter.
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.add();
  try {
    Entry value = std::make_shared<const std::string>(compute());
    promise.set_value(value);
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(key);
      if (it != shard.entries.end()) it->second.ready = true;
    }
    // Now that the entry is READY it becomes evictable: register its
    // recency and apply the cap.
    touch(key);
    enforce_cap();
    return value;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.entries.erase(key);
    }
    throw;
  }
}

void ScheduleCache::touch(const std::string& key) {
  if (max_entries_ == 0) return;
  const std::lock_guard<std::mutex> lock(lru_mutex_);
  const auto it = lru_pos_.find(key);
  if (it != lru_pos_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(key);
    lru_pos_[key] = lru_.begin();
  }
}

void ScheduleCache::enforce_cap() {
  if (max_entries_ == 0) return;
  static obs::Counter& eviction_counter =
      obs::metrics().counter("serve.cache.evictions");
  while (true) {
    std::string victim;
    {
      const std::lock_guard<std::mutex> lock(lru_mutex_);
      if (lru_.size() <= max_entries_) return;
      victim = std::move(lru_.back());
      lru_.pop_back();
      lru_pos_.erase(victim);
    }
    // The shard lock is taken only after the LRU lock is released.  Only a
    // READY entry is dropped: a concurrent clear()/eviction may have
    // removed it already, and an in-flight placeholder under the same key
    // (recomputed after a clear) must not lose its single flight.
    Shard& shard = shard_for(victim);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(victim);
    if (it != shard.entries.end() && it->second.ready) {
      shard.entries.erase(it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      eviction_counter.add();
    }
  }
}

std::size_t ScheduleCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, slot] : shard.entries) {
      if (slot.ready) ++total;
    }
  }
  return total;
}

std::size_t ScheduleCache::value_bytes() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, slot] : shard.entries) {
      if (slot.ready) total += slot.future.get()->size();
    }
  }
  return total;
}

void ScheduleCache::clear() {
  {
    const std::lock_guard<std::mutex> lock(lru_mutex_);
    lru_.clear();
    lru_pos_.clear();
  }
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      it = it->second.ready ? shard.entries.erase(it) : std::next(it);
    }
  }
}

}  // namespace ptask::serve
