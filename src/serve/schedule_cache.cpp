#include "ptask/serve/schedule_cache.hpp"

#include <iterator>

#include "ptask/obs/metrics.hpp"

namespace ptask::serve {

ScheduleCache::Shard& ScheduleCache::shard_for(const std::string& key) {
  const std::size_t hash = std::hash<std::string>{}(key);
  return shards_[hash % kShards];
}

ScheduleCache::Entry ScheduleCache::get_or_compute(
    const std::string& key, const std::function<std::string()>& compute) {
  static obs::Counter& hit_counter = obs::metrics().counter("serve.cache.hit");
  static obs::Counter& miss_counter =
      obs::metrics().counter("serve.cache.miss");

  Shard& shard = shard_for(key);
  std::promise<Entry> promise;
  std::shared_future<Entry> future;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.add();
      future = it->second.future;
    } else {
      owner = true;
      future = promise.get_future().share();
      shard.entries.emplace(key, Slot{future, false});
    }
  }
  if (!owner) {
    // Another thread owns the computation: wait for its result.  get() on
    // the shared future rethrows the computing thread's exception.
    return future.get();
  }

  // This thread created the placeholder: run the computation (outside the
  // shard lock) and publish the result -- or the exception -- to every
  // waiter.
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.add();
  try {
    Entry value = std::make_shared<const std::string>(compute());
    promise.set_value(value);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) it->second.ready = true;
    return value;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.entries.erase(key);
    }
    throw;
  }
}

std::size_t ScheduleCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, slot] : shard.entries) {
      if (slot.ready) ++total;
    }
  }
  return total;
}

std::size_t ScheduleCache::value_bytes() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, slot] : shard.entries) {
      if (slot.ready) total += slot.future.get()->size();
    }
  }
  return total;
}

void ScheduleCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      it = it->second.ready ? shard.entries.erase(it) : std::next(it);
    }
  }
}

}  // namespace ptask::serve
