#include "ptask/map/mapping.hpp"

#include <numeric>
#include <stdexcept>

namespace ptask::map {

cost::LayerLayout map_layer(std::span<const int> group_sizes,
                            std::span<const int> sequence) {
  const int total = std::accumulate(group_sizes.begin(), group_sizes.end(), 0);
  if (total > static_cast<int>(sequence.size())) {
    throw std::invalid_argument("not enough physical cores for the layer");
  }
  cost::LayerLayout layout;
  layout.groups.reserve(group_sizes.size());
  std::size_t offset = 0;
  for (int size : group_sizes) {
    if (size <= 0) throw std::invalid_argument("non-positive group size");
    cost::GroupLayout group;
    group.cores.assign(sequence.begin() + static_cast<std::ptrdiff_t>(offset),
                       sequence.begin() +
                           static_cast<std::ptrdiff_t>(offset + size));
    layout.groups.push_back(std::move(group));
    offset += static_cast<std::size_t>(size);
  }
  return layout;
}

std::vector<cost::LayerLayout> map_schedule(
    const sched::LayeredSchedule& schedule, const arch::Machine& machine,
    Strategy strategy, int d) {
  if (schedule.total_cores > machine.total_cores()) {
    throw std::invalid_argument("schedule uses more cores than the machine");
  }
  const std::vector<int> sequence = physical_sequence(machine, strategy, d);
  std::vector<cost::LayerLayout> layouts;
  layouts.reserve(schedule.layers.size());
  for (const sched::ScheduledLayer& layer : schedule.layers) {
    layouts.push_back(map_layer(layer.group_sizes, sequence));
  }
  return layouts;
}

std::vector<cost::LayerLayout> map_schedule(const sched::Schedule& schedule,
                                            const arch::Machine& machine,
                                            Strategy strategy, int d) {
  if (!schedule.has_layers()) {
    throw std::invalid_argument(
        "schedule '" + schedule.strategy +
        "' has no layer structure to map (allocation-only strategy)");
  }
  return map_schedule(schedule.layered, machine, strategy, d);
}

void MapCoresPass::run(sched::PassContext& ctx) const {
  const arch::Machine& machine = ctx.cost->machine();
  if (ctx.total_cores > machine.total_cores()) {
    throw std::invalid_argument("schedule uses more cores than the machine");
  }
  const std::vector<int> sequence = physical_sequence(machine, strategy_, d_);
  ctx.layouts.clear();
  ctx.layouts.reserve(ctx.layers.size());
  for (const sched::ScheduledLayer& layer : ctx.layers) {
    ctx.layouts.push_back(map_layer(layer.group_sizes, sequence));
  }
  ctx.notes.push_back(std::string("map-cores: ") + to_string(strategy_));
}

}  // namespace ptask::map
