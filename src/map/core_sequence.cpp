#include "ptask/map/core_sequence.hpp"

#include <stdexcept>

namespace ptask::map {

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::Consecutive:
      return "consecutive";
    case Strategy::Scattered:
      return "scattered";
    case Strategy::Mixed:
      return "mixed";
  }
  return "unknown";
}

std::string strategy_label(Strategy strategy, int d) {
  if (strategy == Strategy::Mixed) {
    return "mixed(d=" + std::to_string(d) + ")";
  }
  return to_string(strategy);
}

std::vector<int> mixed_sequence(const arch::Machine& machine, int d) {
  const int cpn = machine.cores_per_node();
  if (d < 1 || d > cpn || cpn % d != 0) {
    throw std::invalid_argument(
        "mixed block size must divide the cores per node");
  }
  std::vector<int> sequence;
  sequence.reserve(static_cast<std::size_t>(machine.total_cores()));
  // Chunk s of every node, node by node; chunks advance last.
  for (int chunk = 0; chunk < cpn / d; ++chunk) {
    for (int node = 0; node < machine.num_nodes(); ++node) {
      for (int k = 0; k < d; ++k) {
        sequence.push_back(node * cpn + chunk * d + k);
      }
    }
  }
  return sequence;
}

std::vector<int> physical_sequence(const arch::Machine& machine,
                                   Strategy strategy, int d) {
  switch (strategy) {
    case Strategy::Consecutive:
      return mixed_sequence(machine, machine.cores_per_node());
    case Strategy::Scattered:
      return mixed_sequence(machine, 1);
    case Strategy::Mixed:
      return mixed_sequence(machine, d);
  }
  throw std::invalid_argument("invalid strategy");
}

}  // namespace ptask::map
