#include "ptask/arch/topology.hpp"

#include <sstream>
#include <stdexcept>

namespace ptask::arch {

const char* to_string(TreeLevel level) {
  switch (level) {
    case TreeLevel::Machine:
      return "machine";
    case TreeLevel::Node:
      return "node";
    case TreeLevel::Processor:
      return "processor";
    case TreeLevel::Core:
      return "core";
  }
  return "unknown";
}

ArchitectureTree::ArchitectureTree(const MachineSpec& spec) : spec_(spec) {
  const int nodes = spec.num_nodes;
  const int procs = spec.procs_per_node;
  const int cores = spec.cores_per_proc;
  vertices_.reserve(1 + static_cast<std::size_t>(nodes) * (1 + procs * (1 + cores)));

  TreeVertex root;
  root.level = TreeLevel::Machine;
  root.label = "A";
  vertices_.push_back(root);

  leaf_index_.resize(static_cast<std::size_t>(spec.total_cores()), -1);
  int flat = 0;
  for (int n = 0; n < nodes; ++n) {
    TreeVertex nv;
    nv.level = TreeLevel::Node;
    nv.label = "A." + std::to_string(n + 1);
    nv.parent = 0;
    const int n_idx = static_cast<int>(vertices_.size());
    vertices_[0].children.push_back(n_idx);
    vertices_.push_back(nv);
    for (int p = 0; p < procs; ++p) {
      TreeVertex pv;
      pv.level = TreeLevel::Processor;
      pv.label = nv.label + "." + std::to_string(p + 1);
      pv.parent = n_idx;
      const int p_idx = static_cast<int>(vertices_.size());
      vertices_[n_idx].children.push_back(p_idx);
      vertices_.push_back(pv);
      for (int c = 0; c < cores; ++c) {
        TreeVertex cv;
        cv.level = TreeLevel::Core;
        cv.label = pv.label + "." + std::to_string(c + 1);
        cv.parent = p_idx;
        cv.core_flat = flat;
        const int c_idx = static_cast<int>(vertices_.size());
        vertices_[p_idx].children.push_back(c_idx);
        vertices_.push_back(cv);
        leaf_index_[static_cast<std::size_t>(flat)] = c_idx;
        ++flat;
      }
    }
  }
  num_leaves_ = flat;
}

int ArchitectureTree::leaf_of(int core_flat) const {
  if (core_flat < 0 || core_flat >= num_leaves_) {
    throw std::out_of_range("core index out of range");
  }
  return leaf_index_[static_cast<std::size_t>(core_flat)];
}

int ArchitectureTree::depth(int index) const {
  int d = 0;
  for (int v = index; vertices_.at(static_cast<std::size_t>(v)).parent >= 0;
       v = vertices_[static_cast<std::size_t>(v)].parent) {
    ++d;
  }
  return d;
}

int ArchitectureTree::common_ancestor(int core_a, int core_b) const {
  int a = leaf_of(core_a);
  int b = leaf_of(core_b);
  // Leaves are all at the same depth, so walk both up in lockstep.
  while (a != b) {
    a = vertices_[static_cast<std::size_t>(a)].parent;
    b = vertices_[static_cast<std::size_t>(b)].parent;
  }
  return a;
}

CommLevel ArchitectureTree::comm_level(int core_a, int core_b) const {
  const TreeVertex& anc =
      vertices_[static_cast<std::size_t>(common_ancestor(core_a, core_b))];
  switch (anc.level) {
    case TreeLevel::Core:
    case TreeLevel::Processor:
      return CommLevel::SameProcessor;
    case TreeLevel::Node:
      return CommLevel::SameNode;
    case TreeLevel::Machine:
      return CommLevel::InterNode;
  }
  throw std::logic_error("invalid tree level");
}

std::string ArchitectureTree::to_outline() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const TreeVertex& v = vertices_[i];
    os << std::string(static_cast<std::size_t>(depth(static_cast<int>(i))) * 2,
                      ' ')
       << to_string(v.level) << ' ' << v.label << '\n';
  }
  return os.str();
}

}  // namespace ptask::arch
