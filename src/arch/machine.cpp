#include "ptask/arch/machine.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ptask::arch {

const char* to_string(CommLevel level) {
  switch (level) {
    case CommLevel::SameProcessor:
      return "same-processor";
    case CommLevel::SameNode:
      return "same-node";
    case CommLevel::InterNode:
      return "inter-node";
  }
  return "unknown";
}

std::string CoreId::label() const {
  std::ostringstream os;
  os << (node + 1) << '.' << (proc + 1) << '.' << (core + 1);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const CoreId& id) {
  return os << id.label();
}

namespace {

MachineSpec base_spec(std::string name, int nodes, int procs, int cores,
                      double gflops_per_core) {
  MachineSpec s;
  s.name = std::move(name);
  s.num_nodes = nodes;
  s.procs_per_node = procs;
  s.cores_per_proc = cores;
  s.core_flops = gflops_per_core * 1.0e9;
  return s;
}

}  // namespace

MachineSpec chic() {
  // AMD Opteron 2218 (dual-core, 2.6 GHz), 2 sockets/node, SDR InfiniBand.
  MachineSpec s = base_spec("CHiC", 530, 2, 2, 5.2);
  // The ODE kernels are memory-bandwidth limited; single-digit percentages of
  // peak are typical for this generation of Opterons on stream-like
  // right-hand sides.
  s.core_efficiency = 0.08;
  s.intra_processor = {0.4e-6, 3.0e9};  // shared L3/HyperTransport on socket
  s.intra_node = {0.7e-6, 1.8e9};       // HyperTransport between sockets
  s.inter_node = {4.0e-6, 0.9e9};       // SDR IB: ~10 Gbit/s raw, ~0.9 GB/s eff
  s.omp_region_overhead_s = 6.0e-6;     // fork/join on the 2006 Opterons
  return s;
}

MachineSpec juropa() {
  // Intel Xeon X5570 "Nehalem" (quad-core, 2.93 GHz), 2 sockets/node, QDR IB.
  MachineSpec s = base_spec("JuRoPA", 2208, 2, 4, 11.72);
  s.core_efficiency = 0.10;
  s.intra_processor = {0.3e-6, 5.5e9};
  s.intra_node = {0.5e-6, 3.5e9};
  s.inter_node = {2.0e-6, 2.6e9};  // QDR IB: 32 Gbit/s raw, ~2.6 GB/s eff
  s.omp_region_overhead_s = 1.5e-6;
  return s;
}

MachineSpec altix() {
  // SGI Altix 4700 partition: Itanium2 Montecito (dual-core, 1.6 GHz),
  // 2 sockets/node, NUMAlink 4 (6.4 GB/s bidirectional per link).
  MachineSpec s = base_spec("Altix", 128, 2, 2, 6.4);
  s.core_efficiency = 0.12;
  s.intra_processor = {0.25e-6, 4.0e9};
  s.intra_node = {0.45e-6, 3.0e9};
  s.inter_node = {1.2e-6, 1.9e9};  // NUMAlink 4: low latency, shared links
  // DSM: OpenMP may span nodes; region overhead grows with distance, this is
  // the intra-node value.
  s.omp_region_overhead_s = 2.0e-6;
  return s;
}

MachineSpec machine_by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "chic") return chic();
  if (lower == "juropa") return juropa();
  if (lower == "altix") return altix();
  throw std::invalid_argument("unknown machine preset: " + name);
}

Machine::Machine(MachineSpec spec) : spec_(std::move(spec)) {
  if (spec_.num_nodes <= 0 || spec_.procs_per_node <= 0 ||
      spec_.cores_per_proc <= 0) {
    throw std::invalid_argument("machine dimensions must be positive");
  }
}

CoreId Machine::core_at(int flat) const {
  if (flat < 0 || flat >= total_cores()) {
    throw std::out_of_range("core index out of range");
  }
  const int cpn = cores_per_node();
  CoreId id;
  id.node = flat / cpn;
  const int in_node = flat % cpn;
  id.proc = in_node / spec_.cores_per_proc;
  id.core = in_node % spec_.cores_per_proc;
  return id;
}

int Machine::flat_index(const CoreId& id) const {
  if (id.node < 0 || id.node >= spec_.num_nodes || id.proc < 0 ||
      id.proc >= spec_.procs_per_node || id.core < 0 ||
      id.core >= spec_.cores_per_proc) {
    throw std::out_of_range("core id out of range");
  }
  return id.node * cores_per_node() + id.proc * spec_.cores_per_proc + id.core;
}

CommLevel Machine::comm_level(const CoreId& a, const CoreId& b) const {
  if (a.node != b.node) return CommLevel::InterNode;
  if (a.proc != b.proc) return CommLevel::SameNode;
  return CommLevel::SameProcessor;
}

const LinkParams& Machine::link(CommLevel level) const {
  switch (level) {
    case CommLevel::SameProcessor:
      return spec_.intra_processor;
    case CommLevel::SameNode:
      return spec_.intra_node;
    case CommLevel::InterNode:
      return spec_.inter_node;
  }
  throw std::invalid_argument("invalid CommLevel");
}

Machine Machine::partition(int num_cores) const {
  if (num_cores <= 0 || num_cores % cores_per_node() != 0) {
    throw std::invalid_argument(
        "partition size must be a positive multiple of cores per node");
  }
  const int nodes = num_cores / cores_per_node();
  if (nodes > spec_.num_nodes) {
    throw std::invalid_argument("partition larger than machine");
  }
  MachineSpec sub = spec_;
  sub.num_nodes = nodes;
  return Machine(sub);
}

}  // namespace ptask::arch
