#include "ptask/analysis/certifier.hpp"

// Independence contract: this translation unit re-derives every certified
// quantity from the schedule bytes alone.  It must not include (or call)
// sched/validation.hpp, sched/pipeline.hpp, or any cost-model pricing --
// serve/protocol.hpp is pulled in only for the canonical serialization the
// schedule hash is computed over.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <sstream>
#include <tuple>
#include <utility>

#include "ptask/obs/trace.hpp"
#include "ptask/serve/protocol.hpp"

namespace ptask::analysis {

namespace {

using core::TaskGraph;
using core::TaskId;

std::string task_ref(const TaskGraph& g, TaskId id) {
  std::ostringstream os;
  os << "'" << g.task(id).name() << "' (id " << id << ")";
  return os.str();
}

/// Absolute + relative comparison slack between two times.
double slack(double a, double b, double rel_tol) {
  return 1e-12 + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

class Certifier {
 public:
  Certifier(const TaskGraph& original, const sched::Schedule& schedule,
            const CertifierOptions& options, Certificate& cert)
      : original_(original),
        schedule_(schedule),
        contracted_(schedule.scheduled_graph()),
        options_(options),
        cert_(cert) {}

  void run() {
    cert_.makespan = schedule_.gantt.makespan;
    cert_.schedule_hash = fnv1a64(serve::serialize_schedule(schedule_));
    if (!check_structure()) return;  // index tables unusable; stop here
    check_allocation();
    check_precedence();
    check_occupancy();
    check_makespan_arithmetic();
    check_lower_bounds();
    collect_layer_bounds();
  }

 private:
  void emit(std::string_view code, std::vector<TaskId> tasks,
            std::string message) {
    Diagnostic d;
    d.code = std::string(code);
    d.severity = Severity::Error;
    d.tasks = std::move(tasks);
    d.task_names.reserve(d.tasks.size());
    for (const TaskId id : d.tasks) {
      d.task_names.push_back(id >= 0 && id < contracted_.num_tasks()
                                 ? contracted_.task(id).name()
                                 : std::string());
    }
    d.message = std::move(message);
    cert_.report.diagnostics.push_back(std::move(d));
  }

  bool scheduled(TaskId id) const { return !contracted_.task(id).is_marker(); }

  const sched::TaskSlot& slot(TaskId id) const {
    return schedule_.gantt.slots[static_cast<std::size_t>(id)];
  }

  double duration(TaskId id) const {
    return slot(id).finish - slot(id).start;
  }

  // ---- PTC006: contraction / table structure ----

  bool check_structure() {
    const core::ChainContraction& con = schedule_.layered.contraction;
    const int n = contracted_.num_tasks();
    bool tables_ok = true;
    if (static_cast<int>(schedule_.gantt.slots.size()) != n) {
      emit(kCertStructure, {},
           "slot table has " + std::to_string(schedule_.gantt.slots.size()) +
               " entries for " + std::to_string(n) + " contracted tasks");
      tables_ok = false;
    }
    if (static_cast<int>(schedule_.allocation.size()) != n) {
      emit(kCertStructure, {},
           "allocation table has " + std::to_string(schedule_.allocation.size()) +
               " entries for " + std::to_string(n) + " contracted tasks");
      tables_ok = false;
    }

    if (static_cast<int>(con.representative.size()) != original_.num_tasks()) {
      emit(kCertStructure, {},
           "contraction covers " + std::to_string(con.representative.size()) +
               " original tasks, graph has " +
               std::to_string(original_.num_tasks()));
      return false;
    }
    if (static_cast<int>(con.members.size()) != n) {
      emit(kCertStructure, {},
           "contraction lists " + std::to_string(con.members.size()) +
               " member chains for " + std::to_string(n) + " contracted tasks");
      return false;
    }

    // Every original task in exactly one members list, with a consistent
    // representative mapping.
    std::vector<int> appearances(
        static_cast<std::size_t>(original_.num_tasks()), 0);
    for (TaskId c = 0; c < n; ++c) {
      const std::vector<TaskId>& chain =
          con.members[static_cast<std::size_t>(c)];
      if (chain.empty()) {
        emit(kCertStructure, {c},
             "contracted task " + task_ref(contracted_, c) +
                 " has an empty member chain");
        continue;
      }
      for (const TaskId o : chain) {
        if (o < 0 || o >= original_.num_tasks()) {
          emit(kCertStructure, {c}, "member id " + std::to_string(o) +
                                        " is outside the original graph");
          continue;
        }
        ++appearances[static_cast<std::size_t>(o)];
        if (con.representative[static_cast<std::size_t>(o)] != c) {
          emit(kCertStructure, {c},
               "original task " + task_ref(original_, o) + " is a member of " +
                   std::to_string(c) + " but its representative is " +
                   std::to_string(
                       con.representative[static_cast<std::size_t>(o)]));
        }
      }
    }
    for (TaskId o = 0; o < original_.num_tasks(); ++o) {
      if (appearances[static_cast<std::size_t>(o)] != 1) {
        emit(kCertStructure, {},
             "original task " + task_ref(original_, o) + " appears in " +
                 std::to_string(appearances[static_cast<std::size_t>(o)]) +
                 " member chains (expected exactly 1)");
      }
    }

    // Every original edge must survive the contraction: either both
    // endpoints merged into one node, or a contracted edge between their
    // representatives.
    for (TaskId u = 0; u < original_.num_tasks(); ++u) {
      const TaskId ru = con.representative[static_cast<std::size_t>(u)];
      if (ru < 0 || ru >= n) continue;  // reported above
      for (const TaskId v : original_.successors(u)) {
        const TaskId rv = con.representative[static_cast<std::size_t>(v)];
        if (rv < 0 || rv >= n || ru == rv) continue;
        const auto succ = contracted_.successors(ru);
        if (std::find(succ.begin(), succ.end(), rv) == succ.end()) {
          emit(kCertStructure, {ru, rv},
               "original edge " + task_ref(original_, u) + " -> " +
                   task_ref(original_, v) +
                   " has no contracted counterpart " + std::to_string(ru) +
                   " -> " + std::to_string(rv));
        }
      }
    }

    // Layered structure: every scheduled task in exactly one layer.
    if (tables_ok && schedule_.has_layers()) {
      std::vector<int> layer_appearances(static_cast<std::size_t>(n), 0);
      for (const sched::ScheduledLayer& layer : schedule_.layered.layers) {
        for (const TaskId id : layer.tasks) {
          if (id < 0 || id >= n) {
            emit(kCertStructure, {},
                 "layer task id " + std::to_string(id) + " is out of range");
            continue;
          }
          ++layer_appearances[static_cast<std::size_t>(id)];
        }
      }
      for (TaskId id = 0; id < n; ++id) {
        if (!scheduled(id)) continue;
        if (layer_appearances[static_cast<std::size_t>(id)] != 1) {
          emit(kCertStructure, {id},
               "task " + task_ref(contracted_, id) + " appears in " +
                   std::to_string(
                       layer_appearances[static_cast<std::size_t>(id)]) +
                   " layers (expected exactly 1)");
        }
      }
    }
    return tables_ok;
  }

  // ---- PTC003: allocation / group bounds ----

  void check_allocation() {
    const int total = schedule_.total_cores();
    for (TaskId id = 0; id < contracted_.num_tasks(); ++id) {
      if (!scheduled(id)) continue;
      const sched::TaskSlot& s = slot(id);
      if (s.cores.empty()) {
        emit(kCertAllocation, {id},
             "task " + task_ref(contracted_, id) + " is allocated no cores");
        continue;
      }
      if (schedule_.allocation[static_cast<std::size_t>(id)] !=
          s.num_cores()) {
        emit(kCertAllocation, {id},
             "task " + task_ref(contracted_, id) + " declares allocation " +
                 std::to_string(
                     schedule_.allocation[static_cast<std::size_t>(id)]) +
                 " but its slot spans " + std::to_string(s.num_cores()) +
                 " cores");
      }
      std::vector<int> cores = s.cores;
      std::sort(cores.begin(), cores.end());
      for (std::size_t i = 0; i < cores.size(); ++i) {
        if (cores[i] < 0 || cores[i] >= total) {
          emit(kCertAllocation, {id},
               "task " + task_ref(contracted_, id) + " uses core " +
                   std::to_string(cores[i]) + " outside the machine [0, " +
                   std::to_string(total) + ")");
          break;
        }
        if (i > 0 && cores[i] == cores[i - 1]) {
          emit(kCertAllocation, {id},
               "task " + task_ref(contracted_, id) + " lists core " +
                   std::to_string(cores[i]) + " twice");
          break;
        }
      }
    }

    if (!schedule_.has_layers()) return;
    for (std::size_t li = 0; li < schedule_.layered.layers.size(); ++li) {
      const sched::ScheduledLayer& layer = schedule_.layered.layers[li];
      long long sum = 0;
      for (const int g : layer.group_sizes) {
        if (g <= 0) {
          emit(kCertAllocation, {},
               "layer " + std::to_string(li) + " has a non-positive group "
               "size " + std::to_string(g));
        }
        sum += g;
      }
      if (sum != total) {
        emit(kCertAllocation, {},
             "layer " + std::to_string(li) + " group sizes sum to " +
                 std::to_string(sum) + " symbolic cores, machine has " +
                 std::to_string(total) +
                 (sum > total ? " (oversubscribed)" : " (undersubscribed)"));
      }
      if (layer.task_group.size() != layer.tasks.size()) {
        emit(kCertAllocation, {},
             "layer " + std::to_string(li) +
                 " assignment table does not match its task list");
        continue;
      }
      for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
        const TaskId id = layer.tasks[i];
        const int g = layer.task_group[i];
        if (g < 0 || g >= layer.num_groups()) {
          emit(kCertAllocation, {id},
               "task " + task_ref(contracted_, id) +
                   " is assigned to missing group " + std::to_string(g) +
                   " of layer " + std::to_string(li));
          continue;
        }
        const int width = layer.group_sizes[static_cast<std::size_t>(g)];
        if (id >= 0 && id < contracted_.num_tasks() &&
            schedule_.allocation[static_cast<std::size_t>(id)] != width) {
          emit(kCertAllocation, {id},
               "task " + task_ref(contracted_, id) + " sits on a group of " +
                   std::to_string(width) + " cores but is allocated " +
                   std::to_string(
                       schedule_.allocation[static_cast<std::size_t>(id)]));
        }
      }
    }
  }

  // ---- PTC001: precedence ----

  void check_precedence() {
    for (TaskId u = 0; u < contracted_.num_tasks(); ++u) {
      if (!scheduled(u)) continue;
      for (const TaskId v : contracted_.successors(u)) {
        if (!scheduled(v)) continue;
        const double finish_u = slot(u).finish;
        const double start_v = slot(v).start;
        if (start_v + slack(start_v, finish_u, options_.rel_tol) < finish_u) {
          std::ostringstream os;
          os << "edge " << task_ref(contracted_, u) << " -> "
             << task_ref(contracted_, v) << " violated: successor starts at "
             << start_v << " before its predecessor finishes at " << finish_u;
          emit(kCertPrecedence, {u, v}, os.str());
        }
      }
    }
  }

  // ---- PTC002: per-core occupancy ----

  void check_occupancy() {
    std::vector<Certificate::CoreInterval> intervals;
    for (TaskId id = 0; id < contracted_.num_tasks(); ++id) {
      if (!scheduled(id)) continue;
      const sched::TaskSlot& s = slot(id);
      for (const int c : s.cores) {
        if (c < 0 || c >= schedule_.total_cores()) continue;  // PTC003
        intervals.push_back({c, id, s.start, s.finish});
      }
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const Certificate::CoreInterval& a,
                 const Certificate::CoreInterval& b) {
                return std::tie(a.core, a.start, a.finish, a.task) <
                       std::tie(b.core, b.start, b.finish, b.task);
              });
    int reported_core = -1;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      const Certificate::CoreInterval& prev = intervals[i - 1];
      const Certificate::CoreInterval& cur = intervals[i];
      if (cur.core != prev.core || cur.core == reported_core) continue;
      if (cur.start + slack(cur.start, prev.finish, options_.rel_tol) <
          prev.finish) {
        std::ostringstream os;
        os << "core " << cur.core << " executes " << task_ref(contracted_, prev.task)
           << " until " << prev.finish << " but "
           << task_ref(contracted_, cur.task) << " starts at " << cur.start;
        emit(kCertOverlap, {prev.task, cur.task}, os.str());
        reported_core = cur.core;  // one finding per core keeps reports short
      }
    }
    if (options_.record_intervals) cert_.intervals = std::move(intervals);
  }

  // ---- PTC004: makespan arithmetic ----

  void check_makespan_arithmetic() {
    const double makespan = schedule_.gantt.makespan;
    double max_finish = 0.0;
    for (TaskId id = 0; id < contracted_.num_tasks(); ++id) {
      if (!scheduled(id)) continue;
      const sched::TaskSlot& s = slot(id);
      if (s.finish + slack(s.finish, s.start, options_.rel_tol) < s.start) {
        std::ostringstream os;
        os << "task " << task_ref(contracted_, id) << " finishes at "
           << s.finish << " before it starts at " << s.start;
        emit(kCertMakespan, {id}, os.str());
      }
      if (s.start < -slack(s.start, 0.0, options_.rel_tol)) {
        std::ostringstream os;
        os << "task " << task_ref(contracted_, id) << " starts at " << s.start
           << " (before time 0)";
        emit(kCertMakespan, {id}, os.str());
      }
      if (s.finish > makespan + slack(s.finish, makespan, options_.rel_tol)) {
        std::ostringstream os;
        os << "task " << task_ref(contracted_, id) << " finishes at "
           << s.finish << ", past the declared makespan " << makespan;
        emit(kCertMakespan, {id}, os.str());
      }
      max_finish = std::max(max_finish, s.finish);
    }
    if (std::fabs(makespan - max_finish) >
        slack(makespan, max_finish, options_.rel_tol)) {
      std::ostringstream os;
      os << "declared makespan " << makespan
         << " does not equal the last slot finish " << max_finish;
      emit(kCertMakespan, {}, os.str());
    }
  }

  // ---- PTC005: symbolic lower bounds from the schedule's own durations ----

  void check_lower_bounds() {
    const int n = contracted_.num_tasks();
    // Longest dependency chain, via a local Kahn topological sweep (no graph
    // utility shared with the schedulers is used).
    std::vector<int> indegree(static_cast<std::size_t>(n), 0);
    for (TaskId u = 0; u < n; ++u) {
      for (const TaskId v : contracted_.successors(u)) {
        ++indegree[static_cast<std::size_t>(v)];
      }
    }
    std::deque<TaskId> ready;
    for (TaskId id = 0; id < n; ++id) {
      if (indegree[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
    }
    std::vector<double> longest(static_cast<std::size_t>(n), 0.0);
    double critical_path = 0.0;
    int visited = 0;
    while (!ready.empty()) {
      const TaskId u = ready.front();
      ready.pop_front();
      ++visited;
      const double here = longest[static_cast<std::size_t>(u)] +
                          (scheduled(u) ? std::max(0.0, duration(u)) : 0.0);
      critical_path = std::max(critical_path, here);
      for (const TaskId v : contracted_.successors(u)) {
        longest[static_cast<std::size_t>(v)] =
            std::max(longest[static_cast<std::size_t>(v)], here);
        if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
      }
    }
    if (visited != n) {
      emit(kCertStructure, {},
           "contracted graph is not acyclic (" + std::to_string(n - visited) +
               " tasks unreachable in the topological sweep)");
      return;
    }

    // Total-work bound: every core-second a slot occupies must fit into the
    // P x makespan rectangle.
    long double core_time = 0.0;
    const int total = schedule_.total_cores();
    for (TaskId id = 0; id < n; ++id) {
      if (!scheduled(id)) continue;
      core_time += static_cast<long double>(std::max(0.0, duration(id))) *
                   static_cast<long double>(slot(id).num_cores());
    }
    const double work_bound =
        total > 0 ? static_cast<double>(core_time / total) : 0.0;

    cert_.critical_path_bound = critical_path;
    cert_.work_bound = work_bound;
    const double makespan = schedule_.gantt.makespan;
    if (makespan + slack(makespan, critical_path, options_.rel_tol) <
        critical_path) {
      std::ostringstream os;
      os << "makespan " << makespan
         << " is below the critical-path lower bound " << critical_path;
      emit(kCertLowerBound, {}, os.str());
    }
    if (makespan + slack(makespan, work_bound, options_.rel_tol) <
        work_bound) {
      std::ostringstream os;
      os << "makespan " << makespan << " is below the total-work bound "
         << work_bound << " (core-time / " << total << " cores)";
      emit(kCertLowerBound, {}, os.str());
    }
  }

  // ---- evidence: per-layer time bounds ----

  void collect_layer_bounds() {
    if (!schedule_.has_layers()) return;
    cert_.layer_bounds.reserve(schedule_.layered.layers.size());
    for (const sched::ScheduledLayer& layer : schedule_.layered.layers) {
      Certificate::LayerBound bound;
      bool first = true;
      for (const TaskId id : layer.tasks) {
        if (id < 0 || id >= contracted_.num_tasks() || !scheduled(id)) {
          continue;
        }
        const sched::TaskSlot& s = slot(id);
        if (first) {
          bound.start = s.start;
          bound.finish = s.finish;
          first = false;
        } else {
          bound.start = std::min(bound.start, s.start);
          bound.finish = std::max(bound.finish, s.finish);
        }
      }
      cert_.layer_bounds.push_back(bound);
    }
  }

  const TaskGraph& original_;
  const sched::Schedule& schedule_;
  const TaskGraph& contracted_;
  const CertifierOptions& options_;
  Certificate& cert_;
};

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

Certificate certify(const core::TaskGraph& original,
                    const sched::Schedule& schedule,
                    const CertifierOptions& options) {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "analysis.certify");
  Certificate cert;
  Certifier(original, schedule, options, cert).run();
  return cert;
}

std::string render_json(const Certificate& certificate) {
  std::string out = "{\"ok\":";
  out += certificate.ok() ? "true" : "false";
  out += ",\"schedule_hash\":";
  serve::append_json_string(out, hash_hex(certificate.schedule_hash));
  out += ",\"makespan\":";
  serve::append_json_double(out, certificate.makespan);
  out += ",\"bounds\":{\"critical_path\":";
  serve::append_json_double(out, certificate.critical_path_bound);
  out += ",\"work_over_p\":";
  serve::append_json_double(out, certificate.work_bound);
  out += "},\"layers\":[";
  for (std::size_t i = 0; i < certificate.layer_bounds.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"start\":";
    serve::append_json_double(out, certificate.layer_bounds[i].start);
    out += ",\"finish\":";
    serve::append_json_double(out, certificate.layer_bounds[i].finish);
    out += '}';
  }
  out += "],\"intervals\":[";
  for (std::size_t i = 0; i < certificate.intervals.size(); ++i) {
    if (i != 0) out += ',';
    const Certificate::CoreInterval& iv = certificate.intervals[i];
    out += "{\"core\":" + std::to_string(iv.core);
    out += ",\"task\":" + std::to_string(iv.task);
    out += ",\"start\":";
    serve::append_json_double(out, iv.start);
    out += ",\"finish\":";
    serve::append_json_double(out, iv.finish);
    out += '}';
  }
  out += "],\"report\":";
  out += analysis::render_json(certificate.report);
  out += '}';
  return out;
}

}  // namespace ptask::analysis
