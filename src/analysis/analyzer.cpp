#include "ptask/analysis/analyzer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <exception>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ptask/core/graph_algorithms.hpp"
#include "ptask/dist/redistribution.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/sched/timeline.hpp"

namespace ptask::analysis {
namespace {

using core::TaskGraph;
using core::TaskId;

std::string task_ref(const TaskGraph& g, TaskId id) {
  std::ostringstream os;
  os << "'" << g.task(id).name() << "' (id " << id << ")";
  return os.str();
}

/// Dense bitset reachability matrix, built once per analyzed graph so that
/// the race pass can answer independence queries in O(1).
class ReachMatrix {
 public:
  explicit ReachMatrix(const TaskGraph& g) : n_(g.num_tasks()) {
    words_ = (n_ + 63) / 64;
    bits_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(words_),
                 0);
    const std::vector<TaskId> order = g.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const TaskId u = *it;
      std::uint64_t* row = row_ptr(u);
      for (const TaskId s : g.successors(u)) {
        row[s / 64] |= std::uint64_t{1} << (s % 64);
        const std::uint64_t* srow = row_ptr(s);
        for (int w = 0; w < words_; ++w) row[w] |= srow[w];
      }
    }
  }

  bool reaches(TaskId a, TaskId b) const {
    return (row_ptr(a)[b / 64] >> (b % 64)) & 1U;
  }

  bool independent(TaskId a, TaskId b) const {
    return a != b && !reaches(a, b) && !reaches(b, a);
  }

  template <typename Fn>
  void for_each_reachable(TaskId id, Fn&& fn) const {
    const std::uint64_t* row = row_ptr(id);
    for (int w = 0; w < words_; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        fn(w * 64 + std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
  }

 private:
  std::uint64_t* row_ptr(TaskId id) {
    return bits_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(words_);
  }
  const std::uint64_t* row_ptr(TaskId id) const {
    return bits_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(words_);
  }

  int n_;
  int words_;
  std::vector<std::uint64_t> bits_;
};

/// Builds diagnostics against one graph, filling in task names from ids.
class Emitter {
 public:
  Emitter(const TaskGraph& graph, Report& report)
      : graph_(&graph), report_(&report) {}

  void emit(std::string_view code, Severity severity, std::vector<TaskId> tasks,
            std::vector<std::string> vars, std::string message) {
    Diagnostic d;
    d.code = std::string(code);
    d.severity = severity;
    d.tasks = std::move(tasks);
    d.task_names.reserve(d.tasks.size());
    for (const TaskId id : d.tasks) {
      d.task_names.push_back(graph_->task(id).name());
    }
    d.vars = std::move(vars);
    d.message = std::move(message);
    report_->diagnostics.push_back(std::move(d));
  }

  const TaskGraph& graph() const { return *graph_; }

 private:
  const TaskGraph* graph_;
  Report* report_;
};

// ---- pass 1: shared-variable race detection (PTA001, PTA002) ----

void race_pass(const TaskGraph& g, const ReachMatrix& reach, Emitter& out) {
  struct VarAccess {
    std::vector<TaskId> writers;
    std::vector<TaskId> readers;
  };
  std::map<std::string, VarAccess> access;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    for (const core::Param& p : g.task(id).params()) {
      VarAccess& a = access[p.name];
      if (p.is_output) a.writers.push_back(id);
      if (p.is_input) a.readers.push_back(id);
    }
  }
  for (const auto& [name, a] : access) {
    std::set<TaskId> writer_set(a.writers.begin(), a.writers.end());
    for (std::size_t i = 0; i < a.writers.size(); ++i) {
      for (std::size_t j = i + 1; j < a.writers.size(); ++j) {
        const TaskId x = a.writers[i];
        const TaskId y = a.writers[j];
        if (reach.independent(x, y)) {
          out.emit(kRaceWaw, Severity::Error, {x, y}, {name},
                   "tasks " + task_ref(g, x) + " and " + task_ref(g, y) +
                       " both define '" + name +
                       "' but are independent in the graph (WAW race)");
        }
      }
    }
    for (const TaskId w : a.writers) {
      for (const TaskId r : a.readers) {
        if (w == r) continue;
        // A reader that is also a writer was already reported as WAW.
        if (writer_set.count(r) != 0) continue;
        if (reach.independent(w, r)) {
          out.emit(kRaceRaw, Severity::Error, {w, r}, {name},
                   task_ref(g, r) + " reads '" + name +
                       "' with no ordering against writer " + task_ref(g, w) +
                       " (RAW/WAR race)");
        }
      }
    }
  }
}

// ---- pass 2: distribution/size consistency (PTA010, PTA011) ----

/// Mirrors the matching rule of sched::redistribution_edges /
/// gantt_redistribution_time: a consumer input is fed by the producer's
/// *last* output parameter of the same name, and the plan moves
/// min(producer, consumer) bytes in elem-sized pieces.
void size_pass(const TaskGraph& g, std::size_t elem, Emitter& out) {
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const TaskId v : g.successors(u)) {
      for (const core::Param& in : g.task(v).params()) {
        if (!in.is_input) continue;
        const core::Param* producer = nullptr;
        for (const core::Param& p : g.task(u).params()) {
          if (p.is_output && p.name == in.name) producer = &p;
        }
        if (producer == nullptr) continue;
        const std::string edge = "edge " + task_ref(g, u) + " -> " +
                                 task_ref(g, v) + ": '" + in.name + "'";
        if (producer->bytes != in.bytes) {
          std::ostringstream os;
          os << edge << " produced with " << producer->bytes
             << " bytes but consumed with " << in.bytes << " bytes";
          out.emit(kSizeMismatch, Severity::Error, {u, v}, {in.name},
                   os.str());
        }
        const std::size_t moved = std::min(producer->bytes, in.bytes);
        if (elem > 0 && moved > 0 && moved % elem != 0) {
          std::ostringstream os;
          os << edge << " matched payload of " << moved
             << " bytes is not a multiple of the " << elem
             << "-byte element size (the re-distribution plan drops the "
                "fractional tail)";
          out.emit(kBadRedistribution, Severity::Error, {u, v}, {in.name},
                   os.str());
        }
      }
    }
  }
}

// ---- pass 3: graph hygiene (PTA020, PTA021, PTA023) ----

void hygiene_pass(const TaskGraph& g, const ReachMatrix& reach,
                  double chain_clamp_factor, Emitter& out) {
  std::vector<TaskId> starts;
  std::vector<TaskId> stops;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (!g.task(id).is_marker()) continue;
    if (g.in_degree(id) == 0) starts.push_back(id);
    if (g.out_degree(id) == 0) stops.push_back(id);
  }
  // PTA020: only meaningful relative to a start/stop envelope; each half is
  // inert when the graph has no marker of that kind.
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).is_marker()) continue;
    const bool from_start =
        starts.empty() || std::any_of(starts.begin(), starts.end(),
                                      [&](TaskId s) {
                                        return reach.reaches(s, id);
                                      });
    const bool to_stop =
        stops.empty() || std::any_of(stops.begin(), stops.end(),
                                     [&](TaskId s) {
                                       return reach.reaches(id, s);
                                     });
    if (from_start && to_stop) continue;
    std::string why;
    if (!from_start) why = "is not reachable from the start marker";
    if (!to_stop) {
      if (!why.empty()) why += " and ";
      why += "does not reach the stop marker";
    }
    out.emit(kUnreachableTask, Severity::Error, {id}, {},
             "task " + task_ref(g, id) + " " + why);
  }

  // PTA021 (warning): an output no reachable non-marker task consumes.  A
  // task with no reachable non-marker tasks at all produces program outputs.
  std::vector<std::set<std::string>> inputs_of(
      static_cast<std::size_t>(g.num_tasks()));
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    for (const core::Param& p : g.task(id).params()) {
      if (p.is_input) inputs_of[static_cast<std::size_t>(id)].insert(p.name);
    }
  }
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const core::MTask& t = g.task(id);
    if (t.is_marker()) continue;
    bool has_downstream = false;
    std::set<std::string> consumed;
    reach.for_each_reachable(id, [&](int r) {
      if (g.task(r).is_marker()) return;
      has_downstream = true;
      const std::set<std::string>& ins = inputs_of[static_cast<std::size_t>(r)];
      consumed.insert(ins.begin(), ins.end());
    });
    if (!has_downstream) continue;
    for (const core::Param& p : t.params()) {
      if (!p.is_output || consumed.count(p.name) != 0) continue;
      out.emit(kDeadWrite, Severity::Warning, {id}, {p.name},
               "output '" + p.name + "' of task " + task_ref(g, id) +
                   " is never consumed by any reachable task");
    }
  }

  // PTA023 (warning): chain contraction clamps the merged node to the most
  // restrictive member; a chain mixing very different max_cores serializes
  // the wide members onto the narrow member's group.
  const core::ChainContraction contraction = core::contract_linear_chains(g);
  for (const std::vector<TaskId>& chain : contraction.members) {
    if (chain.size() < 2) continue;
    int min_mc = g.task(chain.front()).max_cores();
    int max_mc = min_mc;
    for (const TaskId id : chain) {
      min_mc = std::min(min_mc, g.task(id).max_cores());
      max_mc = std::max(max_mc, g.task(id).max_cores());
    }
    if (static_cast<double>(max_mc) <
        chain_clamp_factor * static_cast<double>(min_mc)) {
      continue;
    }
    std::ostringstream os;
    os << "linear chain";
    for (const TaskId id : chain) os << " " << task_ref(g, id);
    os << " mixes max_cores " << min_mc << " and " << max_mc
       << "; contraction clamps the merged node to " << min_mc << " core(s)";
    out.emit(kDegenerateChain, Severity::Warning, chain, {}, os.str());
  }
}

// ---- pass 4: cost-model sanity (PTA030, PTA031, PTA032) ----

void profile_pass(const TaskGraph& g, Emitter& out) {
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const core::MTask& t = g.task(id);
    if (!std::isfinite(t.work_flop()) || t.work_flop() < 0.0) {
      std::ostringstream os;
      os << "task " << task_ref(g, id) << " has invalid work "
         << t.work_flop() << " flop";
      out.emit(kBadTaskProfile, Severity::Error, {id}, {}, os.str());
    }
    if (t.max_cores() < 1) {
      std::ostringstream os;
      os << "task " << task_ref(g, id) << " has max_cores " << t.max_cores()
         << " (< 1)";
      out.emit(kBadTaskProfile, Severity::Error, {id}, {}, os.str());
    }
    for (const core::CollectiveOp& op : t.comms()) {
      if (op.repeat < 0) {
        std::ostringstream os;
        os << "task " << task_ref(g, id) << " has a "
           << core::to_string(op.kind) << " collective with repeat "
           << op.repeat << " (< 0)";
        out.emit(kBadTaskProfile, Severity::Error, {id}, {}, os.str());
      }
    }
    if (!t.is_marker() && t.work_flop() == 0.0 && t.comms().empty()) {
      out.emit(kZeroCostTask, Severity::Warning, {id}, {},
               "task " + task_ref(g, id) +
                   " has zero work and no communication; LPT assignment is "
                   "arbitrary for it");
    }
  }
}

void cost_pass(const TaskGraph& g, const cost::CostModel& cost,
               int total_cores, Emitter& out) {
  const int cap = std::min(total_cores, 1024);
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const core::MTask& t = g.task(id);
    if (t.is_marker()) continue;
    try {
      double prev_comp = 0.0;
      for (int q = 1; q <= cap; ++q) {
        const double comp = cost.symbolic_compute_time(t, q);
        const double total = cost.symbolic_task_time(t, q, 1, total_cores);
        if (!std::isfinite(total) || total < 0.0) {
          std::ostringstream os;
          os << "task " << task_ref(g, id) << ": T(M, q) = " << total
             << " at q = " << q;
          out.emit(kBadCostModel, Severity::Error, {id}, {}, os.str());
          break;
        }
        if (q > 1 && comp > prev_comp * (1.0 + 1e-9) + 1e-300) {
          std::ostringstream os;
          os << "task " << task_ref(g, id)
             << ": compute time increases with the core count (" << prev_comp
             << " s at q = " << q - 1 << ", " << comp << " s at q = " << q
             << ")";
          out.emit(kBadCostModel, Severity::Error, {id}, {}, os.str());
          break;
        }
        prev_comp = comp;
      }
    } catch (const std::exception& e) {
      out.emit(kBadCostModel, Severity::Error, {id}, {},
               "task " + task_ref(g, id) + ": cost model threw: " + e.what());
    }
  }
}

}  // namespace

// ---- entry points ----

Report Analyzer::analyze(const core::TaskGraph& graph) const {
  Report report;
  if (graph.empty()) return report;
  Emitter out(graph, report);
  const ReachMatrix reach(graph);
  if (options_.race_detection) race_pass(graph, reach, out);
  if (options_.size_consistency) {
    size_pass(graph, options_.redistribution_elem_bytes, out);
  }
  if (options_.graph_hygiene) {
    hygiene_pass(graph, reach, options_.chain_clamp_factor, out);
  }
  if (options_.cost_sanity) profile_pass(graph, out);
  return report;
}

Report Analyzer::analyze(const core::TaskGraph& graph,
                         const arch::Machine& machine, int total_cores) const {
  Report report = analyze(graph);
  if (graph.empty() || !options_.cost_sanity || total_cores < 1) return report;
  Emitter out(graph, report);
  const cost::CostModel cost(machine);
  cost_pass(graph, cost, total_cores, out);
  return report;
}

namespace {

/// Shared body of the two HierGraph overloads: analyze one level, check the
/// composite bodies (PTA022), recurse.
template <typename AnalyzeLevel>
Report analyze_hier(const Analyzer& analyzer, const core::HierGraph& program,
                    AnalyzeLevel&& analyze_level) {
  Report report = analyze_level(program.graph);
  const core::TaskGraph& g = program.graph;
  for (const auto& [id, body] : program.sub) {
    const bool valid_id = id >= 0 && id < g.num_tasks();
    std::string ref = valid_id ? task_ref(g, id)
                               : "(id " + std::to_string(id) + ")";
    std::string problem;
    if (!valid_id) {
      problem = "composite id is out of range";
    } else if (g.task(id).is_marker()) {
      problem = "marker task has a composite body";
    } else if (body == nullptr) {
      problem = "composite node " + ref + " has no body";
    } else {
      int basic = 0;
      for (core::TaskId t = 0; t < body->graph.num_tasks(); ++t) {
        if (!body->graph.task(t).is_marker()) ++basic;
      }
      if (basic == 0) {
        problem = "composite node " + ref +
                  " has an empty body (flattening would disconnect its "
                  "neighbours)";
      }
    }
    if (!problem.empty()) {
      if (analyzer.options().graph_hygiene) {
        Diagnostic d;
        d.code = std::string(kEmptyComposite);
        d.severity = Severity::Error;
        if (valid_id) {
          d.tasks = {id};
          d.task_names = {g.task(id).name()};
        }
        d.message = std::move(problem);
        report.diagnostics.push_back(std::move(d));
      }
      continue;
    }
    Report sub_report =
        analyze_hier(analyzer, *body, analyze_level);
    report.merge(std::move(sub_report), "'" + g.task(id).name() + "'");
  }
  return report;
}

}  // namespace

Report Analyzer::analyze(const core::HierGraph& program) const {
  return analyze_hier(*this, program, [&](const core::TaskGraph& g) {
    return analyze(g);
  });
}

Report Analyzer::analyze(const core::HierGraph& program,
                         const arch::Machine& machine, int total_cores) const {
  return analyze_hier(*this, program, [&](const core::TaskGraph& g) {
    return analyze(g, machine, total_cores);
  });
}

// ---- pass 5: schedule lints (PTA040, PTA041) ----

Report Analyzer::lint(const sched::LayeredSchedule& schedule,
                      const cost::CostModel& cost) const {
  Report report;
  const core::TaskGraph& g = schedule.contraction.contracted;
  Emitter out(g, report);
  for (std::size_t li = 0; li < schedule.layers.size(); ++li) {
    const sched::ScheduledLayer& layer = schedule.layers[li];
    std::vector<int> tasks_in_group(layer.group_sizes.size(), 0);
    for (const int gi : layer.task_group) {
      if (gi >= 0 && static_cast<std::size_t>(gi) < tasks_in_group.size()) {
        ++tasks_in_group[static_cast<std::size_t>(gi)];
      }
    }
    for (std::size_t gi = 0; gi < tasks_in_group.size(); ++gi) {
      if (tasks_in_group[gi] != 0) continue;
      std::ostringstream os;
      os << "layer " << li << ": group " << gi << " ("
         << layer.group_sizes[gi]
         << " cores) has no assigned tasks and idles for the whole layer";
      out.emit(kIdleCores, Severity::Warning, {}, {}, os.str());
    }
  }

  const std::size_t elem = options_.redistribution_elem_bytes;
  const arch::LinkParams& slow =
      cost.machine().link(arch::CommLevel::InterNode);
  for (const sched::RedistributionEdge& e : sched::redistribution_edges(schedule)) {
    if (elem == 0 || e.bytes / elem == 0) continue;
    const sched::ScheduledLayer& src_layer = schedule.layers[e.producer_layer];
    const sched::ScheduledLayer& dst_layer = schedule.layers[e.consumer_layer];
    const int q1 = src_layer.group_sizes[static_cast<std::size_t>(e.producer_group)];
    const int q2 = dst_layer.group_sizes[static_cast<std::size_t>(e.consumer_group)];
    if (q1 < 1 || q2 < 1) continue;
    const bool same_groups = q1 == q2 && e.producer_group == e.consumer_group;
    const dist::RedistributionPlan plan = dist::RedistributionPlan::compute(
        e.bytes / elem, elem, e.src_dist, static_cast<std::size_t>(q1),
        e.dst_dist, static_cast<std::size_t>(q2), same_groups);
    std::vector<double> rank_time(static_cast<std::size_t>(q1), 0.0);
    for (const dist::Transfer& t : plan.transfers()) {
      if (t.src_rank < rank_time.size()) {
        rank_time[t.src_rank] += slow.transfer_time(t.bytes);
      }
    }
    double t_re = 0.0;
    for (const double t : rank_time) t_re = std::max(t_re, t);
    double t_task = 0.0;
    try {
      t_task = cost.symbolic_task_time(g.task(e.consumer), q2,
                                       dst_layer.num_groups(),
                                       schedule.total_cores);
    } catch (const std::exception&) {
      continue;  // broken profile; the analyze() passes report it
    }
    if (t_re <= options_.redistribution_dominance * t_task) continue;
    std::ostringstream os;
    os << "re-distributing '" << e.param_name << "' from "
       << task_ref(g, e.producer) << " into " << task_ref(g, e.consumer)
       << " costs ~" << t_re << " s vs " << t_task
       << " s of consumer execution; the group structure pays more "
          "data movement than it saves";
    out.emit(kRedistributionDominated, Severity::Warning,
             {e.producer, e.consumer}, {e.param_name}, os.str());
  }
  return report;
}

Report Analyzer::lint(const core::TaskGraph& graph,
                      const sched::GanttSchedule& schedule,
                      const cost::CostModel& cost) const {
  Report report;
  Emitter out(graph, report);
  if (schedule.total_cores > 0) {
    std::vector<bool> used(static_cast<std::size_t>(schedule.total_cores),
                           false);
    for (const sched::TaskSlot& slot : schedule.slots) {
      for (const int c : slot.cores) {
        if (c >= 0 && c < schedule.total_cores) {
          used[static_cast<std::size_t>(c)] = true;
        }
      }
    }
    const int idle = static_cast<int>(
        std::count(used.begin(), used.end(), false));
    if (idle > 0) {
      std::ostringstream os;
      os << idle << " of " << schedule.total_cores
         << " symbolic cores are never used by any task slot";
      out.emit(kIdleCores, Severity::Warning, {}, {}, os.str());
    }
  }
  if (schedule.makespan > 0.0) {
    const double t_re =
        sched::gantt_redistribution_time(graph, schedule, cost);
    if (t_re > options_.redistribution_dominance * schedule.makespan) {
      std::ostringstream os;
      os << "re-distribution accounts for ~" << t_re << " s of a "
         << schedule.makespan
         << " s makespan; the schedule is dominated by data movement";
      out.emit(kRedistributionDominated, Severity::Warning, {}, {}, os.str());
    }
  }
  return report;
}

// ---- pass 6: ordering / deadlock (PTA050, PTA051) ----

namespace {

/// PTA050: the *combined* precedence order -- graph edges plus the
/// execution order the schedule imposes on every core -- must be acyclic,
/// or the schedule deadlocks under a faithful runtime (each task waits for
/// both its graph predecessors and the previous slot on its cores).
void ordering_pass(const sched::Schedule& schedule, Emitter& out) {
  const TaskGraph& g = schedule.scheduled_graph();
  const int n = g.num_tasks();
  if (static_cast<int>(schedule.gantt.slots.size()) != n) return;

  // Tie-break equal start times (zero-duration tasks) by the plain graph's
  // topological order so a valid schedule never yields a spurious cycle.
  std::vector<int> rank(static_cast<std::size_t>(n), 0);
  {
    const std::vector<TaskId> order = g.topological_order();
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    }
  }

  std::vector<std::vector<TaskId>> adjacency(static_cast<std::size_t>(n));
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  const auto add_edge = [&](TaskId u, TaskId v) {
    adjacency[static_cast<std::size_t>(u)].push_back(v);
    ++indegree[static_cast<std::size_t>(v)];
  };
  for (TaskId u = 0; u < n; ++u) {
    for (const TaskId v : g.successors(u)) add_edge(u, v);
  }
  std::map<int, std::vector<TaskId>> per_core;
  for (TaskId id = 0; id < n; ++id) {
    if (g.task(id).is_marker()) continue;
    for (const int c : schedule.gantt.slots[static_cast<std::size_t>(id)].cores) {
      per_core[c].push_back(id);
    }
  }
  for (auto& [c, tasks] : per_core) {
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      const double sa = schedule.gantt.slots[static_cast<std::size_t>(a)].start;
      const double sb = schedule.gantt.slots[static_cast<std::size_t>(b)].start;
      if (sa != sb) return sa < sb;
      return rank[static_cast<std::size_t>(a)] <
             rank[static_cast<std::size_t>(b)];
    });
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      add_edge(tasks[i - 1], tasks[i]);
    }
  }

  std::vector<TaskId> ready;
  for (TaskId id = 0; id < n; ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  int visited = 0;
  while (!ready.empty()) {
    const TaskId u = ready.back();
    ready.pop_back();
    ++visited;
    for (const TaskId v : adjacency[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  if (visited == n) return;
  std::vector<TaskId> stuck;
  for (TaskId id = 0; id < n && stuck.size() < 8; ++id) {
    if (indegree[static_cast<std::size_t>(id)] > 0) stuck.push_back(id);
  }
  std::ostringstream os;
  os << "the combined schedule+graph precedence order has a cycle through "
     << (n - visited) << " task(s):";
  for (const TaskId id : stuck) os << " " << task_ref(g, id);
  os << "; the schedule deadlocks under dependency-driven execution";
  out.emit(kOrderingDeadlock, Severity::Error, stuck, {}, os.str());
}

/// PTA051: cross-group re-distribution must flow forward in layer order --
/// a consumer in the same or an earlier layer than its producer would need
/// data that does not exist yet when its layer starts.
void layer_order_pass(const sched::Schedule& schedule, Emitter& out) {
  const TaskGraph& g = schedule.scheduled_graph();
  for (const sched::RedistributionEdge& e :
       sched::redistribution_edges(schedule.layered)) {
    if (e.consumer_layer > e.producer_layer) continue;
    std::ostringstream os;
    os << "re-distribution of '" << e.param_name << "' from "
       << task_ref(g, e.producer) << " (layer " << e.producer_layer
       << ") into " << task_ref(g, e.consumer) << " (layer "
       << e.consumer_layer << ") reverses the layer order";
    out.emit(kLayerOrderReversal, Severity::Error, {e.producer, e.consumer},
             {e.param_name}, os.str());
  }
}

// ---- pass 7: allocation sanity (PTA060, PTA061) ----

/// PTA060: the schedule's makespan against the strategy-independent symbolic
/// lower bound max(total work / P, critical path at each task's best width).
/// PTA061: tasks whose group is wider than the monotonic-speedup region of
/// their profile -- the extra cores add no speedup, only occupancy.
void allocation_pass(const sched::Schedule& schedule,
                     const cost::CostModel& cost, double alpha, Emitter& out) {
  const TaskGraph& g = schedule.scheduled_graph();
  const int n = g.num_tasks();
  const int total = schedule.total_cores();
  if (static_cast<int>(schedule.gantt.slots.size()) != n ||
      static_cast<int>(schedule.allocation.size()) != n || total < 1) {
    return;
  }

  try {
    double work = 0.0;
    std::vector<double> best(static_cast<std::size_t>(n), 0.0);
    for (TaskId id = 0; id < n; ++id) {
      const core::MTask& t = g.task(id);
      if (t.is_marker()) continue;
      work += cost.symbolic_compute_time(t, 1);
      best[static_cast<std::size_t>(id)] =
          cost.symbolic_compute_time(t, std::min(total, t.max_cores()));
    }
    std::vector<double> path(static_cast<std::size_t>(n), 0.0);
    double critical_path = 0.0;
    for (const TaskId u : g.topological_order()) {
      const double here =
          path[static_cast<std::size_t>(u)] + best[static_cast<std::size_t>(u)];
      critical_path = std::max(critical_path, here);
      for (const TaskId v : g.successors(u)) {
        path[static_cast<std::size_t>(v)] =
            std::max(path[static_cast<std::size_t>(v)], here);
      }
    }
    const double lower_bound = std::max(work / total, critical_path);
    if (lower_bound > 0.0 && schedule.makespan() > alpha * lower_bound) {
      std::ostringstream os;
      os << "makespan " << schedule.makespan() << " s exceeds " << alpha
         << " x the symbolic lower bound " << lower_bound
         << " s (max of work/P and the best-width critical path)";
      out.emit(kMakespanBlowup, Severity::Warning, {}, {}, os.str());
    }
  } catch (const std::exception&) {
    // Broken profiles are PTA030/031 territory; nothing to lint here.
  }

  for (TaskId id = 0; id < n; ++id) {
    const core::MTask& t = g.task(id);
    if (t.is_marker()) continue;
    const int q = schedule.allocation[static_cast<std::size_t>(id)];
    if (q <= 1) continue;
    try {
      const double at_q = cost.symbolic_task_time(t, q, 1, total);
      const double at_qm1 = cost.symbolic_task_time(t, q - 1, 1, total);
      if (at_q + 1e-12 >= at_qm1) {
        std::ostringstream os;
        os << "task " << task_ref(g, id) << " runs on " << q
           << " cores but gains nothing over " << q - 1 << " (" << at_q
           << " s vs " << at_qm1
           << " s); the group is past the monotonic-speedup region";
        out.emit(kNonMonotonicAllocation, Severity::Warning, {id}, {},
                 os.str());
      }
    } catch (const std::exception&) {
      continue;  // broken profile; reported by the analyze() passes
    }
  }
}

}  // namespace

Report Analyzer::lint(const sched::Schedule& schedule,
                      const cost::CostModel& cost) const {
  obs::ScopedSpan span(obs::SpanKind::Scheduler, "analysis.lint");
  Report report;
  if (schedule.has_layers()) {
    report.merge(lint(schedule.layered, cost), schedule.strategy);
  } else {
    report.merge(lint(schedule.scheduled_graph(), schedule.gantt, cost),
                 schedule.strategy);
  }
  Report tiers;
  Emitter out(schedule.scheduled_graph(), tiers);
  if (options_.ordering_checks) {
    ordering_pass(schedule, out);
    if (schedule.has_layers()) layer_order_pass(schedule, out);
  }
  if (options_.allocation_sanity) {
    allocation_pass(schedule, cost, options_.makespan_alpha, out);
  }
  report.merge(std::move(tiers), schedule.strategy);
  return report;
}

}  // namespace ptask::analysis
