#include "ptask/analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>

#include "ptask/analysis/certifier.hpp"

namespace ptask::analysis {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

namespace {

struct CodeEntry {
  std::string_view code;
  std::string_view description;
};

constexpr CodeEntry kCodeTable[] = {
    {kRaceWaw, "WAW race: two independent tasks define the same Var"},
    {kRaceRaw, "RAW/WAR race: an unordered reader/writer pair of a Var"},
    {kSizeMismatch,
     "size mismatch: a consumer reads a Var with a different byte size than "
     "its producer declared"},
    {kBadRedistribution,
     "ill-defined re-distribution: matched payload smaller than one element "
     "or not a multiple of the element size"},
    {kUnreachableTask,
     "unreachable task: a non-marker task disconnected from the start/stop "
     "marker envelope"},
    {kDeadWrite,
     "dead write: an output Var no reachable task consumes and that is not a "
     "program output"},
    {kEmptyComposite, "composite node with a missing or empty body"},
    {kDegenerateChain,
     "degenerate chain: contraction clamps the merged node far below the "
     "widest member's parallelism"},
    {kBadTaskProfile,
     "broken task profile: negative/non-finite work, max_cores < 1, or a "
     "collective with repeat < 0"},
    {kBadCostModel,
     "broken cost model: T(M, q) negative/non-finite or Tcomp(M)/q "
     "increasing for some q in {1..P}"},
    {kZeroCostTask, "zero-cost task: LPT assignment is arbitrary for it"},
    {kIdleCores,
     "idle cores: a layer group with no tasks, or Gantt cores no slot uses"},
    {kRedistributionDominated,
     "re-distribution-dominated: cross-group data movement exceeds the "
     "useful work it feeds"},
    {kOrderingDeadlock,
     "ordering deadlock: the combined schedule+graph precedence order "
     "contains a cycle"},
    {kLayerOrderReversal,
     "layer-order reversal: a cross-group re-distribution edge whose "
     "consumer layer does not come after its producer layer"},
    {kMakespanBlowup,
     "makespan blow-up: the makespan exceeds alpha x the symbolic lower "
     "bound max(work/P, longest single task)"},
    {kNonMonotonicAllocation,
     "non-monotonic allocation: a task's group is wider than the "
     "monotonic-speedup region of its profile"},
    {kCertPrecedence,
     "certifier: a graph edge's successor starts before its predecessor "
     "finishes"},
    {kCertOverlap,
     "certifier: a symbolic core executes two overlapping slots"},
    {kCertAllocation,
     "certifier: core allocation outside the machine, duplicated cores, or "
     "layer group sizes not partitioning the machine"},
    {kCertMakespan,
     "certifier: makespan arithmetic broken (slot outside [0, makespan] or "
     "declared makespan not equal to the last finish)"},
    {kCertLowerBound,
     "certifier: makespan below a symbolic lower bound (critical path or "
     "total work / P)"},
    {kCertStructure,
     "certifier: contraction/slot/layer tables structurally inconsistent "
     "with the original graph"},
};

}  // namespace

std::string_view describe(std::string_view code) {
  for (const CodeEntry& entry : kCodeTable) {
    if (entry.code == code) return entry.description;
  }
  return {};
}

const std::vector<std::string_view>& all_codes() {
  static const std::vector<std::string_view> codes = [] {
    std::vector<std::string_view> out;
    out.reserve(std::size(kCodeTable));
    for (const CodeEntry& entry : kCodeTable) out.push_back(entry.code);
    return out;
  }();
  return codes;
}

int Report::error_count() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

int Report::warning_count() const {
  return static_cast<int>(diagnostics.size()) - error_count();
}

bool Report::has(std::string_view code) const {
  return count(code) > 0;
}

int Report::count(std::string_view code) const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

void Report::merge(Report other, const std::string& scope) {
  diagnostics.reserve(diagnostics.size() + other.diagnostics.size());
  for (Diagnostic& d : other.diagnostics) {
    if (!scope.empty()) {
      d.scope = d.scope.empty() ? scope : scope + "/" + d.scope;
    }
    diagnostics.push_back(std::move(d));
  }
}

std::string render_text(const Report& report) {
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics) {
    os << to_string(d.severity) << "[" << d.code << "]";
    if (!d.scope.empty()) os << " " << d.scope << ":";
    os << " " << d.message << "\n";
  }
  os << report.error_count() << " error(s), " << report.warning_count()
     << " warning(s)\n";
  return os.str();
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string render_json(const Report& report) {
  std::ostringstream os;
  os << "{\"errors\":" << report.error_count()
     << ",\"warnings\":" << report.warning_count() << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"code\":";
    append_json_string(os, d.code);
    os << ",\"severity\":";
    append_json_string(os, to_string(d.severity));
    os << ",\"scope\":";
    append_json_string(os, d.scope);
    os << ",\"tasks\":[";
    for (std::size_t t = 0; t < d.tasks.size(); ++t) {
      if (t > 0) os << ",";
      os << "{\"id\":" << d.tasks[t] << ",\"name\":";
      append_json_string(os,
                         t < d.task_names.size() ? d.task_names[t] : "");
      os << "}";
    }
    os << "],\"vars\":[";
    for (std::size_t v = 0; v < d.vars.size(); ++v) {
      if (v > 0) os << ",";
      append_json_string(os, d.vars[v]);
    }
    os << "],\"message\":";
    append_json_string(os, d.message);
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ptask::analysis
