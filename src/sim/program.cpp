#include "ptask/sim/program.hpp"

#include <stdexcept>

namespace ptask::sim {

ProgramSet::ProgramSet(int nranks) {
  if (nranks <= 0) throw std::invalid_argument("rank count must be positive");
  programs_.resize(static_cast<std::size_t>(nranks));
}

void ProgramSet::add_compute(std::span<const int> ranks, double seconds) {
  for (int r : ranks) rank(r).add_compute(seconds);
}

void ProgramSet::add_collective(const net::MessageSchedule& schedule,
                                std::span<const int> ranks) {
  for (const net::Round& round : schedule) {
    const std::uint64_t tag = fresh_tag();
    // Sends first (posted, non-blocking) ...
    for (const net::Message& m : round.messages) {
      if (m.src == m.dst) continue;
      rank(ranks[static_cast<std::size_t>(m.src)])
          .add_send(ranks[static_cast<std::size_t>(m.dst)], tag, m.bytes);
    }
    // ... then the matching blocking receives, which close the round.
    for (const net::Message& m : round.messages) {
      if (m.src == m.dst) continue;
      rank(ranks[static_cast<std::size_t>(m.dst)])
          .add_recv(ranks[static_cast<std::size_t>(m.src)], tag);
    }
  }
}

void ProgramSet::add_transfer(int src, int dst, std::size_t bytes) {
  if (src == dst) return;
  const std::uint64_t tag = fresh_tag();
  rank(src).add_send(dst, tag, bytes);
  rank(dst).add_recv(src, tag);
}

}  // namespace ptask::sim
