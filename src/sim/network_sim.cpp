#include "ptask/sim/network_sim.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_set>

#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/sim/event_engine.hpp"

namespace ptask::sim {

namespace {

/// Matching key of a point-to-point message.
struct MatchKey {
  int src;
  int dst;
  std::uint64_t tag;
  bool operator<(const MatchKey& other) const {
    return std::tie(src, dst, tag) < std::tie(other.src, other.dst, other.tag);
  }
};

/// A send that has been posted but not yet consumed by a receive.
struct PostedSend {
  double post_time;
  std::size_t bytes;
};

/// A matched (send, recv) pair ready to complete.
struct ReadyMatch {
  int dst_rank;
  int src_rank;
  std::size_t bytes;
};

}  // namespace

NetworkSim::NetworkSim(const arch::Machine& machine,
                       std::vector<int> placement)
    : machine_(&machine), placement_(std::move(placement)) {
  std::unordered_set<int> seen;
  for (int core : placement_) {
    if (core < 0 || core >= machine_->total_cores()) {
      throw std::out_of_range("placement core index out of range");
    }
    if (!seen.insert(core).second) {
      throw std::invalid_argument("placement must be injective");
    }
  }
}

SimResult NetworkSim::run(const ProgramSet& programs,
                          bool record_trace) const {
  static obs::Counter& runs = obs::metrics().counter("sim.runs");
  static obs::Counter& transfers = obs::metrics().counter("sim.transfers");
  static obs::Counter& events = obs::metrics().counter("sim.events");
  runs.add();
  obs::ScopedSpan run_span(obs::SpanKind::Scheduler, "sim.run");

  const int nranks = programs.num_ranks();
  if (static_cast<std::size_t>(nranks) != placement_.size()) {
    throw std::invalid_argument("program set size does not match placement");
  }
  const arch::Machine& m = *machine_;

  std::vector<double> clock(static_cast<std::size_t>(nranks), 0.0);
  std::vector<std::size_t> pc(static_cast<std::size_t>(nranks), 0);
  std::vector<bool> blocked(static_cast<std::size_t>(nranks), false);

  std::map<MatchKey, std::deque<PostedSend>> posted_sends;
  std::map<MatchKey, bool> waiting_recv;  // key -> receiver is blocked on it

  EventQueue<ReadyMatch> ready;

  // Per-node NIC availability (full duplex).
  std::vector<double> egress_free(static_cast<std::size_t>(m.num_nodes()), 0.0);
  std::vector<double> ingress_free(static_cast<std::size_t>(m.num_nodes()),
                                   0.0);

  SimResult result;
  result.finish_times.resize(static_cast<std::size_t>(nranks), 0.0);

  std::vector<int> runnable;
  runnable.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) runnable.push_back(r);

  auto record_traffic = [&](arch::CommLevel level, std::size_t bytes) {
    ++result.traffic.messages;
    switch (level) {
      case arch::CommLevel::SameProcessor:
        result.traffic.bytes_same_processor += bytes;
        break;
      case arch::CommLevel::SameNode:
        result.traffic.bytes_same_node += bytes;
        break;
      case arch::CommLevel::InterNode:
        result.traffic.bytes_inter_node += bytes;
        break;
    }
  };

  // Advances one rank until it blocks on a receive or finishes.
  auto advance_rank = [&](int r) {
    const std::vector<Op>& ops = programs.rank(r).ops();
    const std::size_t ri = static_cast<std::size_t>(r);
    while (pc[ri] < ops.size()) {
      const Op& op = ops[pc[ri]];
      switch (op.kind) {
        case OpKind::Compute:
          if (record_trace && op.seconds > 0.0) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::Compute, r,
                                              -1, clock[ri],
                                              clock[ri] + op.seconds, 0});
          }
          clock[ri] += op.seconds;
          result.total_compute_seconds += op.seconds;
          ++pc[ri];
          break;
        case OpKind::Send: {
          const MatchKey key{r, op.peer, op.tag};
          // Small CPU overhead on the sender (LogP `o`): the latency of the
          // level towards the destination.
          const arch::CommLevel level = m.comm_level(
              m.core_at(placement_[ri]),
              m.core_at(placement_[static_cast<std::size_t>(op.peer)]));
          clock[ri] += m.link(level).latency_s;
          posted_sends[key].push_back(PostedSend{clock[ri], op.bytes});
          ++pc[ri];
          auto it = waiting_recv.find(key);
          if (it != waiting_recv.end() && it->second) {
            it->second = false;
            const double earliest =
                std::max(clock[ri],
                         clock[static_cast<std::size_t>(op.peer)]);
            ready.push(earliest, ReadyMatch{op.peer, r, op.bytes});
          }
          break;
        }
        case OpKind::Recv: {
          const MatchKey key{op.peer, r, op.tag};
          auto it = posted_sends.find(key);
          if (it != posted_sends.end() && !it->second.empty()) {
            const PostedSend& send = it->second.front();
            const double earliest = std::max(send.post_time, clock[ri]);
            ready.push(earliest, ReadyMatch{r, op.peer, send.bytes});
          } else {
            waiting_recv[key] = true;
          }
          blocked[ri] = true;
          return;  // blocked until the match completes
        }
      }
    }
  };

  while (true) {
    for (int r : runnable) {
      if (!blocked[static_cast<std::size_t>(r)]) advance_rank(r);
    }
    runnable.clear();
    if (ready.empty()) break;

    const ReadyMatch match = ready.pop();
    const std::size_t dst = static_cast<std::size_t>(match.dst_rank);
    const std::size_t src = static_cast<std::size_t>(match.src_rank);

    // Consume the posted send this match corresponds to.
    const std::vector<Op>& dst_ops = programs.rank(match.dst_rank).ops();
    const Op& recv_op = dst_ops[pc[dst]];
    const MatchKey key{match.src_rank, match.dst_rank, recv_op.tag};
    auto it = posted_sends.find(key);
    if (it == posted_sends.end() || it->second.empty()) {
      throw std::logic_error("matched send vanished");
    }
    const PostedSend send = it->second.front();
    it->second.pop_front();

    const arch::CoreId src_core = m.core_at(placement_[src]);
    const arch::CoreId dst_core = m.core_at(placement_[dst]);
    const arch::CommLevel level = m.comm_level(src_core, dst_core);
    const arch::LinkParams& link = m.link(level);

    double start = std::max(send.post_time, clock[dst]);
    const double busy = static_cast<double>(send.bytes) / link.bandwidth_Bps;
    if (level == arch::CommLevel::InterNode) {
      start = std::max({start,
                        egress_free[static_cast<std::size_t>(src_core.node)],
                        ingress_free[static_cast<std::size_t>(dst_core.node)]});
      egress_free[static_cast<std::size_t>(src_core.node)] = start + busy;
      ingress_free[static_cast<std::size_t>(dst_core.node)] = start + busy;
    }
    const double end = start + link.latency_s + busy;
    record_traffic(level, send.bytes);
    ++result.transfers;
    if (record_trace) {
      result.trace.push_back(TraceEvent{TraceEvent::Kind::Transfer,
                                        match.dst_rank, match.src_rank, start,
                                        end, send.bytes});
    }

    clock[dst] = end;
    blocked[dst] = false;
    ++pc[dst];
    runnable.push_back(match.dst_rank);
  }

  // Every rank must have run its full program; a blocked rank means deadlock.
  for (int r = 0; r < nranks; ++r) {
    const std::size_t ri = static_cast<std::size_t>(r);
    if (pc[ri] < programs.rank(r).ops().size()) {
      throw std::runtime_error("simulation deadlock: rank " +
                               std::to_string(r) +
                               " blocked on an unmatched receive");
    }
    result.finish_times[ri] = clock[ri];
    result.makespan = std::max(result.makespan, clock[ri]);
  }
  transfers.add(result.transfers);
  events.add(ready.total_pushed());
  return result;
}

}  // namespace ptask::sim
