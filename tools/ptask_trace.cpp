// ptask_trace: runs a built-in program with tracing on and emits a
// Perfetto-loadable Chrome trace-event JSON file, a text summary of the
// recorded spans and metrics, and a cost-model calibration table (predicted
// vs measured time per task and per layer).
//
// Two kinds of programs:
//  * ode_epol / ode_irk execute a real scheduled ODE time step on the
//    shared-memory runtime (rt::Executor) -- spans carry wall-clock time;
//  * epol | irk | diirk | pab | pabm | sp-mz | bt-mz run the discrete-event
//    network simulator over the mapped schedule -- spans carry simulated
//    time, and the calibration table is computed from the scheduler's own
//    symbolic timeline (a differential oracle: ~0 relative error).
//
// Exit codes: 0 = ok, 1 = self-check failure, 2 = usage error.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/npb/multizone.hpp"
#include "ptask/obs/calibration.hpp"
#include "ptask/obs/export.hpp"
#include "ptask/obs/json.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/ode/bruss2d.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/ode/spmd_solvers.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/sched/timeline.hpp"

namespace {

using namespace ptask;

struct Options {
  std::string program = "ode_irk";
  std::string out;  // default: <program>.trace.json
  std::string machine = "chic";
  std::string scheduler = "layer";
  int cores = 8;
  int steps = 2;
  bool selfcheck = false;
  bool quiet = false;
};

const std::vector<std::string>& all_programs() {
  static const std::vector<std::string> names = {
      "ode_epol", "ode_irk", "epol", "irk", "diirk",
      "pab",      "pabm",    "sp-mz", "bt-mz"};
  return names;
}

void usage(std::ostream& os) {
  os << "usage: ptask_trace [options]\n"
        "  --program NAME  ode_epol|ode_irk (real execution) or\n"
        "                  epol|irk|diirk|pab|pabm|sp-mz|bt-mz (simulated)\n"
        "                  (default: ode_irk)\n"
        "  --out PATH      trace output file (default: <program>.trace.json)\n"
        "  --cores N       core count (default: 8)\n"
        "  --steps N       time steps to execute / unroll (default: 2)\n"
        "  --machine NAME  machine preset: chic|juropa|altix (default: chic)\n"
        "  --scheduler NAME scheduling strategy from the registry:\n"
        "                  layer|cpa|mcpa|cpr|dp|portfolio (default: layer);\n"
        "                  real-execution programs need a layered strategy\n"
        "  --selfcheck     re-parse the emitted JSON and validate its\n"
        "                  structure (exit 1 on failure)\n"
        "  --quiet         suppress the summary and calibration output\n"
        "  --list          list the built-in programs and exit\n"
        "  --help          this message\n"
        "environment:\n"
        "  PTASK_SCHED_PARALLEL_LAYERS=N  schedule independent layers on N\n"
        "                  threads (layer strategy; same output, less wall\n"
        "                  time on deep graphs)\n";
}

struct RunOutput {
  std::vector<obs::Span> trace_spans;        ///< what goes into the file
  std::vector<obs::Span> calibration_spans;  ///< what calibrate() joins
  sched::LayeredSchedule schedule;
  bool has_calibration = true;  ///< allocation-only strategies skip the table
};

/// PTASK_SCHED_PARALLEL_LAYERS=N (N > 1) schedules independent layers on N
/// threads in the layer pipeline; the output is bit-identical either way
/// (LayerSchedulerOptions::parallel_layers contract).
int env_parallel_layers() {
  if (const char* env = std::getenv("PTASK_SCHED_PARALLEL_LAYERS")) {
    const int n = std::atoi(env);
    if (n > 1) return n;
  }
  return 1;
}

/// The strategy selected by --scheduler.  "layer" honours the
/// program-specific pass options (e.g. ode_irk's fixed group count) plus
/// the PTASK_SCHED_PARALLEL_LAYERS environment knob; every other name is
/// instantiated from the registry with its defaults.
std::unique_ptr<sched::Scheduler> make_scheduler(
    const std::string& name, const cost::CostModel& cost,
    sched::LayerSchedulerOptions layer_opts = {}) {
  if (name == "layer") {
    layer_opts.parallel_layers = env_parallel_layers();
    return std::make_unique<sched::Pipeline>(
        sched::Pipeline::algorithm1(cost, layer_opts));
  }
  return sched::SchedulerRegistry::instance().make(name, cost);
}

/// Schedules `g` with the selected strategy for real execution; throws when
/// the strategy yields no layer structure (the executor needs one).
sched::LayeredSchedule schedule_for_execution(
    const Options& opt, const cost::CostModel& cost, const core::TaskGraph& g,
    sched::LayerSchedulerOptions layer_opts) {
  sched::Schedule s =
      make_scheduler(opt.scheduler, cost, layer_opts)->run(g, opt.cores);
  if (!s.has_layers()) {
    throw std::invalid_argument("scheduler '" + opt.scheduler +
                                "' produces no layered schedule; real "
                                "execution needs one (use layer|dp)");
  }
  return std::move(s.layered);
}

/// Executes a real ODE time-step program on the runtime with tracing on.
RunOutput run_real(const Options& opt, const cost::CostModel& cost) {
  obs::tracer().set_enabled(true);
  obs::tracer().clear();

  RunOutput out;
  const double h = 0.002;
  double t = 0.1;

  if (opt.program == "ode_epol") {
    const ode::Bruss2D system(8);
    std::vector<double> y = system.initial_state();
    sched::LayerSchedulerOptions sopts;  // free group count
    bool have_schedule = false;
    rt::Executor exec(opt.cores);
    for (int s = 0; s < opt.steps; ++s) {
      ode::SpmdEpolStep program(system, 4, t, h, y);
      const core::TaskGraph g = program.build_graph();
      if (!have_schedule) {
        out.schedule = schedule_for_execution(opt, cost, g, sopts);
        have_schedule = true;
      }
      std::vector<rt::TaskFn> fns = program.build_functions(g);
      exec.run(out.schedule, fns);
      y = program.result();
      t += h;
    }
  } else {  // ode_irk
    const int stages = 4;
    const ode::Bruss2D system(6);
    std::vector<double> y = system.initial_state();
    sched::LayerSchedulerOptions sopts;
    sopts.fixed_groups = stages;  // task-parallel form requires K groups
    bool have_schedule = false;
    rt::Executor exec(opt.cores);
    for (int s = 0; s < opt.steps; ++s) {
      ode::SpmdIrkStep program(system, stages, 2, t, h, y);
      const core::TaskGraph g = program.build_graph();
      if (!have_schedule) {
        out.schedule = schedule_for_execution(opt, cost, g, sopts);
        have_schedule = true;
      }
      std::vector<rt::TaskFn> fns = program.build_functions(g);
      exec.run(out.schedule, fns);
      y = program.result();
      t += h;
    }
  }

  out.trace_spans = obs::tracer().take();
  out.calibration_spans = out.trace_spans;  // measured == real wall clock
  return out;
}

/// Builds the flattened, marker-enclosed graph of one specification program
/// (same construction as ptask_lint).
core::TaskGraph build_graph(const std::string& name, int steps) {
  core::TaskGraph step;
  if (name == "sp-mz" || name == "bt-mz") {
    const npb::MzSolver solver =
        name == "sp-mz" ? npb::MzSolver::SP : npb::MzSolver::BT;
    step = npb::step_graph(npb::make_problem(solver, 'S'));
  } else {
    ode::SolverGraphSpec spec;
    spec.n = std::size_t{1} << 12;
    spec.stages = 4;
    spec.iterations = 2;
    if (name == "epol") spec.method = ode::Method::EPOL;
    else if (name == "irk") spec.method = ode::Method::IRK;
    else if (name == "diirk") spec.method = ode::Method::DIIRK;
    else if (name == "pab") spec.method = ode::Method::PAB;
    else spec.method = ode::Method::PABM;
    step = spec.step_graph();
  }
  core::TaskGraph program = core::repeat_graph(step, steps);
  program.add_start_stop_markers();
  return program;
}

/// Schedules + maps one specification program and runs the discrete-event
/// simulator in trace mode.  The calibration spans come from the symbolic
/// Gantt timeline, so the report is the exact-model differential oracle.
/// Allocation-only strategies (cpa/mcpa/cpr) have no group structure to map
/// into the simulator; their trace spans are synthesized straight from the
/// Gantt slots and the calibration table is skipped.
RunOutput run_simulated(const Options& opt, const arch::Machine& machine,
                        const cost::CostModel& cost) {
  RunOutput out;
  const core::TaskGraph graph = build_graph(opt.program, opt.steps);
  sched::Schedule schedule =
      make_scheduler(opt.scheduler, cost)->run(graph, opt.cores);

  if (!schedule.has_layers()) {
    const core::TaskGraph& g = schedule.scheduled_graph();
    for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
      const sched::TaskSlot& slot =
          schedule.gantt.slots[static_cast<std::size_t>(id)];
      if (slot.cores.empty()) continue;  // marker
      obs::Span span;
      span.kind = obs::SpanKind::Task;
      span.clock = obs::ClockDomain::Simulated;
      span.name = g.task(id).name();
      span.task = id;
      span.contracted = id;
      span.worker = slot.cores.front();
      span.group_size = slot.num_cores();
      span.begin_s = slot.start;
      span.end_s = slot.finish;
      out.trace_spans.push_back(std::move(span));
    }
    out.schedule = std::move(schedule.layered);
    out.has_calibration = false;
    return out;
  }

  out.schedule = std::move(schedule.layered);
  const std::vector<cost::LayerLayout> layouts = map::map_schedule(
      out.schedule, machine, map::Strategy::Consecutive);
  sched::TimelineOptions topts;
  topts.record_trace = true;
  const sim::SimResult result =
      sched::TimelineEvaluator(cost).simulate(out.schedule, layouts, topts);
  out.trace_spans = obs::spans_from_sim(result);

  // canonical() already lowered the layered schedule with the scheduler's
  // own symbolic costs; its Gantt view is exactly the calibration timeline.
  out.calibration_spans = obs::spans_from_gantt(out.schedule, schedule.gantt);
  return out;
}

/// Validates the emitted trace file: parses, checks the traceEvents shape,
/// and that every complete event carries a begin (ts) and duration (dur).
bool selfcheck(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ptask_trace: selfcheck: cannot re-open '" << path << "'\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::json::Value doc;
  try {
    doc = obs::json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << "ptask_trace: selfcheck: " << e.what() << "\n";
    return false;
  }
  if (!doc.is_object()) {
    std::cerr << "ptask_trace: selfcheck: document is not an object\n";
    return false;
  }
  const obs::json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array() || events->array.empty()) {
    std::cerr << "ptask_trace: selfcheck: missing or empty traceEvents\n";
    return false;
  }
  std::size_t complete = 0;
  for (const obs::json::Value& e : events->array) {
    const obs::json::Value* ph = e.find("ph");
    const obs::json::Value* name = e.find("name");
    const obs::json::Value* pid = e.find("pid");
    if (!e.is_object() || ph == nullptr || !ph->is_string() ||
        name == nullptr || !name->is_string() || pid == nullptr ||
        !pid->is_number()) {
      std::cerr << "ptask_trace: selfcheck: malformed event\n";
      return false;
    }
    if (ph->string == "M") continue;  // metadata: no timestamps
    const obs::json::Value* tid = e.find("tid");
    const obs::json::Value* ts = e.find("ts");
    if (tid == nullptr || !tid->is_number() || ts == nullptr ||
        !ts->is_number() || ts->number < 0.0) {
      std::cerr << "ptask_trace: selfcheck: event without track/timestamp\n";
      return false;
    }
    if (ph->string == "X") {
      // A complete event is a matched begin/end pair: ts + dur.
      const obs::json::Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0.0) {
        std::cerr << "ptask_trace: selfcheck: X event without duration\n";
        return false;
      }
      ++complete;
    } else if (ph->string != "i") {
      std::cerr << "ptask_trace: selfcheck: unexpected phase '" << ph->string
                << "'\n";
      return false;
    }
  }
  if (complete == 0) {
    std::cerr << "ptask_trace: selfcheck: no complete spans in trace\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ptask_trace: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--program") {
      opt.program = value("--program");
    } else if (arg == "--out") {
      opt.out = value("--out");
    } else if (arg == "--cores") {
      opt.cores = std::atoi(value("--cores"));
    } else if (arg == "--steps") {
      opt.steps = std::atoi(value("--steps"));
    } else if (arg == "--machine") {
      opt.machine = value("--machine");
    } else if (arg == "--scheduler") {
      opt.scheduler = value("--scheduler");
    } else if (arg == "--selfcheck") {
      opt.selfcheck = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--list") {
      for (const std::string& name : all_programs()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "ptask_trace: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }
  bool known = false;
  for (const std::string& name : all_programs()) known |= name == opt.program;
  if (!known) {
    std::cerr << "ptask_trace: unknown program '" << opt.program << "'\n";
    return 2;
  }
  if (opt.cores < 1 || opt.steps < 1) {
    std::cerr << "ptask_trace: --cores and --steps must be >= 1\n";
    return 2;
  }
  if (!sched::SchedulerRegistry::instance().contains(opt.scheduler)) {
    std::cerr << "ptask_trace: unknown scheduler '" << opt.scheduler
              << "'; known:";
    for (const std::string& n : sched::SchedulerRegistry::instance().names()) {
      std::cerr << " " << n;
    }
    std::cerr << "\n";
    return 2;
  }
  if (opt.program == "ode_irk" && opt.scheduler != "layer") {
    // The task-parallel IRK bodies communicate over orthogonal groups and
    // require exactly K concurrent groups -- only the layer strategy's
    // fixed-group mode produces that structure.
    std::cerr << "ptask_trace: ode_irk requires --scheduler layer\n";
    return 2;
  }
  if (opt.out.empty()) opt.out = opt.program + ".trace.json";

  const arch::Machine machine = [&] {
    try {
      return arch::Machine(arch::machine_by_name(opt.machine));
    } catch (const std::exception& e) {
      std::cerr << "ptask_trace: " << e.what() << "\n";
      std::exit(2);
    }
  }();
  const cost::CostModel cost(machine);

  const bool real = opt.program == "ode_epol" || opt.program == "ode_irk";
  if (real && !obs::kTracingCompiledIn) {
    // Simulated programs derive spans from the simulator's own trace, but
    // real execution records through the tracer -- nothing to emit here.
    std::cerr << "ptask_trace: tracing compiled out (PTASK_OBS=OFF); "
              << "skipping real-execution program '" << opt.program << "'\n";
    return 0;
  }
  RunOutput run;
  try {
    run = real ? run_real(opt, cost) : run_simulated(opt, machine, cost);
  } catch (const std::exception& e) {
    std::cerr << "ptask_trace: " << opt.program << ": " << e.what() << "\n";
    return 2;
  }

  {
    std::ofstream out(opt.out);
    if (!out) {
      std::cerr << "ptask_trace: cannot write '" << opt.out << "'\n";
      return 2;
    }
    out << obs::render_chrome_trace(run.trace_spans);
  }
  if (!opt.quiet) {
    std::cout << "wrote " << run.trace_spans.size() << " spans to " << opt.out
              << " (open at ui.perfetto.dev)\n";
    std::cout << obs::render_summary(run.trace_spans, obs::metrics());
    if (run.has_calibration) {
      std::cout << obs::render_calibration(
          obs::calibrate(run.calibration_spans, run.schedule, cost));
    } else {
      std::cout << "(no calibration table: scheduler '" << opt.scheduler
                << "' produces no layered timeline)\n";
    }
  }

  if (opt.selfcheck && !selfcheck(opt.out)) return 1;
  return 0;
}
