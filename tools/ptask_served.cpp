// ptask_served -- the scheduling-as-a-service daemon.
//
// Listens on a loopback TCP port for length-prefixed JSON schedule requests
// (see docs/SERVICE.md and src/include/ptask/serve/protocol.hpp), schedules
// them through the SchedulerRegistry on a worker pool, and answers repeated
// requests from the whole-schedule cache.  SIGINT/SIGTERM trigger a
// graceful shutdown: in-flight requests drain, then the service stats are
// printed (and optionally written to --stats-out as JSON).
//
// Usage:
//   ptask_served [--port N] [--workers N] [--max-request-bytes N]
//                [--cache-max-entries N] [--max-queue N]
//                [--retry-after-ms N] [--batch-max N] [--batch-window-us N]
//                [--stats-out FILE] [--metrics-out FILE]
//                [--snapshot-interval-s N] [--slow-log FILE]
//                [--slow-threshold-us N] [--trace] [--quiet]
//
// --cache-max-entries bounds the schedule cache to N completed entries
// (LRU eviction, reported as serve.cache.evictions); 0 = unbounded.
//
// Overload & batching (see docs/SERVICE.md "Throughput & overload"):
//   --max-queue N         admission-queue bound between the reactor and the
//                         workers; a request arriving with the queue full is
//                         answered PTS008 immediately (0 = unbounded)
//   --retry-after-ms N    backoff hint carried in PTS008 responses
//   --batch-max N         max requests one worker dequeues together;
//                         compatible schedule requests among them share one
//                         pricing cache (1 disables batching)
//   --batch-window-us N   optional wait for more requests to join a batch;
//                         0 batches only the existing backlog
//
// Observability (see docs/OBSERVABILITY.md "Serving observability"):
//   --stats-out FILE          JSON stats snapshot, refreshed every
//                             --snapshot-interval-s seconds and at shutdown
//   --metrics-out FILE        Prometheus text exposition, same cadence
//   --slow-log FILE           structured slow-request log (JSON lines)
//   --slow-threshold-us N     log requests slower than N microseconds
//   --trace                   enable the span tracer (same as PTASK_TRACE=1);
//                             live traces are served on the `trace` endpoint
//
// --port 0 (the default) picks an ephemeral port; the bound port is always
// printed as "ptask_served: listening on 127.0.0.1:<port>" so wrappers
// (the CI smoke job, the loadgen --spawn mode) can scrape it.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "ptask/obs/trace.hpp"
#include "ptask/serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--workers N] [--max-request-bytes N]"
               " [--cache-max-entries N] [--max-queue N] [--retry-after-ms N]"
               " [--batch-max N] [--batch-window-us N] [--stats-out FILE]"
               " [--metrics-out FILE] [--snapshot-interval-s N]"
               " [--slow-log FILE] [--slow-threshold-us N] [--trace]"
               " [--quiet]\n";
  return 2;
}

/// Atomic-enough snapshot: write to FILE.tmp, then rename over FILE, so a
/// concurrent scraper (ptask_top, the CI smoke job) never reads a torn file.
void write_snapshot(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    out << body;
    if (body.empty() || body.back() != '\n') out << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ptask::serve::ServerOptions options;
  std::string stats_out;
  std::string metrics_out;
  int snapshot_interval_s = 2;
  bool trace = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--workers") {
      options.num_workers = std::atoi(next());
    } else if (arg == "--max-request-bytes") {
      options.max_request_bytes =
          static_cast<std::uint32_t>(std::atoll(next()));
    } else if (arg == "--cache-max-entries") {
      options.cache_max_entries =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-queue") {
      options.max_queue = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--retry-after-ms") {
      options.overload_retry_after_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--batch-max") {
      options.batch_max = std::atoi(next());
    } else if (arg == "--batch-window-us") {
      options.batch_window_us = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--stats-out") {
      stats_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--snapshot-interval-s") {
      snapshot_interval_s = std::atoi(next());
    } else if (arg == "--slow-log") {
      options.slow_log_path = next();
    } else if (arg == "--slow-threshold-us") {
      options.slow_threshold_us =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  if (trace) ptask::obs::tracer().set_enabled(true);

  ptask::serve::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "ptask_served: " << e.what() << "\n";
    return 1;
  }
  // Printed unconditionally (wrappers scrape it); --quiet only silences the
  // shutdown summary.
  std::cout << "ptask_served: listening on 127.0.0.1:" << server.port()
            << std::endl;

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  const auto snapshot_interval =
      std::chrono::seconds(std::max(1, snapshot_interval_s));
  auto next_snapshot = std::chrono::steady_clock::now() + snapshot_interval;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if ((!stats_out.empty() || !metrics_out.empty()) &&
        std::chrono::steady_clock::now() >= next_snapshot) {
      if (!stats_out.empty()) write_snapshot(stats_out, server.render_stats());
      if (!metrics_out.empty()) {
        write_snapshot(metrics_out, server.render_metrics());
      }
      next_snapshot = std::chrono::steady_clock::now() + snapshot_interval;
    }
  }

  if (!quiet) std::cout << "ptask_served: draining and shutting down\n";
  server.stop();

  const std::string stats = server.render_stats();
  if (!stats_out.empty()) write_snapshot(stats_out, stats);
  if (!metrics_out.empty()) write_snapshot(metrics_out, server.render_metrics());
  if (!quiet) std::cout << stats << std::endl;
  return 0;
}
