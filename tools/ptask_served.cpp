// ptask_served -- the scheduling-as-a-service daemon.
//
// Listens on a loopback TCP port for length-prefixed JSON schedule requests
// (see docs/SERVICE.md and src/include/ptask/serve/protocol.hpp), schedules
// them through the SchedulerRegistry on a worker pool, and answers repeated
// requests from the whole-schedule cache.  SIGINT/SIGTERM trigger a
// graceful shutdown: in-flight requests drain, then the service stats are
// printed (and optionally written to --stats-out as JSON).
//
// Usage:
//   ptask_served [--port N] [--workers N] [--max-request-bytes N]
//                [--cache-max-entries N] [--stats-out FILE] [--quiet]
//
// --cache-max-entries bounds the schedule cache to N completed entries
// (LRU eviction, reported as serve.cache.evictions); 0 = unbounded.
//
// --port 0 (the default) picks an ephemeral port; the bound port is always
// printed as "ptask_served: listening on 127.0.0.1:<port>" so wrappers
// (the CI smoke job, the loadgen --spawn mode) can scrape it.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "ptask/serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--workers N] [--max-request-bytes N]"
               " [--cache-max-entries N] [--stats-out FILE] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ptask::serve::ServerOptions options;
  std::string stats_out;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--workers") {
      options.num_workers = std::atoi(next());
    } else if (arg == "--max-request-bytes") {
      options.max_request_bytes =
          static_cast<std::uint32_t>(std::atoll(next()));
    } else if (arg == "--cache-max-entries") {
      options.cache_max_entries =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--stats-out") {
      stats_out = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  ptask::serve::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "ptask_served: " << e.what() << "\n";
    return 1;
  }
  // Printed unconditionally (wrappers scrape it); --quiet only silences the
  // shutdown summary.
  std::cout << "ptask_served: listening on 127.0.0.1:" << server.port()
            << std::endl;

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (!quiet) std::cout << "ptask_served: draining and shutting down\n";
  server.stop();

  const std::string stats = server.render_stats();
  if (!stats_out.empty()) {
    std::ofstream out(stats_out);
    out << stats << "\n";
  }
  if (!quiet) std::cout << stats << std::endl;
  return 0;
}
