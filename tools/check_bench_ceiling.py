#!/usr/bin/env python3
"""Smoke guard over a BENCH_*.json result file.

Reads the {"benchmarks": [{"name", "median_s", ...}]} document written by
the benchmark binaries (--json PATH) and fails when any guarded benchmark's
median wall time exceeds its ceiling.  Ceilings are deliberately generous
-- an order of magnitude above the expected time on CI hardware -- so the
guard only trips on genuine regressions (e.g. the scheduler hot-path
optimizations being disabled or broken), not on runner noise.

A second mode diffs the results against a checked-in baseline (the repo
ships BENCH_micro.json and BENCH_serve.json): every benchmark present in
the baseline must still exist in the fresh results (coverage loss is a
failure) and its median must stay within --max-regression times the
baseline median.  The factor is generous by default because the baseline
and CI run on different hardware; the diff catches order-of-magnitude
cliffs and silently dropped benchmarks, not percent-level drift.

Rows may carry "direction": "up" (e.g. the loadgen cache hit-rate row in
BENCH_serve.json, where median_s holds a ratio and HIGHER is better); for
those the diff direction flips -- the run fails when the fresh value drops
below baseline / --max-regression.

Usage:
  check_bench_ceiling.py BENCH_micro.json \
      --ceiling BM_LayerSchedulerLarge=30 [--ceiling PREFIX=SECONDS ...] \
      [--baseline OLD_BENCH.json] [--max-regression 25]

A PREFIX matches every benchmark whose name equals PREFIX or starts with
"PREFIX/" (google-benchmark appends "/<arg>" and "/iterations:<n>").
Exits 1 when a ceiling is exceeded, a ceiling matches no benchmark, a
baseline benchmark is missing, or a baseline median regresses past the
allowed factor.
"""

import argparse
import json
import sys


def matches(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + "/")


def load_benchmarks(path: str) -> list:
    with open(path, encoding="utf-8") as f:
        return json.load(f).get("benchmarks", [])


def check_ceilings(benchmarks: list, ceilings: list, json_path: str) -> list:
    failures = []
    for spec in ceilings:
        prefix, sep, limit_text = spec.partition("=")
        if not sep:
            failures.append(f"bad --ceiling '{spec}' (want PREFIX=SECONDS)")
            continue
        limit = float(limit_text)
        rows = [b for b in benchmarks if matches(b["name"], prefix)]
        if not rows:
            failures.append(f"no benchmark in {json_path} "
                            f"matches '{prefix}'")
            continue
        for row in rows:
            median = float(row["median_s"])
            ok = median <= limit
            print(f"{'ok  ' if ok else 'FAIL'} {row['name']}: "
                  f"median {median:.3f}s (ceiling {limit:g}s)")
            if not ok:
                failures.append(f"{row['name']} median {median:.3f}s "
                                f"exceeds ceiling {limit:g}s")
    return failures


def check_baseline(benchmarks: list, baseline: list, factor: float) -> list:
    failures = []
    current = {b["name"]: float(b["median_s"]) for b in benchmarks}
    for row in baseline:
        name = row["name"]
        # Aggregate rows differ per repetition count; compare raw medians.
        old = float(row["median_s"])
        if name not in current:
            failures.append(f"baseline benchmark '{name}' missing from "
                            f"results (coverage loss)")
            print(f"GONE {name}: in baseline, not in results")
            continue
        new = current[name]
        if row.get("direction") == "up":
            # Higher is better (e.g. the hit-rate row in BENCH_serve.json,
            # where median_s holds a ratio): fail when the fresh value
            # collapses below baseline / factor.
            drop = old / new if new > 0 else float("inf" if old > 0 else 1)
            ok = drop <= factor
            print(f"{'ok  ' if ok else 'FAIL'} {name} (up): "
                  f"{old:.4g} -> {new:.4g} "
                  f"({drop:.2f}x drop, limit {factor:g}x)")
            if not ok:
                failures.append(f"{name} dropped {drop:.2f}x below baseline "
                                f"(limit {factor:g}x, direction up)")
            continue
        # Guard against a zero-time baseline row dividing the ratio away.
        ratio = new / old if old > 0 else float("inf" if new > 0 else 1)
        ok = ratio <= factor
        print(f"{'ok  ' if ok else 'FAIL'} {name}: "
              f"{old * 1e6:.2f}us -> {new * 1e6:.2f}us "
              f"({ratio:.2f}x, limit {factor:g}x)")
        if not ok:
            failures.append(f"{name} median regressed {ratio:.2f}x over "
                            f"baseline (limit {factor:g}x)")
    for name in current:
        if not any(b["name"] == name for b in baseline):
            print(f"new  {name}: not in baseline")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark medians exceed their ceilings "
                    "or regress against a checked-in baseline.")
    parser.add_argument("json_path", help="BENCH_*.json result file")
    parser.add_argument(
        "--ceiling", action="append", default=[], metavar="PREFIX=SECONDS",
        help="fail if a matching benchmark's median_s exceeds SECONDS; "
             "may be repeated")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="BENCH_*.json to diff against: every baseline benchmark must "
             "still exist and stay within --max-regression of its median")
    parser.add_argument(
        "--max-regression", type=float, default=25.0, metavar="FACTOR",
        help="allowed median ratio vs the baseline (default %(default)s; "
             "generous because baseline and CI hardware differ)")
    args = parser.parse_args()

    benchmarks = load_benchmarks(args.json_path)
    failures = check_ceilings(benchmarks, args.ceiling, args.json_path)
    if args.baseline:
        failures += check_baseline(benchmarks, load_benchmarks(args.baseline),
                                   args.max_regression)

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
