#!/usr/bin/env python3
"""Smoke guard over a BENCH_*.json result file.

Reads the {"benchmarks": [{"name", "median_s", ...}]} document written by
the benchmark binaries (--json PATH) and fails when any guarded benchmark's
median wall time exceeds its ceiling.  Ceilings are deliberately generous
-- an order of magnitude above the expected time on CI hardware -- so the
guard only trips on genuine regressions (e.g. the scheduler hot-path
optimizations being disabled or broken), not on runner noise.

Usage:
  check_bench_ceiling.py BENCH_micro.json \
      --ceiling BM_LayerSchedulerLarge=30 [--ceiling PREFIX=SECONDS ...]

A PREFIX matches every benchmark whose name equals PREFIX or starts with
"PREFIX/" (google-benchmark appends "/<arg>" and "/iterations:<n>").
Exits 1 when a ceiling is exceeded or matches no benchmark at all.
"""

import argparse
import json
import sys


def matches(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + "/")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark medians exceed their ceilings.")
    parser.add_argument("json_path", help="BENCH_*.json result file")
    parser.add_argument(
        "--ceiling", action="append", default=[], metavar="PREFIX=SECONDS",
        help="fail if a matching benchmark's median_s exceeds SECONDS; "
             "may be repeated")
    args = parser.parse_args()

    with open(args.json_path, encoding="utf-8") as f:
        benchmarks = json.load(f).get("benchmarks", [])

    failures = []
    for spec in args.ceiling:
        prefix, sep, limit_text = spec.partition("=")
        if not sep:
            print(f"error: bad --ceiling '{spec}' (want PREFIX=SECONDS)")
            return 2
        limit = float(limit_text)
        rows = [b for b in benchmarks if matches(b["name"], prefix)]
        if not rows:
            failures.append(f"no benchmark in {args.json_path} "
                            f"matches '{prefix}'")
            continue
        for row in rows:
            median = float(row["median_s"])
            ok = median <= limit
            print(f"{'ok  ' if ok else 'FAIL'} {row['name']}: "
                  f"median {median:.3f}s (ceiling {limit:g}s)")
            if not ok:
                failures.append(f"{row['name']} median {median:.3f}s "
                                f"exceeds ceiling {limit:g}s")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
